"""The causal explanation store: a streaming index over decision events.

Every decision event on the :mod:`repro.obs` bus carries ``causes`` --
the seq ids of the telemetry, prediction and switch events it consumed
(:func:`repro.obs.events.causal_scope`).  This module turns that stream
into something queryable at million-event scale:

- a **bounded seq index** of recent events (for resolving causal chains
  -- causes always point backwards, and almost always recently);
- **rollups** updated incrementally as events arrive: per-decision-kind
  counters, cause-class breakdowns, P² value histograms keyed by
  ``(decision kind, cause class)``, and self-coalescing time buckets --
  so :meth:`ExplanationStore.why_aggregate` answers "what caused
  decisions of kind K in window W" in O(rollup) time, never by
  replaying raw events;
- **stream-integrity tracking**: ring-buffer drops and seq gaps mark
  the store (and every answer it gives) ``truncated`` instead of
  silently reconstructing a wrong history.

The store is a plain bus subscriber (:meth:`attach`) for live systems,
and an offline ingester (:meth:`ingest_trace`) for the JSONL traces
``run_all --telemetry`` and the serve layer already record.
"""

from __future__ import annotations

import json
import math
from collections import OrderedDict
from typing import (Any, Dict, Iterable, List, Mapping, Optional, Sequence,
                    Tuple)

from ..obs.events import Event, EventBus, unescape_fields
from ..obs.metrics import StreamingHistogram

#: Event names treated as decisions (provenance + rollups) by default.
#: Everything else is still indexed so chains can resolve through it.
DEFAULT_DECISION_EVENTS = frozenset((
    "loop.step", "meta.switch", "degrade.enter", "degrade.exit",
    "serve.scale", "fault.start",
))

#: Per-decision value fields folded into the P² histograms, first match
#: wins -- the latency/utility/regret axis of ``why_aggregate``.
VALUE_FIELDS = ("utility", "latency", "p95_latency", "seconds",
                "regret", "confidence", "intensity")

#: Label for a decision with no recorded causes.
NO_CAUSE = "(none)"

#: Label substituted for a cause whose event left the index before the
#: decision citing it arrived.
UNKNOWN_CAUSE = "(unresolved)"


class _TimeBuckets:
    """Self-coalescing fixed-budget buckets over the decision stream.

    Buckets are keyed on the bus ``seq`` axis (always present, strictly
    monotone); each bucket also records the min/max of the decisions'
    ``time`` fields so queries can address a window on either axis.
    When the bucket count would exceed ``max_buckets`` the width doubles
    and adjacent pairs merge -- memory stays bounded for any stream
    length while the whole run remains covered.
    """

    __slots__ = ("width", "max_buckets", "buckets")

    def __init__(self, width: int = 1024, max_buckets: int = 512) -> None:
        if width < 1 or max_buckets < 2:
            raise ValueError("need width >= 1 and max_buckets >= 2")
        self.width = int(width)
        self.max_buckets = int(max_buckets)
        #: bucket start seq -> {"t_lo", "t_hi", "kinds": {kind: [count,
        #: value_sum, value_count]}, "classes": {(kind, class): count}}
        self.buckets: "OrderedDict[int, Dict[str, Any]]" = OrderedDict()

    def observe(self, seq: int, time: float, kind: str, cause_class: str,
                value: Optional[float]) -> None:
        start = (seq // self.width) * self.width
        bucket = self.buckets.get(start)
        if bucket is None:
            if len(self.buckets) >= self.max_buckets:
                self._coalesce()
                start = (seq // self.width) * self.width
                bucket = self.buckets.get(start)
            if bucket is None:
                bucket = self.buckets[start] = {
                    "t_lo": math.inf, "t_hi": -math.inf,
                    "kinds": {}, "classes": {}}
        if time < bucket["t_lo"]:
            bucket["t_lo"] = time
        if time > bucket["t_hi"]:
            bucket["t_hi"] = time
        cell = bucket["kinds"].get(kind)
        if cell is None:
            cell = bucket["kinds"][kind] = [0, 0.0, 0]
        cell[0] += 1
        if value is not None:
            cell[1] += value
            cell[2] += 1
        key = (kind, cause_class)
        bucket["classes"][key] = bucket["classes"].get(key, 0) + 1

    def _coalesce(self) -> None:
        """Double the width; merge buckets that now share a start."""
        self.width *= 2
        merged: "OrderedDict[int, Dict[str, Any]]" = OrderedDict()
        for start, bucket in self.buckets.items():
            new_start = (start // self.width) * self.width
            target = merged.get(new_start)
            if target is None:
                merged[new_start] = bucket
                continue
            target["t_lo"] = min(target["t_lo"], bucket["t_lo"])
            target["t_hi"] = max(target["t_hi"], bucket["t_hi"])
            for kind, cell in bucket["kinds"].items():
                into = target["kinds"].setdefault(kind, [0, 0.0, 0])
                into[0] += cell[0]
                into[1] += cell[1]
                into[2] += cell[2]
            for key, count in bucket["classes"].items():
                target["classes"][key] = target["classes"].get(key, 0) + count
        self.buckets = merged

    def select(self, window: Optional[Tuple[float, float]],
               axis: str) -> List[Tuple[int, Dict[str, Any]]]:
        """Buckets overlapping ``window`` on ``axis`` ('seq' or 'time')."""
        if window is None:
            return list(self.buckets.items())
        lo, hi = float(window[0]), float(window[1])
        out = []
        for start, bucket in self.buckets.items():
            if axis == "seq":
                b_lo, b_hi = float(start), float(start + self.width - 1)
            else:
                b_lo, b_hi = bucket["t_lo"], bucket["t_hi"]
            if b_hi >= lo and b_lo <= hi:
                out.append((start, bucket))
        return out

    def __len__(self) -> int:
        return len(self.buckets)


class ExplanationStore:
    """Streaming provenance index + rollups over an event stream.

    Parameters
    ----------
    decision_names:
        Event names treated as decisions.  ``None`` uses
        :data:`DEFAULT_DECISION_EVENTS`.
    index_size:
        How many recent events stay resolvable by seq (the memory
        bound on :meth:`why`); older ones are evicted oldest-first and
        chains through them report ``truncated``.
    bucket_width, max_buckets:
        Initial seq width and hard count cap of the time buckets.
    """

    def __init__(self, decision_names: Optional[Iterable[str]] = None,
                 *, index_size: int = 65536,
                 bucket_width: int = 1024, max_buckets: int = 512) -> None:
        if index_size < 1:
            raise ValueError("index_size must be positive")
        self.decision_names = frozenset(
            DEFAULT_DECISION_EVENTS if decision_names is None
            else decision_names)
        self.index_size = int(index_size)
        self._index: "OrderedDict[int, Event]" = OrderedDict()
        self._buckets = _TimeBuckets(width=bucket_width,
                                     max_buckets=max_buckets)
        #: decision kind -> total count (whole stream, never evicted).
        self.counts: Dict[str, int] = {}
        #: decision kind -> cause class -> count.
        self.cause_counts: Dict[str, Dict[str, int]] = {}
        #: (decision kind, cause class) -> P² histogram of the value field.
        self.value_hists: Dict[Tuple[str, str], StreamingHistogram] = {}
        #: decision kind -> which VALUE_FIELDS member feeds its histograms.
        self.value_field: Dict[str, str] = {}
        #: decision kind -> seq of the most recent decision of that kind.
        self._last_decision: Dict[str, int] = {}
        self.events_seen = 0
        self.decisions_seen = 0
        #: Causes cited by decisions that the index could not resolve.
        self.unresolved_causes = 0
        #: Seq discontinuities observed in the stream (ring overflow,
        #: partial trace).  Any gap marks the store truncated.
        self.gaps = 0
        self._next_seq: Optional[int] = None
        self._bus: Optional[EventBus] = None

    # -- integrity ---------------------------------------------------------

    @property
    def truncated(self) -> bool:
        """Whether any part of the stream is known to be missing."""
        if self.gaps:
            return True
        bus = self._bus
        return bool(bus is not None and bus.dropped)

    # -- ingestion ---------------------------------------------------------

    def attach(self, bus: EventBus) -> "ExplanationStore":
        """Subscribe to ``bus``; returns ``self``.  A disabled bus never
        invokes subscribers, so an attached-but-idle store is free."""
        bus.subscribe(self)
        self._bus = bus
        return self

    def detach(self) -> None:
        """Unsubscribe from the bus given to :meth:`attach` (no-op if none)."""
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None

    def __call__(self, event: Event) -> None:
        """Subscriber interface: fold one event in (streaming, O(1))."""
        seq = event.seq
        if self._next_seq is not None and seq != self._next_seq:
            self.gaps += 1
        self._next_seq = seq + 1
        self.events_seen += 1
        index = self._index
        index[seq] = event
        if len(index) > self.index_size:
            index.popitem(last=False)
        if event.name in self.decision_names:
            self._record_decision(event)

    def ingest_events(self, events: Iterable[Event],
                      dropped: int = 0) -> "ExplanationStore":
        """Fold an in-memory event sequence in (e.g. ``bus.events()``).

        ``dropped`` is the source ring's drop counter; a non-zero value
        marks the store truncated even when the retained window itself
        is contiguous.
        """
        if dropped:
            self.gaps += 1
        for event in events:
            self(event)
        return self

    def ingest_record(self, record: Mapping[str, Any]) -> bool:
        """Fold one JSONL trace record in; returns whether it was an event.

        Records without a ``seq`` (e.g. the trailing ``metrics.snapshot``)
        are skipped.  Reserved-key escapes are undone.
        """
        if "seq" not in record:
            return False
        fields = dict(record)
        name = fields.pop("event", "event")
        seq = int(fields.pop("seq"))
        causes = tuple(int(c) for c in fields.pop("causes", ()) or ())
        self(Event(name=name, seq=seq, fields=unescape_fields(fields),
                   causes=causes))
        return True

    def ingest_trace(self, path: str) -> int:
        """Stream a JSONL trace file in line by line; returns events read.

        Memory stays bounded by the store's own caps however long the
        file is -- nothing beyond the current line is retained raw.
        """
        ingested = 0
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line and self.ingest_record(json.loads(line)):
                    ingested += 1
        return ingested

    # -- rollup maintenance ------------------------------------------------

    def _cause_class(self, causes: Sequence[int]) -> str:
        """The cause-class label: sorted distinct names of the cause events."""
        if not causes:
            return NO_CAUSE
        names = set()
        index = self._index
        for cause_seq in causes:
            cause = index.get(cause_seq)
            if cause is None:
                self.unresolved_causes += 1
                names.add(UNKNOWN_CAUSE)
            else:
                names.add(cause.name)
        return "+".join(sorted(names))

    def _record_decision(self, event: Event) -> None:
        self.decisions_seen += 1
        kind = event.name
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self._last_decision[kind] = event.seq
        cause_class = self._cause_class(event.causes)
        per_kind = self.cause_counts.setdefault(kind, {})
        per_kind[cause_class] = per_kind.get(cause_class, 0) + 1
        value: Optional[float] = None
        fields = event.fields
        field_name = self.value_field.get(kind)
        if field_name is None:
            for candidate in VALUE_FIELDS:
                raw = fields.get(candidate)
                if isinstance(raw, (int, float)) and math.isfinite(raw):
                    self.value_field[kind] = field_name = candidate
                    break
        if field_name is not None:
            raw = fields.get(field_name)
            if isinstance(raw, (int, float)) and math.isfinite(raw):
                value = float(raw)
                hist = self.value_hists.get((kind, cause_class))
                if hist is None:
                    hist = self.value_hists[(kind, cause_class)] = \
                        StreamingHistogram()
                hist.observe(value)
        time = fields.get("time")
        time = float(time) if isinstance(time, (int, float)) else float("nan")
        self._buckets.observe(event.seq, time, kind, cause_class, value)

    # -- queries -----------------------------------------------------------

    def last_decision_seq(self, kind: Optional[str] = None) -> Optional[int]:
        """Seq of the most recent decision (of ``kind``, or any kind)."""
        if kind is not None:
            return self._last_decision.get(kind)
        if not self._last_decision:
            return None
        return max(self._last_decision.values())

    def why(self, seq: int, depth: int = 6) -> Dict[str, Any]:
        """The causal chain behind the event at ``seq``.

        Returns a nested dict: the event's name, time, fields and -- to
        ``depth`` levels -- the chains of its causes.  A cause that has
        left the bounded index resolves to a stub with ``truncated``
        set; the top level carries the store-wide ``truncated`` flag so
        silently-incomplete answers are impossible.
        """
        chain = self._chain(int(seq), depth)
        chain["store_truncated"] = self.truncated
        return chain

    def _chain(self, seq: int, depth: int) -> Dict[str, Any]:
        event = self._index.get(seq)
        if event is None:
            return {"seq": seq, "event": None, "truncated": True}
        node: Dict[str, Any] = {
            "seq": seq, "event": event.name, "truncated": False,
            "fields": dict(event.fields)}
        if depth > 0 and event.causes:
            # Guard against malformed forward references: causality only
            # ever points to the past, so chains are finite.
            node["causes"] = [self._chain(c, depth - 1)
                              for c in event.causes if c < seq]
        elif event.causes:
            node["causes_elided"] = list(event.causes)
        return node

    def why_aggregate(self, kind: Optional[str] = None,
                      window: Optional[Tuple[float, float]] = None,
                      axis: str = "time") -> Dict[str, Any]:
        """What caused decisions of ``kind`` in ``window`` -- from rollups.

        ``kind=None`` aggregates every decision kind.  ``window`` is an
        inclusive ``(lo, hi)`` range on ``axis`` (``"time"`` uses the
        events' ``time`` field, ``"seq"`` the bus sequence axis); both
        default to the whole stream.  The answer is assembled purely
        from counters, bucket sums and P² summaries -- O(rollup size),
        independent of how many events streamed through.
        """
        if axis not in ("time", "seq"):
            raise ValueError(f"axis must be 'time' or 'seq', not {axis!r}")
        selected = self._buckets.select(window, axis)
        kinds: Dict[str, Dict[str, Any]] = {}
        causes: Dict[str, Dict[str, int]] = {}
        for _, bucket in selected:
            for bucket_kind, cell in bucket["kinds"].items():
                if kind is not None and bucket_kind != kind:
                    continue
                agg = kinds.setdefault(bucket_kind,
                                       {"decisions": 0, "value_sum": 0.0,
                                        "value_count": 0})
                agg["decisions"] += cell[0]
                agg["value_sum"] += cell[1]
                agg["value_count"] += cell[2]
            for (bucket_kind, cause_class), count in bucket["classes"].items():
                if kind is not None and bucket_kind != kind:
                    continue
                per_kind = causes.setdefault(bucket_kind, {})
                per_kind[cause_class] = per_kind.get(cause_class, 0) + count
        for name, agg in kinds.items():
            value_sum = agg.pop("value_sum")
            value_count = agg.pop("value_count")
            agg["mean_value"] = (value_sum / value_count if value_count
                                 else math.nan)
            agg["value_field"] = self.value_field.get(name)
        # Whole-stream P² distributions per (kind, cause class) -- the
        # latency/utility story behind each causal pattern.  (Windowed
        # queries still get windowed counts/means from the buckets; the
        # quantile sketches are stream-global by construction.)
        distributions: Dict[str, Dict[str, Dict[str, float]]] = {}
        for (hist_kind, cause_class), hist in self.value_hists.items():
            if kind is not None and hist_kind != kind:
                continue
            distributions.setdefault(hist_kind, {})[cause_class] = \
                hist.summary()
        return {
            "kind": kind, "window": list(window) if window else None,
            "axis": axis,
            "decisions": sum(agg["decisions"] for agg in kinds.values()),
            "kinds": kinds, "causes": causes,
            "distributions": distributions,
            "buckets_scanned": len(selected),
            "truncated": self.truncated,
        }

    def stats(self) -> Dict[str, Any]:
        """The store's own accounting (memory-boundedness made visible)."""
        return {
            "events_seen": self.events_seen,
            "decisions_seen": self.decisions_seen,
            "indexed": len(self._index),
            "index_size": self.index_size,
            "buckets": len(self._buckets),
            "bucket_width": self._buckets.width,
            "rollup_cells": (len(self.counts)
                             + sum(len(v) for v in self.cause_counts.values())
                             + len(self.value_hists)),
            "unresolved_causes": self.unresolved_causes,
            "gaps": self.gaps,
            "truncated": self.truncated,
        }

    def __len__(self) -> int:
        return len(self._index)
