"""Causal self-explanation at scale (``repro.explain``).

The paper's self-explanation principle says a self-aware system should
report *why* it acted; :mod:`repro.core.explanation` does that per step
as prose.  This package makes explanations structured, causal and
queryable: decision events on the :mod:`repro.obs` bus carry ``causes``
(the seq ids of the telemetry, prediction and switch events they
consumed -- see :func:`repro.obs.causal_scope`), and the
:class:`ExplanationStore` indexes that stream so

- :meth:`~ExplanationStore.why` answers "why did decision ``seq``
  happen" with the full causal chain, and
- :meth:`~ExplanationStore.why_aggregate` answers "what caused
  decisions of kind K in window W" over millions of events in
  O(rollup) time, never replaying the raw stream.

Live systems attach the store to their bus; recorded JSONL traces (from
``run_all --telemetry`` or the serve layer) are ingested offline with
:meth:`~ExplanationStore.ingest_trace` or queried from the shell via
``python -m repro.explain trace.jsonl --why-aggregate``.
"""

from .store import (DEFAULT_DECISION_EVENTS, NO_CAUSE, UNKNOWN_CAUSE,
                    VALUE_FIELDS, ExplanationStore)

__all__ = [
    "DEFAULT_DECISION_EVENTS", "NO_CAUSE", "UNKNOWN_CAUSE", "VALUE_FIELDS",
    "ExplanationStore",
]
