"""Metric primitives and the labelled registry.

Three instrument kinds cover what the simulators and the core loop need:

- :class:`Counter` -- monotonically accumulating totals (messages sent,
  handovers, dropped requests);
- :class:`Gauge` -- a last-written value (active servers, alive robots);
- :class:`StreamingHistogram` -- distribution summaries (latencies, phase
  durations) tracking p50/p95/p99 via the P² algorithm [Jain & Chlamtac,
  CACM 1985] in O(1) memory, without storing samples.

A :class:`MetricsRegistry` keys instruments by ``(name, labels)`` so the
same metric can be broken out per node or per simulator.  The registry is
always writable -- gating on :func:`repro.obs.events.enabled` is the
*caller's* job, which keeps the disabled hot path to a single check.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Sequence, Tuple


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def increment(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can move in both directions; retains the last write."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = math.nan

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm.

    Keeps five markers whose heights converge on the ``p``-quantile of the
    stream; memory is constant and each update is O(1).  Exact for the
    first five observations.
    """

    __slots__ = ("p", "count", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError("p must be in (0, 1)")
        self.p = p
        self.count = 0
        self._q: List[float] = []       # marker heights
        self._n: List[float] = []       # marker positions
        self._np: List[float] = []      # desired positions
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def observe(self, x: float) -> None:
        """Feed one observation."""
        self.count += 1
        if self.count <= 5:
            self._q.append(float(x))
            self._q.sort()
            if self.count == 5:
                self._n = [0.0, 1.0, 2.0, 3.0, 4.0]
                self._np = [0.0, 2 * self.p, 4 * self.p,
                            2.0 + 2 * self.p, 4.0]
            return

        q, n = self._q, self._n
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if x >= q[i]:
                    k = i
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._np[i] += self._dn[i]

        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if ((d >= 1.0 and n[i + 1] - n[i] > 1.0)
                    or (d <= -1.0 and n[i - 1] - n[i] < -1.0)):
                d = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, d)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, d)
                q[i] = candidate
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (NaN before any observation)."""
        if self.count == 0:
            return math.nan
        if self.count <= 5:
            # Exact: nearest-rank interpolation over the stored sample.
            idx = self.p * (len(self._q) - 1)
            lo = int(math.floor(idx))
            hi = int(math.ceil(idx))
            frac = idx - lo
            return self._q[lo] * (1.0 - frac) + self._q[hi] * frac
        return self._q[2]


#: Default quantiles every histogram tracks.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


class StreamingHistogram:
    """Distribution summary in constant memory.

    Tracks count, sum, min, max and a P² estimator per requested quantile.
    """

    __slots__ = ("count", "total", "min", "max", "_quantiles")

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        if not quantiles:
            raise ValueError("need at least one quantile")
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._quantiles: Dict[float, P2Quantile] = {
            float(p): P2Quantile(float(p)) for p in quantiles}

    def observe(self, value: float) -> None:
        """Feed one observation into every marker set."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for estimator in self._quantiles.values():
            estimator.observe(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean (NaN when empty)."""
        return self.total / self.count if self.count else math.nan

    def quantile(self, p: float) -> float:
        """The tracked quantile estimate for ``p`` (KeyError if untracked)."""
        return self._quantiles[float(p)].value

    def summary(self) -> Dict[str, float]:
        """All statistics as a flat dict (the exporter's view)."""
        out = {"count": float(self.count), "sum": self.total,
               "mean": self.mean,
               "min": self.min if self.count else math.nan,
               "max": self.max if self.count else math.nan}
        for p, estimator in sorted(self._quantiles.items()):
            out[f"p{round(p * 100):d}"] = estimator.value
        return out


class MergedHistogram:
    """Count-weighted combination of histogram *summaries*.

    Worker processes ship :meth:`StreamingHistogram.summary` dicts back
    to the parent; P² marker state cannot be merged exactly, so this
    instrument combines the summaries instead.  ``count``/``sum``/
    ``min``/``max`` (and therefore ``mean``) are exact; quantiles are
    count-weighted means of the per-shard estimates -- a fair
    approximation when the shards draw from similar distributions,
    which is what seed-sharding produces.  Quacks like a histogram for
    :meth:`MetricsRegistry.snapshot`.
    """

    __slots__ = ("count", "total", "min", "max", "_weighted")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        # quantile key (e.g. "p95") -> [weighted sum, total weight]
        self._weighted: Dict[str, List[float]] = {}

    def absorb_summary(self, summary: Mapping[str, float]) -> None:
        """Fold one :meth:`StreamingHistogram.summary` dict in."""
        count = float(summary.get("count", 0.0))
        if count <= 0:
            return
        self.count += int(count)
        self.total += float(summary.get("sum", 0.0))
        lo = float(summary.get("min", math.nan))
        hi = float(summary.get("max", math.nan))
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        for key, value in summary.items():
            if not (key.startswith("p") and key[1:].isdigit()):
                continue
            value = float(value)
            if math.isnan(value):
                continue
            cell = self._weighted.setdefault(key, [0.0, 0.0])
            cell[0] += value * count
            cell[1] += count

    def observe(self, value: float) -> None:
        """Feed one direct observation (treated as a one-sample shard)."""
        value = float(value)
        one = {"count": 1.0, "sum": value, "min": value, "max": value}
        for key in (self._weighted or
                    {f"p{round(p * 100):d}": None for p in DEFAULT_QUANTILES}):
            one[key] = value
        self.absorb_summary(one)

    @property
    def mean(self) -> float:
        """Arithmetic mean (NaN when empty); exact across merges."""
        return self.total / self.count if self.count else math.nan

    def quantile(self, p: float) -> float:
        """Weighted-mean estimate for the tracked quantile ``p``."""
        cell = self._weighted[f"p{round(float(p) * 100):d}"]
        return cell[0] / cell[1] if cell[1] else math.nan

    def summary(self) -> Dict[str, float]:
        """Same shape as :meth:`StreamingHistogram.summary`."""
        out = {"count": float(self.count), "sum": self.total,
               "mean": self.mean,
               "min": self.min if self.count else math.nan,
               "max": self.max if self.count else math.nan}
        for key in sorted(self._weighted, key=lambda k: int(k[1:])):
            weighted_sum, weight = self._weighted[key]
            out[key] = weighted_sum / weight if weight else math.nan
        return out


def metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """Canonical string key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create home for every labelled instrument."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        # StreamingHistogram normally; a MergedHistogram replaces it the
        # first time a foreign snapshot is folded in (see merge_snapshot).
        self._histograms: Dict[str, Any] = {}

    # -- instrument accessors (get-or-create) ------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter registered under ``name`` + ``labels``."""
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge registered under ``name`` + ``labels``."""
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str,
                  quantiles: Sequence[float] = DEFAULT_QUANTILES,
                  **labels: Any) -> StreamingHistogram:
        """The histogram registered under ``name`` + ``labels``."""
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = StreamingHistogram(quantiles)
        return instrument

    # -- aggregate views ----------------------------------------------------

    def total(self, name: str) -> float:
        """Sum of one counter across every label combination."""
        prefix = name + "{"
        return sum(c.value for key, c in self._counters.items()
                   if key == name or key.startswith(prefix))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Everything, as plain dicts (stable across exporter formats)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {k: h.summary()
                           for k, h in sorted(self._histograms.items())},
        }

    def merge_snapshot(self, snap: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The merge a parallel runner needs when workers ship their
        telemetry home: counters add; gauges take the incoming value
        (last merge wins, matching ordinary gauge semantics); histograms
        become :class:`MergedHistogram` instruments combining the
        shipped summaries (exact count/sum/min/max, count-weighted
        quantiles).  Keys are the canonical ``name{labels}`` strings, so
        the same metric from different workers lands on one instrument.
        """
        for key, value in snap.get("counters", {}).items():
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
            instrument.increment(float(value))
        for key, value in snap.get("gauges", {}).items():
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
            instrument.set(value)
        for key, summary in snap.get("histograms", {}).items():
            existing = self._histograms.get(key)
            if not isinstance(existing, MergedHistogram):
                merged = MergedHistogram()
                if existing is not None:
                    merged.absorb_summary(existing.summary())
                self._histograms[key] = merged
                existing = merged
            existing.absorb_summary(summary)

    def clear(self) -> None:
        """Forget every instrument (tests and fresh sessions)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: Default process-wide registry, mirroring the default event bus.
_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The current default registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the default registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


def counter(name: str, **labels: Any) -> Counter:
    """Get-or-create a counter on the default registry."""
    return _registry.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return _registry.gauge(name, **labels)


def histogram(name: str, quantiles: Sequence[float] = DEFAULT_QUANTILES,
              **labels: Any) -> StreamingHistogram:
    """Get-or-create a histogram on the default registry."""
    return _registry.histogram(name, quantiles, **labels)
