"""Phase timing: where does a control step actually spend its time?

The paper's control loop has recognisable phases -- sense, model, reason,
act -- and the first question any perf work asks is which phase dominates.
:class:`phase_timer` is a re-entrant-free, allocation-light context
manager over :func:`time.perf_counter`:

- ``duration`` is always measured (callers may use the timer as a plain
  stopwatch even with telemetry off);
- with a ``sink`` dict, the duration lands under the phase name, letting
  a caller assemble one per-step timing record from several phases;
- when telemetry is enabled, the duration feeds the
  ``phase_seconds{phase=...}`` streaming histogram, so p50/p95/p99 phase
  latencies are available without storing per-step samples.

Callers on hot paths should branch on :func:`repro.obs.events.enabled`
and skip timer construction entirely when telemetry is off; the node and
loop instrumentation does exactly that.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, Optional, Tuple

from . import events as _events
from . import metrics as _metrics

#: Canonical phase names of one control step, in execution order.
PHASES: Tuple[str, ...] = ("sense", "model", "reason", "act")


class phase_timer:
    """Time one phase of a control step.

    Parameters
    ----------
    phase:
        Phase name (conventionally one of :data:`PHASES`, but any string
        works -- simulators time domain phases too).
    sink:
        Optional dict; on exit ``sink[phase] = duration_seconds``.
    record:
        When ``True`` (default) and telemetry is enabled, the duration is
        observed into the ``phase_seconds`` histogram labelled with
        ``phase`` and any extra ``labels``.
    labels:
        Extra histogram labels (e.g. ``node='demo'``).
    """

    __slots__ = ("phase", "duration", "_sink", "_record", "_labels", "_start")

    def __init__(self, phase: str, sink: Optional[Dict[str, float]] = None,
                 record: bool = True, **labels: Any) -> None:
        self.phase = phase
        self.duration = 0.0
        self._sink = sink
        self._record = record
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "phase_timer":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = perf_counter() - self._start
        if self._sink is not None:
            self._sink[self.phase] = self.duration
        if self._record and _events.enabled():
            _metrics.histogram("phase_seconds", phase=self.phase,
                               **self._labels).observe(self.duration)
        return None
