"""Getting telemetry out: JSONL traces, summaries, snapshots, sessions.

Four consumers of the event bus and metrics registry:

- :class:`JsonlTraceWriter` -- a bus subscriber appending one JSON object
  per event to a file; on close it appends a final ``metrics.snapshot``
  record so a trace is self-contained.
- :func:`snapshot` -- the combined bus + registry state as plain dicts,
  the view tests assert against.
- :func:`render_summary` -- human-readable (markdown-flavoured) account
  of a snapshot, for consoles and reports.
- :class:`TelemetrySession` -- a context manager that swaps in a fresh
  bus/registry, enables telemetry, optionally attaches a trace writer,
  and restores the previous state on exit.  Experiments and examples use
  it so enabling observability is one ``with`` line.
"""

from __future__ import annotations

import json
import sys
from contextlib import nullcontext
from typing import (Any, ContextManager, Dict, Iterable, List, Mapping,
                    Optional, TextIO)

from .events import Event, EventBus, get_bus, set_bus, unescape_fields
from .metrics import MetricsRegistry, get_registry, set_registry


class JsonlTraceWriter:
    """Append events to ``path`` as JSON Lines.

    Values that are not JSON-native (e.g. hashable action objects) are
    serialised via ``repr``, so arbitrary simulator payloads never break
    the trace.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[TextIO] = open(path, "w")
        self.written = 0

    def __call__(self, event: Event) -> None:
        """Subscriber interface: write one event."""
        self.write_record(event.as_dict())

    def write_record(self, record: Dict[str, Any]) -> None:
        """Write one arbitrary JSON record (used for the final snapshot)."""
        if self._handle is None:
            raise ValueError("trace writer already closed")
        self._handle.write(json.dumps(record, default=repr) + "\n")
        self.written += 1

    def close(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Flush and close; appends a ``metrics.snapshot`` record first."""
        if self._handle is None:
            return
        if registry is not None:
            self.write_record({"event": "metrics.snapshot",
                               "metrics": registry.snapshot()})
        self._handle.close()
        self._handle = None


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into dicts (tests and quick analysis)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def snapshot(bus: Optional[EventBus] = None,
             registry: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """Combined state of the bus and registry as plain dicts."""
    bus = bus if bus is not None else get_bus()
    registry = registry if registry is not None else get_registry()
    out: Dict[str, Any] = dict(registry.snapshot())
    out["events"] = {"retained": len(bus), "dropped": bus.dropped}
    return out


def render_summary(snap: Optional[Dict[str, Any]] = None) -> str:
    """Render a snapshot as readable text (markdown-flavoured)."""
    snap = snap if snap is not None else snapshot()
    lines: List[str] = ["# Telemetry summary"]
    counters = snap.get("counters", {})
    if counters:
        lines.append("")
        lines.append("## Counters")
        for key, value in counters.items():
            lines.append(f"- {key}: {value:g}")
    gauges = snap.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("## Gauges")
        for key, value in gauges.items():
            lines.append(f"- {key}: {value:g}")
    histograms = snap.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("## Histograms")
        header = ["metric", "count", "mean", "p50", "p95", "p99", "max"]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join("---" for _ in header) + "|")
        for key, summary in histograms.items():
            cells = [key] + [f"{summary.get(c, float('nan')):.3g}"
                             for c in header[1:]]
            lines.append("| " + " | ".join(cells) + " |")
    events = snap.get("events")
    if events:
        lines.append("")
        lines.append(f"*events: {events['retained']} retained, "
                     f"{events['dropped']} dropped from ring*")
    return "\n".join(lines)


class TelemetrySession:
    """Scoped telemetry: fresh bus + registry, enabled, optionally traced.

    Parameters
    ----------
    trace_path:
        When given, a :class:`JsonlTraceWriter` subscribes to the session
        bus and the file gains a final ``metrics.snapshot`` record on
        exit.
    events_maxlen:
        Ring-buffer capacity of the session bus.
    echo_summary:
        When ``True``, :func:`render_summary` is printed to stderr on
        exit (what ``--trace`` on the examples uses).
    """

    def __init__(self, trace_path: Optional[str] = None,
                 events_maxlen: int = 65536,
                 echo_summary: bool = False) -> None:
        self.trace_path = trace_path
        self.bus = EventBus(maxlen=events_maxlen, enabled=False)
        self.registry = MetricsRegistry()
        self.writer: Optional[JsonlTraceWriter] = None
        self._echo_summary = echo_summary
        self._previous_bus: Optional[EventBus] = None
        self._previous_registry: Optional[MetricsRegistry] = None
        self._depth = 0

    @property
    def active(self) -> bool:
        """Whether the session is currently entered."""
        return self._depth > 0

    def __enter__(self) -> "TelemetrySession":
        # Re-entrant: an experiment runner may hold one session open
        # around a whole suite while per-experiment helpers enter it too.
        self._depth += 1
        if self._depth > 1:
            return self
        self._previous_bus = set_bus(self.bus)
        self._previous_registry = set_registry(self.registry)
        if self.trace_path is not None:
            self.writer = JsonlTraceWriter(self.trace_path)
            self.bus.subscribe(self.writer)
        self.bus.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._depth -= 1
        if self._depth > 0:
            return None
        self.bus.disable()
        if self.writer is not None:
            self.writer.close(registry=self.registry)
            self.bus.unsubscribe(self.writer)
            self.writer = None
        if self._previous_bus is not None:
            set_bus(self._previous_bus)
        if self._previous_registry is not None:
            set_registry(self._previous_registry)
        if self._echo_summary:
            print(self.snapshot_summary(), file=sys.stderr)
        return None

    def absorb(self, events: Iterable[Mapping[str, Any]],
               metrics: Optional[Mapping[str, Any]] = None) -> None:
        """Merge telemetry shipped home by a worker into this session.

        ``events`` are event dicts in :meth:`Event.as_dict` form; each is
        re-emitted on the session bus (gaining a fresh parent-local
        ``seq``), so every subscriber -- including an attached JSONL
        trace writer -- sees them exactly as if they had happened here.
        ``causes`` references are remapped through the worker-seq to
        parent-seq correspondence built as the buffer replays, so causal
        chains survive the re-basing byte-identically at any worker
        count; a cause whose event never reached the buffer (dropped
        from the worker's ring) is unresolvable and is dropped here too.
        Reserved-key escapes applied by :meth:`Event.as_dict` are
        undone.  ``metrics`` is a registry snapshot, folded in via
        :meth:`MetricsRegistry.merge_snapshot`.  Call while the session
        is active; the parallel experiment engine absorbs shard results
        in deterministic (experiment, seed) order so traces stay
        reproducible.
        """
        remap: Dict[int, int] = {}
        for record in events:
            fields = dict(record)
            name = fields.pop("event", "event")
            old_seq = fields.pop("seq", None)
            causes = fields.pop("causes", None)
            if causes:
                causes = tuple(remap[c] for c in causes if c in remap)
            emitted = self.bus.emit(name, causes=causes or (),
                                    **unescape_fields(fields))
            if old_seq is not None and emitted is not None:
                remap[int(old_seq)] = emitted.seq
        if metrics is not None:
            self.registry.merge_snapshot(metrics)

    def snapshot(self) -> Dict[str, Any]:
        """This session's combined bus + registry state."""
        return snapshot(bus=self.bus, registry=self.registry)

    def snapshot_summary(self) -> str:
        """This session's snapshot, rendered."""
        return render_summary(self.snapshot())


def cli_telemetry(argv: Optional[List[str]] = None) -> ContextManager:
    """``--trace [PATH]`` support for the examples.

    Pops ``--trace`` (and its optional path argument, default
    ``trace.jsonl``) from ``argv`` (default ``sys.argv``) and returns a
    :class:`TelemetrySession` when present, else a ``nullcontext``.  Lets
    every example opt into telemetry with one wrapper line::

        with cli_telemetry():
            main()
    """
    argv = argv if argv is not None else sys.argv
    if "--trace" not in argv:
        return nullcontext()
    at = argv.index("--trace")
    path = "trace.jsonl"
    if at + 1 < len(argv) and not argv[at + 1].startswith("-"):
        path = argv[at + 1]
        del argv[at:at + 2]
    else:
        del argv[at]
    print(f"[telemetry enabled; trace -> {path}]", file=sys.stderr)
    return TelemetrySession(trace_path=path, echo_summary=True)
