"""A process-local structured event bus.

Self-awareness starts with the ability to observe oneself; this module is
the substrate every other observability piece builds on.  Components call
:func:`emit` with a name and arbitrary scalar fields; subscribers (trace
writers, explanation logs, tests) receive each event as it happens, and a
bounded ring buffer retains the recent past for after-the-fact inspection.

Telemetry is **off by default** and the disabled path is designed to be
as close to free as Python allows: callers guard instrumentation blocks
with :func:`enabled` (one attribute read), and :func:`emit` on a disabled
bus returns before building any event object.  The overhead budget is
enforced by ``benchmarks/test_obs_overhead.py``.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from collections import deque
from typing import (Any, Callable, ContextManager, Deque, Dict, List,
                    Optional, Tuple, Union)

#: Keys :meth:`Event.as_dict` reserves for the record envelope.  Caller
#: fields with these names (or already starting with the escape prefix)
#: are written prefix-escaped and restored on ingestion, so a field
#: literally named ``"seq"`` can never clobber the envelope.
RESERVED_KEYS = frozenset(("event", "seq", "causes"))

#: Prefix used to escape colliding field names in the flat dict form.
ESCAPE_PREFIX = "~"

#: Hard cap on the number of cause references one event carries; keeps
#: provenance records bounded however wide a causal scope gets.
MAX_CAUSES = 16


def unescape_fields(fields: Dict[str, Any]) -> Dict[str, Any]:
    """Undo the reserved-key escaping of :meth:`Event.as_dict`.

    Call on a record dict *after* popping the envelope keys; returns the
    same dict (mutated) with one escape prefix stripped from every
    escaped key.
    """
    escaped = [key for key in fields if key.startswith(ESCAPE_PREFIX)]
    for key in escaped:
        fields[key[len(ESCAPE_PREFIX):]] = fields.pop(key)
    return fields


@dataclass
class Event:
    """One structured telemetry event.

    ``seq`` is a bus-local monotonically increasing sequence number, so a
    recorded stream can always be replayed in emission order.  ``causes``
    holds the seq ids of the earlier events this one was a consequence of
    (the telemetry, predictions and switches a decision consumed) -- the
    raw material of :mod:`repro.explain`.
    """

    name: str
    seq: int
    fields: Dict[str, Any] = field(default_factory=dict)
    causes: Tuple[int, ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        """Field access with a default (sugar for ``event.fields.get``)."""
        return self.fields.get(key, default)

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict form used by the JSONL exporter.

        Envelope keys are ``event``, ``seq`` and (when present)
        ``causes``; caller fields colliding with those names are written
        with :data:`ESCAPE_PREFIX` prepended so they survive the round
        trip (see :func:`unescape_fields`).
        """
        out: Dict[str, Any] = {"event": self.name, "seq": self.seq}
        if self.causes:
            out["causes"] = list(self.causes)
        for key, value in self.fields.items():
            if key in RESERVED_KEYS or key.startswith(ESCAPE_PREFIX):
                key = ESCAPE_PREFIX + key
            out[key] = value
        return out


#: What callers may hand a causal scope or an explicit ``causes=``:
#: events (their seq is taken), raw seq ids, or ``None`` placeholders
#: (skipped, so disabled-bus ``emit`` returns compose cleanly).
CauseLike = Union["Event", int, None]


def _resolve_causes(causes) -> Tuple[int, ...]:
    """Normalise a mix of events / seq ids / Nones into a seq tuple."""
    out: List[int] = []
    for cause in causes:
        if cause is None:
            continue
        seq = cause.seq if isinstance(cause, Event) else int(cause)
        if seq not in out:
            out.append(seq)
    return tuple(out[:MAX_CAUSES])


class _CausalScope:
    """Context manager pushing a cause tuple onto a bus's scope stack.

    Only constructed for an enabled bus (:func:`causal_scope` returns a
    shared null context otherwise); re-checks at entry so a bus disabled
    between construction and use stays untouched.
    """

    __slots__ = ("_bus", "_causes", "_pushed")

    def __init__(self, bus: "EventBus", causes: Tuple[int, ...]) -> None:
        self._bus = bus
        self._causes = causes
        self._pushed = False

    def __enter__(self) -> "_CausalScope":
        if self._bus.enabled:
            self._bus._scope.append(self._causes)
            self._pushed = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._pushed:
            self._bus._scope.pop()
            self._pushed = False
        return None


#: Shared, stateless no-op scope handed out when the bus is disabled.
_NULL_SCOPE = nullcontext()


Subscriber = Callable[[Event], None]


class EventBus:
    """Process-local pub/sub with bounded retention.

    Parameters
    ----------
    maxlen:
        Ring-buffer capacity; the oldest events are discarded first.
    enabled:
        Initial state.  A disabled bus drops events at the top of
        :meth:`emit` without allocating anything.
    """

    def __init__(self, maxlen: int = 4096, enabled: bool = False) -> None:
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self.enabled = enabled
        self._ring: Deque[Event] = deque(maxlen=maxlen)
        self._subscribers: List[Subscriber] = []
        self._seq = 0
        self.dropped = 0  # events emitted after the ring was full
        #: Stack of ambient cause tuples (see :meth:`causal_scope`).
        self._scope: List[Tuple[int, ...]] = []

    # -- control ----------------------------------------------------------

    def enable(self) -> None:
        """Start accepting events."""
        self.enabled = True

    def disable(self) -> None:
        """Stop accepting events (retained events stay readable)."""
        self.enabled = False

    def clear(self) -> None:
        """Drop retained events (subscribers stay attached)."""
        self._ring.clear()
        self.dropped = 0

    # -- emission ----------------------------------------------------------

    def emit(self, name: str, *, causes=None, **fields: Any) -> Optional[Event]:
        """Publish one event; returns it, or ``None`` when disabled.

        ``causes`` stamps the event with the seq ids of the events that
        caused it (events, ints and ``None`` placeholders all accepted).
        Explicit causes are unioned with the innermost ambient
        :meth:`causal_scope`; with ``causes=None`` the ambient scope
        alone applies.  Disabled buses return before touching any of it.
        """
        if not self.enabled:
            return None
        scope = self._scope
        if causes is None:
            effective = scope[-1] if scope else ()
        else:
            effective = _resolve_causes(causes)
            if scope and scope[-1]:
                effective = _resolve_causes(effective + scope[-1])
        event = Event(name=name, seq=self._seq, fields=fields,
                      causes=effective)
        self._seq += 1
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def causal_scope(self, *causes: CauseLike) -> ContextManager:
        """Declare the causes of everything emitted inside a ``with`` block.

        Decision-making code wraps its deliberate-and-act phase in a
        scope built from the events it consumed; every event emitted
        inside (by any module) is stamped with those seq ids without
        threading them through call signatures.  Scopes nest: the
        innermost one applies; an event's explicit ``causes=`` are
        unioned with it.  On a disabled bus this returns a shared no-op
        context and costs nothing.
        """
        if not self.enabled:
            return _NULL_SCOPE
        return _CausalScope(self, _resolve_causes(causes))

    def current_causes(self) -> Tuple[int, ...]:
        """The innermost ambient cause tuple (empty outside any scope)."""
        return self._scope[-1] if self._scope else ()

    # -- subscription ------------------------------------------------------

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Attach a callback invoked on every event; returns it (for chaining)."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Detach a previously attached callback (no-op when absent)."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass

    # -- inspection --------------------------------------------------------

    def events(self, name: Optional[str] = None) -> List[Event]:
        """Retained events, oldest first, optionally filtered by name."""
        if name is None:
            return list(self._ring)
        return [e for e in self._ring if e.name == name]

    def __len__(self) -> int:
        return len(self._ring)


#: The default process-wide bus.  Instrumented modules emit here unless a
#: caller swapped in their own via :func:`set_bus`.
_bus = EventBus()


def get_bus() -> EventBus:
    """The current default bus."""
    return _bus


def set_bus(bus: EventBus) -> EventBus:
    """Replace the default bus; returns the previous one."""
    global _bus
    previous = _bus
    _bus = bus
    return previous


def enabled() -> bool:
    """Is telemetry currently on?  (The guard hot paths check.)"""
    return _bus.enabled


def emit(name: str, *, causes=None, **fields: Any) -> Optional[Event]:
    """Emit on the default bus (no-op returning ``None`` when disabled)."""
    bus = _bus
    if not bus.enabled:
        return None
    return bus.emit(name, causes=causes, **fields)


def causal_scope(*causes: CauseLike) -> ContextManager:
    """A causal scope on the default bus (no-op context when disabled)."""
    return _bus.causal_scope(*causes)


def subscribe(subscriber: Subscriber) -> Subscriber:
    """Subscribe to the default bus."""
    return _bus.subscribe(subscriber)


def unsubscribe(subscriber: Subscriber) -> None:
    """Unsubscribe from the default bus."""
    _bus.unsubscribe(subscriber)
