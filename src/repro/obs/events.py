"""A process-local structured event bus.

Self-awareness starts with the ability to observe oneself; this module is
the substrate every other observability piece builds on.  Components call
:func:`emit` with a name and arbitrary scalar fields; subscribers (trace
writers, explanation logs, tests) receive each event as it happens, and a
bounded ring buffer retains the recent past for after-the-fact inspection.

Telemetry is **off by default** and the disabled path is designed to be
as close to free as Python allows: callers guard instrumentation blocks
with :func:`enabled` (one attribute read), and :func:`emit` on a disabled
bus returns before building any event object.  The overhead budget is
enforced by ``benchmarks/test_obs_overhead.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional


@dataclass
class Event:
    """One structured telemetry event.

    ``seq`` is a bus-local monotonically increasing sequence number, so a
    recorded stream can always be replayed in emission order.
    """

    name: str
    seq: int
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Field access with a default (sugar for ``event.fields.get``)."""
        return self.fields.get(key, default)

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict form used by the JSONL exporter."""
        out: Dict[str, Any] = {"event": self.name, "seq": self.seq}
        out.update(self.fields)
        return out


Subscriber = Callable[[Event], None]


class EventBus:
    """Process-local pub/sub with bounded retention.

    Parameters
    ----------
    maxlen:
        Ring-buffer capacity; the oldest events are discarded first.
    enabled:
        Initial state.  A disabled bus drops events at the top of
        :meth:`emit` without allocating anything.
    """

    def __init__(self, maxlen: int = 4096, enabled: bool = False) -> None:
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self.enabled = enabled
        self._ring: Deque[Event] = deque(maxlen=maxlen)
        self._subscribers: List[Subscriber] = []
        self._seq = 0
        self.dropped = 0  # events emitted after the ring was full

    # -- control ----------------------------------------------------------

    def enable(self) -> None:
        """Start accepting events."""
        self.enabled = True

    def disable(self) -> None:
        """Stop accepting events (retained events stay readable)."""
        self.enabled = False

    def clear(self) -> None:
        """Drop retained events (subscribers stay attached)."""
        self._ring.clear()
        self.dropped = 0

    # -- emission ----------------------------------------------------------

    def emit(self, name: str, **fields: Any) -> Optional[Event]:
        """Publish one event; returns it, or ``None`` when disabled."""
        if not self.enabled:
            return None
        event = Event(name=name, seq=self._seq, fields=fields)
        self._seq += 1
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    # -- subscription ------------------------------------------------------

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Attach a callback invoked on every event; returns it (for chaining)."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Detach a previously attached callback (no-op when absent)."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass

    # -- inspection --------------------------------------------------------

    def events(self, name: Optional[str] = None) -> List[Event]:
        """Retained events, oldest first, optionally filtered by name."""
        if name is None:
            return list(self._ring)
        return [e for e in self._ring if e.name == name]

    def __len__(self) -> int:
        return len(self._ring)


#: The default process-wide bus.  Instrumented modules emit here unless a
#: caller swapped in their own via :func:`set_bus`.
_bus = EventBus()


def get_bus() -> EventBus:
    """The current default bus."""
    return _bus


def set_bus(bus: EventBus) -> EventBus:
    """Replace the default bus; returns the previous one."""
    global _bus
    previous = _bus
    _bus = bus
    return previous


def enabled() -> bool:
    """Is telemetry currently on?  (The guard hot paths check.)"""
    return _bus.enabled


def emit(name: str, **fields: Any) -> Optional[Event]:
    """Emit on the default bus (no-op returning ``None`` when disabled)."""
    bus = _bus
    if not bus.enabled:
        return None
    return bus.emit(name, **fields)


def subscribe(subscriber: Subscriber) -> Subscriber:
    """Subscribe to the default bus."""
    return _bus.subscribe(subscriber)


def unsubscribe(subscriber: Subscriber) -> None:
    """Unsubscribe from the default bus."""
    _bus.unsubscribe(subscriber)
