"""Observability for the self-aware stack (``repro.obs``).

The paper argues a computing system should be able to observe, model and
explain itself; this package is that capability turned inward on the
reproduction itself:

- :mod:`~repro.obs.events` -- a process-local structured event bus with
  ring-buffer retention (zero-cost when disabled);
- :mod:`~repro.obs.metrics` -- labelled counters, gauges and streaming
  histograms (p50/p95/p99 in constant memory via the P² algorithm);
- :mod:`~repro.obs.timers` -- ``phase_timer`` over ``perf_counter`` for
  the sense → model → reason → act phases of every control step;
- :mod:`~repro.obs.export` -- JSONL trace writing, snapshots, readable
  summaries and the scoped :class:`~repro.obs.export.TelemetrySession`.

Telemetry is off by default.  Enable it for a scope::

    from repro.obs import TelemetrySession

    with TelemetrySession(trace_path="trace.jsonl") as session:
        run_control_loop(node, env, goal, steps=500)
    print(session.snapshot_summary())

Instrumented hot paths guard on :func:`enabled` so the disabled cost is
one attribute check (see ``benchmarks/test_obs_overhead.py``).
"""

from .events import (ESCAPE_PREFIX, MAX_CAUSES, RESERVED_KEYS, Event,
                     EventBus, causal_scope, emit, enabled, get_bus, set_bus,
                     subscribe, unescape_fields, unsubscribe)
from .export import (JsonlTraceWriter, TelemetrySession, cli_telemetry,
                     read_trace, render_summary, snapshot)
from .metrics import (Counter, Gauge, MetricsRegistry, P2Quantile,
                      StreamingHistogram, counter, gauge, get_registry,
                      histogram, metric_key, set_registry)
from .timers import PHASES, phase_timer

__all__ = [
    "ESCAPE_PREFIX", "MAX_CAUSES", "RESERVED_KEYS",
    "Event", "EventBus", "causal_scope", "emit", "enabled", "get_bus",
    "set_bus", "subscribe", "unescape_fields", "unsubscribe",
    "JsonlTraceWriter", "TelemetrySession", "cli_telemetry", "read_trace",
    "render_summary", "snapshot",
    "Counter", "Gauge", "MetricsRegistry", "P2Quantile",
    "StreamingHistogram", "counter", "gauge", "get_registry", "histogram",
    "metric_key", "set_registry",
    "PHASES", "phase_timer",
]
