"""The float-identity discipline shared by the struct-of-arrays cores.

Every vectorised substrate core (swarm, smart-camera, sensornet) obeys
the same contract: array math never *decides* anything on its own.
Batched squared distances are used only

- as **conservative prefilters** whose hits are re-checked with the
  exact scalar predicate (``math.hypot(...) <= r``), or
- inside **tolerance bands** within which the exact scalar expression is
  re-evaluated, so any few-ulp disagreement between ``sqrt(dx*dx+dy*dy)``
  and ``math.hypot`` can never flip a comparison.

This module holds the shared constants and helpers so each core uses
the same bands (and the equivalence tests pin one discipline, not
three).  The numpy gate lives here too: consumers fall back to scalar
loops over stdlib ``array`` buffers when numpy is unavailable, keeping
the package free of new hard dependencies.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the container always has numpy
    _np = None
    HAVE_NUMPY = False

#: Relative inflation applied to candidate-prefilter radii so that the
#: squared-distance comparison is a guaranteed superset of the exact
#: ``math.hypot(...) <= r`` predicate (hypot and sqrt-of-squares agree
#: to a few ulp; 1e-9 is ~1e7 ulp of headroom on unit-square scales).
PREFILTER_SLACK = 1e-9

#: Relative band within which two batched squared distances are treated
#: as a potential tie and re-decided by the exact scalar predicate.
#: Squared-distance expressions agree with ``math.hypot`` squared to a
#: few ulp (~1e-15 relative); 1e-9 leaves ~6 orders of margin while
#: making ties astronomically rare.
EXACT_REL = 1e-9


def prefilter_limit_sq(radius: float) -> float:
    """Squared prefilter radius guaranteed to contain every exact hit."""
    limit = radius * (1.0 + PREFILTER_SLACK)
    return limit * limit
