"""Shared spatial indexing for the geometric substrates.

The camera network and the swarm both answer the same two queries every
step: "which discs contain this point?" (cameras seeing an object,
robots sensing an event) and "which points lie within range of this
point?".  Naively both are O(discs x points) scans; :class:`SpatialGrid`
answers them from a uniform hash grid in near-constant time per query
while returning *exactly* the same candidates a full scan would accept
-- callers re-check candidates with the original exact predicate, so
optimised paths stay byte-identical to the naive references.
"""

from .exact import (EXACT_REL, HAVE_NUMPY, PREFILTER_SLACK,
                    prefilter_limit_sq)
from .grid import SpatialGrid

__all__ = ["SpatialGrid", "EXACT_REL", "HAVE_NUMPY", "PREFILTER_SLACK",
           "prefilter_limit_sq"]
