"""A uniform-cell spatial hash over the plane.

Two index modes, matching the two hot queries of the simulators:

- **disc mode** (:meth:`insert_disc` + :meth:`candidates_at`): index a set
  of discs (camera fields of view, robot sensing ranges); query which
  discs *might* contain a point.  Each disc is registered in every cell
  its bounding box overlaps, so the single cell containing the query
  point is guaranteed to list every disc that actually contains it.
- **point mode** (:meth:`insert_point` + :meth:`candidates_near`): index a
  set of points; query which points *might* lie within ``r`` of a query
  point by scanning the cells overlapping the query's bounding box.

Both queries return *supersets* of the exact answer, sorted by key;
callers apply the original exact predicate (``hypot(...) <= radius``) to
each candidate.  Because the exact predicate, the candidate order and
the float arithmetic are unchanged, replacing a full scan with a grid
query cannot change any result -- only how many non-matches are examined.

Coordinates are unbounded (cells exist lazily in a dict), so callers
never need to clamp queries to an arena.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Tuple


class SpatialGrid:
    """Uniform spatial hash with lazily materialised cells.

    Parameters
    ----------
    cell_size:
        Edge length of one square cell.  For disc mode a good choice is
        the maximum disc radius; for point mode the typical query radius.
    """

    __slots__ = ("cell_size", "_inv", "_cells", "_sets", "_finalised")

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0 or not math.isfinite(cell_size):
            raise ValueError("cell_size must be positive and finite")
        self.cell_size = cell_size
        self._inv = 1.0 / cell_size
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        self._sets: Dict[Tuple[int, int], FrozenSet[int]] = {}
        self._finalised = False

    def __len__(self) -> int:
        return len(self._cells)

    # -- building ----------------------------------------------------------

    def insert_point(self, key: int, x: float, y: float) -> None:
        """Register a point under ``key`` (one cell)."""
        self._finalised = False
        self._sets.clear()
        cell = (math.floor(x * self._inv), math.floor(y * self._inv))
        self._cells.setdefault(cell, []).append(key)

    def insert_disc(self, key: int, x: float, y: float, radius: float) -> None:
        """Register a disc under ``key`` in every cell its bbox overlaps."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self._finalised = False
        self._sets.clear()
        inv = self._inv
        x0 = math.floor((x - radius) * inv)
        x1 = math.floor((x + radius) * inv)
        y0 = math.floor((y - radius) * inv)
        y1 = math.floor((y + radius) * inv)
        cells = self._cells
        for ix in range(x0, x1 + 1):
            for iy in range(y0, y1 + 1):
                cells.setdefault((ix, iy), []).append(key)

    def finalise(self) -> "SpatialGrid":
        """Sort every cell's bucket so candidate order is by key.

        Queries finalise lazily, so calling this is optional; it is
        idempotent and returns ``self`` for chaining.
        """
        if not self._finalised:
            for bucket in self._cells.values():
                bucket.sort()
            self._finalised = True
        return self

    # -- queries -----------------------------------------------------------

    def candidates_at(self, x: float, y: float) -> List[int]:
        """Disc mode: keys of every disc whose bbox covers ``(x, y)``.

        Sorted by key; a superset of the discs actually containing the
        point (the caller applies the exact containment predicate).
        """
        if not self._finalised:
            self.finalise()
        cell = (math.floor(x * self._inv), math.floor(y * self._inv))
        return self._cells.get(cell, _EMPTY)

    def candidate_set_at(self, x: float, y: float) -> FrozenSet[int]:
        """Disc mode: :meth:`candidates_at` as a frozenset, cached per cell.

        For membership-test pruning of an existing candidate list (keep
        only entries that could match), where building a set per query
        would cost more than the scan it avoids.
        """
        cell = (math.floor(x * self._inv), math.floor(y * self._inv))
        cached = self._sets.get(cell)
        if cached is None:
            cached = frozenset(self._cells.get(cell, _EMPTY))
            self._sets[cell] = cached
        return cached

    def candidates_near(self, x: float, y: float, radius: float) -> List[int]:
        """Point mode: keys of points in cells overlapping the query bbox.

        Sorted by key, deduplicated; a superset of the points actually
        within ``radius`` of ``(x, y)``.
        """
        if not self._finalised:
            self.finalise()
        inv = self._inv
        x0 = math.floor((x - radius) * inv)
        x1 = math.floor((x + radius) * inv)
        y0 = math.floor((y - radius) * inv)
        y1 = math.floor((y + radius) * inv)
        cells = self._cells
        found: List[int] = []
        for ix in range(x0, x1 + 1):
            for iy in range(y0, y1 + 1):
                bucket = cells.get((ix, iy))
                if bucket:
                    found.extend(bucket)
        if len(found) > 1:
            found = sorted(set(found))
        return found


_EMPTY: List[int] = []
