"""Run the full experiment suite and print every table.

``python -m repro.experiments.run_all [--quick] [--jobs N] [--cache |
--no-cache] [--cache-dir DIR] [--markdown FILE] [--telemetry [TRACE]]``

``--quick`` shrinks seeds/steps for a fast smoke run; the default sizes
are the ones EXPERIMENTS.md records.  The suite executes on the
:mod:`~repro.experiments.engine`: every experiment decomposes into
``(experiment, seed)`` shards, ``--jobs N`` fans them out over a worker
pool (default: all cores), and the reduce step reassembles the tables
in suite order -- the printed tables are byte-identical at any worker
count.  ``--cache`` (the default) reuses shard results from
``--cache-dir`` (``.repro_cache/``) when neither the code nor the shard
parameters changed; any edit under ``src/repro`` invalidates the whole
cache via the engine's code fingerprint.

``--telemetry`` enables the ``repro.obs`` stack for the whole suite:
every table's notes gain wall-clock and step-rate provenance, a metrics
summary is printed to stderr, and (when a path is given) the full event
stream is written as a JSONL trace.  Workers ship their event/metric
buffers home with each shard result, so traces and counters cover the
whole suite even when it ran on a pool.  Cached shards replay metrics
and step counts but not events.

Ablation coverage: A1 (aggregation), A2 (forecasters), A4 (auction
pricing) and A5 (knowledge-representation granularity) run here in both
quick and full mode.  A3 -- the meta-switching-trigger ablation -- is
*intentionally* absent as a standalone job: EXPERIMENTS.md reports it
inside E8, whose table already compares the window and detector
triggers head-on (rows ``meta(window)`` vs ``meta(detector)``).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import List, Optional

from ..obs import TelemetrySession
from .engine import (DEFAULT_CACHE_DIR, EngineReport, RetryPolicy, SuiteJob,
                     run_suite)
from .harness import ExperimentTable, print_tables, write_markdown_report

_PKG = "repro.experiments"


def _job(name: str, module: str, seeds, shard_fn: str = "run_shard",
         reduce_fn: str = "reduce", **params) -> SuiteJob:
    return SuiteJob(name=name, module=f"{_PKG}.{module}", shard_fn=shard_fn,
                    reduce_fn=reduce_fn, seeds=tuple(seeds), params=params)


def suite_jobs(quick: bool = False) -> List[SuiteJob]:
    """The whole suite as engine jobs, in DESIGN.md table order.

    Seeds and size parameters are spelled out explicitly (rather than
    relying on each module's defaults) so shard cache keys are stable
    and self-describing.  See the module docstring for why the A-series
    is A1/A2/A4/A5 here and A3 lives inside E8.
    """
    if quick:
        return [
            _job("E1", "e1_levels", (0,), steps=700),
            _job("E2", "e2_camera", (0,), steps=300),
            _job("E3", "e3_cloud", (0,), steps=300),
            _job("E3-goal", "e3_cloud", (0,), "run_goal_change_shard",
                 "reduce_goal_change", steps=300),
            _job("E4", "e4_volunteer", (0, 1), steps=1200),
            _job("E5", "e5_multicore", (0,), steps=400),
            _job("E5-goal", "e5_multicore", (0,), "run_goal_change_shard",
                 "reduce_goal_change", steps=400),
            _job("E6", "e6_cpn", (0,), n_nodes=30, steps=300),
            _job("E6-qos", "e6_cpn", (0,), "run_qos_classes_shard",
                 "reduce_qos_classes", steps=300),
            _job("E7", "e7_attention", (0,), budgets=(2.0, 6.0), steps=250),
            _job("E7-detect", "e7_attention", (0,),
                 "run_detection_table_shard", "reduce_detection_table",
                 budgets=(2.0, 4.0), steps=600),
            _job("E8", "e8_meta", (0, 1), steps=1200, turbulent_drift=250),
            _job("E9", "e9_collective", (0,), sizes=(10, 50),
                 gossip_rounds=30),
            _job("E10", "e10_priors", (0, 1), steps=400),
            _job("E11", "e11_explain", (0,), steps=300),
            _job("E12", "e12_swarm", (0,), steps=300, n_robots=9),
            _job("E13", "e13_resilience", (0,), steps=240,
                 intensities=(0.0, 0.5)),
            _job("E14", "e14_serving", (0,), steps=300,
                 loads=(4.0, 16.0)),
            _job("E15", "e15_explain_scale", (0,),
                 lengths=(30_000, 120_000), queries=12),
            _job("E16", "e16_cluster", (0,), steps=250,
                 tiers=("skewed", "flash")),
            _job("E18", "e18_twin", (0,), steps=300,
                 scenario="flash_crowd"),
            _job("A1", "ablations", (0,), "run_aggregation_shard",
                 "reduce_aggregation", steps=700),
            _job("A2", "ablations", (0,), "run_forecasters_shard",
                 "reduce_forecasters", steps=300),
            _job("A4", "ablations", (0,), "run_auction_pricing_shard",
                 "reduce_auction_pricing", n_auctions=500),
            _job("A5", "ablations", (0,), "run_knowledge_representation_shard",
                 "reduce_knowledge_representation", steps=500,
                 granularities=(1, 3, 5, 11, 41)),
        ]
    return [
        _job("E1", "e1_levels", (0, 1, 2, 3, 4), steps=1500),
        _job("E2", "e2_camera", (0, 1, 2), steps=800),
        _job("E3", "e3_cloud", (0, 1, 2), steps=600),
        _job("E3-goal", "e3_cloud", (0, 1, 2), "run_goal_change_shard",
             "reduce_goal_change", steps=600),
        _job("E4", "e4_volunteer", (0, 1, 2, 3, 4), steps=3000),
        _job("E5", "e5_multicore", (0, 1, 2), steps=1000),
        _job("E5-goal", "e5_multicore", (0, 1), "run_goal_change_shard",
             "reduce_goal_change", steps=800),
        _job("E6", "e6_cpn", (0, 1, 2), n_nodes=30, steps=600),
        _job("E6-qos", "e6_cpn", (0, 1, 2), "run_qos_classes_shard",
             "reduce_qos_classes", steps=500),
        _job("E7", "e7_attention", (0, 1, 2, 3),
             budgets=(1.0, 2.0, 4.0, 8.0), steps=500),
        _job("E7-detect", "e7_attention", (0, 1, 2),
             "run_detection_table_shard", "reduce_detection_table",
             budgets=(2.0, 4.0), steps=1500),
        _job("E8", "e8_meta", (0, 1, 2, 3, 4), steps=4000,
             turbulent_drift=250),
        _job("E9", "e9_collective", (0, 1, 2), sizes=(10, 50, 200),
             gossip_rounds=30),
        _job("E10", "e10_priors", (0, 1, 2, 3, 4), steps=800),
        _job("E11", "e11_explain", (0, 1, 2), steps=600),
        _job("E12", "e12_swarm", (0, 1, 2), steps=800, n_robots=9),
        _job("E13", "e13_resilience", (0, 1, 2), steps=500,
             intensities=(0.0, 0.3, 0.6)),
        _job("E14", "e14_serving", (0, 1, 2), steps=600,
             loads=(4.0, 8.0, 16.0, 28.0)),
        _job("E15", "e15_explain_scale", (0, 1),
             lengths=(100_000, 300_000, 1_000_000)),
        _job("E16", "e16_cluster", (0, 1, 2), steps=400,
             tiers=("skewed", "flash", "uniform")),
        _job("E18", "e18_twin", (0, 1, 2), steps=400,
             scenario="flash_crowd"),
        _job("A1", "ablations", (0, 1, 2, 3), "run_aggregation_shard",
             "reduce_aggregation", steps=1200),
        _job("A2", "ablations", (0, 1, 2), "run_forecasters_shard",
             "reduce_forecasters", steps=600),
        _job("A4", "ablations", (0,), "run_auction_pricing_shard",
             "reduce_auction_pricing", n_auctions=2000),
        _job("A5", "ablations", (0, 1, 2, 3),
             "run_knowledge_representation_shard",
             "reduce_knowledge_representation", steps=1200,
             granularities=(1, 3, 5, 11, 41)),
    ]


def list_experiments() -> List[str]:
    """One line per suite job: id, quick-suite membership, title.

    Titles come from each experiment module's docstring (first line), so
    the listing can never drift from the modules themselves.
    """
    import importlib
    quick_ids = {job.name for job in suite_jobs(quick=True)}
    lines = []
    for job in suite_jobs(quick=False):
        doc = importlib.import_module(job.module).__doc__ or ""
        title = doc.strip().splitlines()[0] if doc.strip() else ""
        suite = "quick+full" if job.name in quick_ids else "full only"
        lines.append(f"{job.name:<10} {suite:<10} {title}")
    return lines


def collect_report(quick: bool = False,
                   telemetry: Optional[TelemetrySession] = None,
                   jobs: int = 1,
                   cache: bool = False,
                   cache_dir: str = DEFAULT_CACHE_DIR,
                   quiet: bool = False,
                   retry: Optional[RetryPolicy] = None) -> EngineReport:
    """Run the suite on the engine; tables plus shard accounting."""
    progress = None if quiet else (
        lambda line: print(line, file=sys.stderr))
    return run_suite(suite_jobs(quick=quick), n_jobs=jobs, cache=cache,
                     cache_dir=cache_dir, telemetry=telemetry,
                     progress=progress, retry=retry)


def collect_tables(quick: bool = False,
                   telemetry: Optional[TelemetrySession] = None,
                   jobs: int = 1,
                   cache: bool = False,
                   cache_dir: str = DEFAULT_CACHE_DIR
                   ) -> List[ExperimentTable]:
    """Run every experiment; returns all tables in DESIGN.md order.

    With a ``telemetry`` session, each shard runs instrumented and its
    tables record wall-clock/step-rate provenance in their notes.
    """
    return collect_report(quick=quick, telemetry=telemetry, jobs=jobs,
                          cache=cache, cache_dir=cache_dir).tables


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small seeds/steps for a smoke run")
    parser.add_argument("--list", action="store_true",
                        help="print experiment ids, titles and quick-suite "
                             "membership, then exit")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: all cores); "
                             "tables are identical at any value")
    parser.add_argument("--cache", dest="cache", action="store_true",
                        default=True,
                        help="reuse cached shard results (default)")
    parser.add_argument("--no-cache", dest="cache", action="store_false",
                        help="always execute every shard")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help="shard cache location (default: %(default)s)")
    parser.add_argument("--markdown", metavar="FILE", default=None,
                        help="additionally write the tables to FILE as "
                             "a markdown report")
    parser.add_argument("--telemetry", metavar="TRACE", nargs="?",
                        const="", default=None,
                        help="enable repro.obs for the suite; with a path, "
                             "also write the JSONL event trace there")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry each failing shard up to N times with "
                             "exponential backoff (default: no retry); "
                             "failures surface the worker's full traceback")
    parser.add_argument("--backoff", type=float, default=0.5,
                        metavar="SECONDS",
                        help="base retry backoff; attempt k waits "
                             "backoff * 2**(k-1) seconds (default: "
                             "%(default)s)")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-shard wall-clock deadline (worker pools "
                             "only; counts as a failure for --retries)")
    args = parser.parse_args()
    if args.list:
        for line in list_experiments():
            print(line)
        return
    retry = RetryPolicy(max_attempts=args.retries + 1, backoff=args.backoff,
                        timeout=args.shard_timeout)
    session = None
    if args.telemetry is not None:
        session = TelemetrySession(trace_path=args.telemetry or None,
                                   echo_summary=True)
    with (session if session is not None else nullcontext()):
        report = collect_report(quick=args.quick, telemetry=session,
                                jobs=args.jobs, cache=args.cache,
                                cache_dir=args.cache_dir, retry=retry)
    if args.cache and report.cached_shards:
        print(f"[cache: {report.cached_shards}/{report.total_shards} "
              f"shards reused]", file=sys.stderr)
    print_tables(report.tables)
    if args.markdown:
        write_markdown_report(report.tables, args.markdown,
                              title="pyselfaware experiment results")
        print(f"markdown report written to {args.markdown}", file=sys.stderr)


if __name__ == "__main__":
    main()
