"""Run the full experiment suite and print every table.

``python -m repro.experiments.run_all [--quick] [--telemetry [TRACE]]``

``--quick`` shrinks seeds/steps for a fast smoke run; the default sizes
are the ones EXPERIMENTS.md records.  ``--telemetry`` enables the
``repro.obs`` stack for the whole suite: every table's notes gain
wall-clock and step-rate provenance, a metrics summary is printed to
stderr, and (when a path is given) the full event stream is written as a
JSONL trace.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import nullcontext
from typing import List, Optional

from ..obs import TelemetrySession
from . import (ablations, e1_levels, e2_camera, e3_cloud, e4_volunteer,
               e5_multicore, e6_cpn, e7_attention, e8_meta, e9_collective,
               e10_priors, e11_explain, e12_swarm)
from .harness import (ExperimentTable, print_tables, run_with_provenance,
                      write_markdown_report)


def _ablation_jobs(quick: bool = False):
    """One (name, job) pair per ablation so provenance is per-table."""
    if quick:
        return [
            ("A1", lambda: [ablations.run_aggregation(seeds=(0,),
                                                      steps=700)]),
            ("A2", lambda: [ablations.run_forecasters(seeds=(0,),
                                                      steps=300)]),
            ("A4", lambda: [ablations.run_auction_pricing(n_auctions=500)]),
            ("A5", lambda: [ablations.run_knowledge_representation(
                seeds=(0,), steps=500)]),
        ]
    return [
        ("A1", lambda: [ablations.run_aggregation()]),
        ("A2", lambda: [ablations.run_forecasters()]),
        ("A4", lambda: [ablations.run_auction_pricing()]),
        ("A5", lambda: [ablations.run_knowledge_representation()]),
    ]


def collect_tables(quick: bool = False,
                   telemetry: Optional[TelemetrySession] = None
                   ) -> List[ExperimentTable]:
    """Run every experiment; returns all tables in DESIGN.md order.

    With a ``telemetry`` session, each job runs instrumented and its
    tables record wall-clock/step-rate provenance in their notes.
    """
    if quick:
        seeds2, seeds3 = (0,), (0, 1)
        kwargs = dict(
            e1=dict(seeds=seeds2, steps=700),
            e2=dict(seeds=seeds2, steps=300),
            e3=dict(seeds=seeds2, steps=300),
            e4=dict(seeds=seeds3, steps=1200),
            e5=dict(seeds=seeds2, steps=400),
            e6=dict(seeds=seeds2, steps=300),
            e7=dict(seeds=seeds2, budgets=(2.0, 6.0), steps=250),
            e8=dict(seeds=seeds3, steps=1200),
            e9=dict(seeds=seeds2, sizes=(10, 50)),
            e10=dict(seeds=seeds3, steps=400),
            e11=dict(seeds=seeds2, steps=300),
            e12=dict(seeds=seeds2, steps=300),
            ablations=dict(quick=True),
        )
    else:
        kwargs = {k: {} for k in
                  ("e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
                   "e10", "e11", "e12", "ablations")}
    tables: List[ExperimentTable] = []
    jobs = [
        ("E1", lambda: [e1_levels.run(**kwargs["e1"])]),
        ("E2", lambda: [e2_camera.run(**kwargs["e2"])]),
        ("E3", lambda: [e3_cloud.run(**kwargs["e3"])]),
        ("E3-goal", lambda: [e3_cloud.run_goal_change(**kwargs["e3"])]),
        ("E4", lambda: [e4_volunteer.run(**kwargs["e4"])]),
        ("E5", lambda: [e5_multicore.run(**kwargs["e5"])]),
        ("E5-goal", lambda: [e5_multicore.run_goal_change(
            seeds=kwargs["e5"].get("seeds", (0, 1)),
            steps=kwargs["e5"].get("steps", 800))]),
        ("E6", lambda: [e6_cpn.run(**kwargs["e6"])]),
        ("E6-qos", lambda: [e6_cpn.run_qos_classes(
            seeds=kwargs["e6"].get("seeds", (0, 1, 2)),
            steps=kwargs["e6"].get("steps", 500))]),
        ("E7", lambda: [e7_attention.run(**kwargs["e7"])]),
        ("E7-detect", lambda: [e7_attention.run_detection_table(
            seeds=kwargs["e7"].get("seeds", (0, 1, 2)),
            steps=600 if quick else 1500)]),
        ("E8", lambda: [e8_meta.run(**kwargs["e8"])]),
        ("E9", lambda: [e9_collective.run(**kwargs["e9"])]),
        ("E10", lambda: [e10_priors.run(**kwargs["e10"])]),
        ("E11", lambda: [e11_explain.run(**kwargs["e11"])]),
        ("E12", lambda: [e12_swarm.run(**kwargs["e12"])]),
    ]
    jobs.extend(_ablation_jobs(quick=bool(kwargs["ablations"].get("quick"))))
    for name, job in jobs:
        start = time.perf_counter()
        tables.extend(run_with_provenance(job, telemetry=telemetry))
        print(f"[{name} done in {time.perf_counter() - start:.1f}s]",
              file=sys.stderr)
    return tables


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small seeds/steps for a smoke run")
    parser.add_argument("--markdown", metavar="FILE", default=None,
                        help="additionally write the tables to FILE as "
                             "a markdown report")
    parser.add_argument("--telemetry", metavar="TRACE", nargs="?",
                        const="", default=None,
                        help="enable repro.obs for the suite; with a path, "
                             "also write the JSONL event trace there")
    args = parser.parse_args()
    session = None
    if args.telemetry is not None:
        session = TelemetrySession(trace_path=args.telemetry or None,
                                   echo_summary=True)
    with (session if session is not None else nullcontext()):
        tables = collect_tables(quick=args.quick, telemetry=session)
    print_tables(tables)
    if args.markdown:
        write_markdown_report(tables, args.markdown,
                              title="pyselfaware experiment results")
        print(f"markdown report written to {args.markdown}", file=sys.stderr)


if __name__ == "__main__":
    main()
