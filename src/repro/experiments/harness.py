"""Experiment harness: tables, formatting, and run plumbing.

Each experiment module exposes ``run(seeds=..., **size_params) ->
ExperimentTable`` (or a list of tables).  The paper under reproduction is
a vision paper with no tables of its own, so these tables *are* the
evaluation: each one operationalises a claim from the text (see
DESIGN.md for the claim-to-experiment index).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..obs.export import TelemetrySession


@dataclass
class ExperimentTable:
    """One results table: ordered columns, row dicts, provenance notes."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        """Append a row; keys must be a subset of the declared columns."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown columns: {sorted(unknown)}")
        # Store a copy: a caller reusing (and mutating) its kwargs dict
        # must not be able to corrupt already-recorded rows.
        self.rows.append(dict(values))

    def append_note(self, note: str) -> None:
        """Add one note line, preserving any existing notes."""
        self.notes = f"{self.notes}; {note}" if self.notes else note

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row.get(name) for row in self.rows]

    def row_by(self, key_column: str, key: Any) -> Dict[str, Any]:
        """First row whose ``key_column`` equals ``key``."""
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        raise KeyError(f"no row with {key_column}={key!r}")

    def best_row(self, metric: str, maximise: bool = True) -> Dict[str, Any]:
        """Row with the best value of ``metric``."""
        scored = [r for r in self.rows
                  if isinstance(r.get(metric), (int, float))
                  and not math.isnan(r[metric])]
        if not scored:
            raise ValueError(f"no numeric values in column {metric!r}")
        return (max if maximise else min)(scored, key=lambda r: r[metric])


def _format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value == 0 or 0.001 <= abs(value) < 10000:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def format_table(table: ExperimentTable) -> str:
    """Render a table as aligned monospace text."""
    header = [table.columns]
    body = [[_format_cell(row.get(c)) for c in table.columns]
            for row in table.rows]
    widths = [max(len(line[i]) for line in header + body)
              for i in range(len(table.columns))]
    lines = [f"== {table.experiment_id}: {table.title} =="]
    lines.append("  ".join(c.ljust(w) for c, w in zip(table.columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row_cells, widths)))
    if table.notes:
        lines.append(f"note: {table.notes}")
    return "\n".join(lines)


def print_tables(tables: Sequence[ExperimentTable]) -> None:
    """Print every table, separated by blank lines."""
    for table in tables:
        print(format_table(table))
        print()


def to_markdown(table: ExperimentTable) -> str:
    """Render a table as GitHub-flavoured markdown."""
    lines = [f"## {table.experiment_id} — {table.title}", ""]
    lines.append("| " + " | ".join(table.columns) + " |")
    lines.append("|" + "|".join("---" for _ in table.columns) + "|")
    for row in table.rows:
        cells = [_format_cell(row.get(c)) for c in table.columns]
        lines.append("| " + " | ".join(cells) + " |")
    if table.notes:
        lines.append("")
        lines.append(f"*{table.notes}*")
    return "\n".join(lines)


def write_markdown_report(tables: Sequence[ExperimentTable], path: str,
                          title: str = "Experiment results") -> None:
    """Write every table to ``path`` as one markdown document."""
    sections = [f"# {title}", ""]
    for table in tables:
        sections.append(to_markdown(table))
        sections.append("")
    with open(path, "w") as handle:
        handle.write("\n".join(sections))


RunResult = Union[ExperimentTable, List[ExperimentTable]]


def run_with_provenance(run_fn: Callable[..., RunResult], *args: Any,
                        telemetry: Optional[TelemetrySession] = None,
                        **kwargs: Any) -> RunResult:
    """Run one experiment entry point, stamping provenance into its notes.

    Every returned :class:`ExperimentTable` gains a note recording the
    wall-clock time of the run and -- when a
    :class:`~repro.obs.export.TelemetrySession` is supplied via
    ``telemetry=`` -- the number of simulated steps executed and the
    achieved step rate (read from the session's ``steps`` counters, which
    the core loop and every simulator increment).  The session is entered
    for the duration of the run, so the same call also produces the JSONL
    trace and metric snapshot the session is configured for.
    """
    if telemetry is not None:
        steps_before = telemetry.registry.total("steps")
        start = perf_counter()
        with telemetry:
            result = run_fn(*args, **kwargs)
        wall = perf_counter() - start
        steps = telemetry.registry.total("steps") - steps_before
    else:
        start = perf_counter()
        result = run_fn(*args, **kwargs)
        wall = perf_counter() - start
        steps = 0.0
    note = f"wall {wall:.2f}s"
    if steps > 0:
        note += f", {steps:g} steps, {steps / wall:.0f} steps/s [telemetry]"
    tables = result if isinstance(result, list) else [result]
    for table in tables:
        table.append_note(note)
    return result
