"""Ablations of the design choices called out in DESIGN.md.

A1 -- goal aggregation: weighted-sum utility vs knee-of-Pareto selection
      inside the reasoner (DESIGN choice 1).
A2 -- forecast family inside the autoscaler's time-awareness: naive,
      EWMA, Holt, AR (DESIGN choice 2).
A4 -- auction pricing rule in the camera handover market: second-price
      (Vickrey) vs first-price (DESIGN choice 4).
A5 -- knowledge representation granularity: how finely a self-model bins
      its context (paper ref [60], "knowledge representation and
      modelling: structures and trade-offs") -- too coarse underfits the
      situation, too fine starves every bin of samples.

(The meta-switching-trigger ablation, choice 3, lives inside E8.)
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..cloud.autoscaler import SelfAwareScaler, make_cloud_goal
from ..cloud.cluster import ServiceCluster
from ..core.levels import CapabilityProfile, SelfAwarenessLevel
from ..core.models import ContextualActionModel
from ..core.node import SelfAwareNode
from ..core.reasoner import UtilityReasoner
from ..learning.forecast import make_forecaster
from ..smartcamera.market import Bid, HandoverMarket
from .e1_levels import (ResourceAllocationEnvironment, _run_one,
                        make_e1_goal, make_e1_sensors)
from .e3_cloud import CLUSTER, make_demand
from .harness import ExperimentTable


# -- A1: aggregation scheme ----------------------------------------------------

def run_aggregation_shard(seed: int, steps: int = 1200) -> Dict[str, List[float]]:
    """One seed's worth of A1: [mean, after_reweight] per aggregation."""
    payload: Dict[str, List[float]] = {}
    for use_knee, name in ((False, "weighted-sum"), (True, "pareto-knee")):
        env = ResourceAllocationEnvironment(seed=seed,
                                            inversion_time=float("inf"))
        goal = make_e1_goal()
        reasoner = UtilityReasoner(
            goal, ContextualActionModel(forgetting=0.95), epsilon=0.08,
            use_knee=use_knee, rng=np.random.default_rng(900 + seed))
        node = SelfAwareNode(
            name=name,
            profile=CapabilityProfile.up_to(SelfAwarenessLevel.GOAL),
            sensors=make_e1_sensors(env, np.random.default_rng(901 + seed)),
            reasoner=reasoner)
        trace = _run_one(name, node, env, goal, steps)
        payload[name] = [trace.mean_utility(),
                         trace.mean_utility_between(600.0, steps + 1.0)]
    return payload


def reduce_aggregation(shards: Sequence[Dict[str, List[float]]],
                       seeds: Sequence[int] = (),
                       steps: int = 1200) -> ExperimentTable:
    """Seed-average per-seed payloads into the A1 table."""
    table = ExperimentTable(
        experiment_id="A1",
        title="Ablation: goal aggregation (weighted-sum vs Pareto knee)",
        columns=["aggregation", "mean_utility", "utility_after_reweight"],
        notes="E1 environment; utility scored against the live goal, "
              "which re-weights toward cost at t=600")
    for name in ("weighted-sum", "pareto-knee"):
        values = [shard[name] for shard in shards]
        table.add_row(aggregation=name,
                      mean_utility=float(np.mean([v[0] for v in values])),
                      utility_after_reweight=float(np.mean(
                          [v[1] for v in values])))
    return table


def run_aggregation(seeds: Sequence[int] = (0, 1, 2, 3),
                    steps: int = 1200) -> ExperimentTable:
    """Weighted-sum vs knee selection on the E1 task.

    The knee ignores the goal's weights, so it cannot follow run-time
    re-weighting -- it buys weight-free robustness at the cost of
    goal-responsiveness.
    """
    return reduce_aggregation(
        [run_aggregation_shard(seed, steps=steps) for seed in seeds],
        seeds=seeds, steps=steps)


# -- A2: forecast family ---------------------------------------------------------

FORECASTER_KINDS = {"naive": {}, "ewma": {"alpha": 0.3}, "holt": {},
                    "ar": {"order": 6}}


def run_forecasters_shard(seed: int, steps: int = 600) -> Dict[str, List[float]]:
    """One seed's worth of A2: [utility, qos, servers] per forecaster."""
    payload: Dict[str, List[float]] = {}
    for kind, kwargs in FORECASTER_KINDS.items():
        demand = make_demand(seed, steps)
        goal = make_cloud_goal()
        scaler = SelfAwareScaler(
            goal, boot_delay=CLUSTER["boot_delay"],
            forecaster=make_forecaster(kind, **kwargs),
            max_servers=CLUSTER["max_servers"])
        cluster = ServiceCluster(**CLUSTER)
        metrics = None
        history = []
        for t in range(steps):
            cluster.request_scale(scaler.decide(float(t), metrics))
            metrics = cluster.step(float(t), max(0.0, demand(float(t))))
            history.append(metrics)
        payload[kind] = [
            float(np.mean([goal.utility(m.as_dict()) for m in history])),
            float(np.mean([m.qos for m in history])),
            float(np.mean([m.cost for m in history]))]
    return payload


def reduce_forecasters(shards: Sequence[Dict[str, List[float]]],
                       seeds: Sequence[int] = (),
                       steps: int = 600) -> ExperimentTable:
    """Seed-average per-seed payloads into the A2 table."""
    table = ExperimentTable(
        experiment_id="A2",
        title="Ablation: forecast family in the autoscaler's time-awareness",
        columns=["forecaster", "utility", "qos", "mean_servers"],
        notes="E3 workload (seasonal + flash crowd); finding: on smooth "
              "seasonal demand with a short boot delay, level trackers "
              "(naive/EWMA) suffice -- trend extrapolation (Holt) "
              "overshoots at the sine's turning points")
    for kind in FORECASTER_KINDS:
        values = [shard[kind] for shard in shards]
        table.add_row(forecaster=kind,
                      utility=float(np.mean([v[0] for v in values])),
                      qos=float(np.mean([v[1] for v in values])),
                      mean_servers=float(np.mean([v[2] for v in values])))
    return table


def run_forecasters(seeds: Sequence[int] = (0, 1, 2),
                    steps: int = 600) -> ExperimentTable:
    """Forecast family inside the self-aware autoscaler."""
    return reduce_forecasters(
        [run_forecasters_shard(seed, steps=steps) for seed in seeds],
        seeds=seeds, steps=steps)


# -- A4: auction pricing rule ------------------------------------------------------

def run_auction_pricing_shard(seed: int,
                              n_auctions: int = 2000) -> Dict[str, List[float]]:
    """One seed's worth of A4: [trade_rate, mean_price, surplus] per rule."""
    rng = np.random.default_rng(seed)
    auctions = []
    for i in range(n_auctions):
        n_bidders = int(rng.integers(2, 6))
        bids = [Bid(cam_id=j, amount=float(rng.uniform(0, 1)))
                for j in range(n_bidders)]
        reserve = float(rng.uniform(0, 0.5))
        auctions.append((i, bids, reserve))

    # Second-price: the shipped market.
    market = HandoverMarket()
    surpluses, prices = [], []
    for object_id, bids, reserve in auctions:
        outcome = market.run_auction(object_id, seller=99, bids=bids,
                                     reserve=reserve)
        if outcome.sold:
            winning_bid = max(b.amount for b in bids)
            prices.append(outcome.price)
            surpluses.append(winning_bid - outcome.price)

    # First-price: winner pays its own bid; surplus is zero by definition
    # (under the same truthful bids).
    sold = 0
    prices_list: List[float] = []
    for _object_id, bids, reserve in auctions:
        valid = [b for b in bids if b.amount >= reserve]
        if valid:
            sold += 1
            prices_list.append(max(b.amount for b in valid))
    return {
        "second-price(Vickrey)": [market.trade_rate, float(np.mean(prices)),
                                  float(np.mean(surpluses))],
        "first-price": [sold / n_auctions, float(np.mean(prices_list)), 0.0],
    }


def reduce_auction_pricing(shards: Sequence[Dict[str, List[float]]],
                           seeds: Sequence[int] = (),
                           n_auctions: int = 2000) -> ExperimentTable:
    """Seed-average per-seed payloads into the A4 table."""
    table = ExperimentTable(
        experiment_id="A4",
        title="Ablation: handover auction pricing rule",
        columns=["rule", "trade_rate", "mean_price", "winner_surplus"],
        notes="synthetic bid streams (2-5 bidders, uniform visibilities); "
              "surplus = winner's bid minus price paid")
    for rule in ("second-price(Vickrey)", "first-price"):
        values = [shard[rule] for shard in shards]
        table.add_row(rule=rule,
                      trade_rate=float(np.mean([v[0] for v in values])),
                      mean_price=float(np.mean([v[1] for v in values])),
                      winner_surplus=float(np.mean([v[2] for v in values])))
    return table


def run_auction_pricing(n_auctions: int = 2000,
                        seed: int = 0) -> ExperimentTable:
    """Second-price vs first-price handover pricing.

    Allocation (who wins) is identical under truthful bidding; what
    changes is what winners pay.  Vickrey charges the second bid, so
    winners retain surplus proportional to their visibility advantage --
    the incentive-compatibility argument for the published design.
    """
    return reduce_auction_pricing(
        [run_auction_pricing_shard(seed, n_auctions=n_auctions)],
        seeds=(seed,), n_auctions=n_auctions)


# -- A5: knowledge representation granularity -----------------------------------

def _bin_fn_for(levels: int):
    """Quantiser mapping each context feature onto ``levels`` levels."""
    if levels <= 1:
        return lambda context: ()  # context-free: a single bin
    step = float(levels - 1)

    def bin_fn(context):
        return tuple(sorted(
            (k, round(step * float(np.clip(v, 0.0, 1.2))) / step)
            for k, v in context.items()))
    return bin_fn


def run_knowledge_representation_shard(
        seed: int, steps: int = 1200,
        granularities: Sequence[int] = (1, 3, 5, 11, 41)) -> Dict[str, List[float]]:
    """One seed's worth of A5: [utility, bins_used] per granularity."""
    payload: Dict[str, List[float]] = {}
    for levels in granularities:
        env = ResourceAllocationEnvironment(
            seed=seed, goal_change_time=float("inf"),
            inversion_time=float("inf"))
        goal = make_e1_goal()
        model = ContextualActionModel(forgetting=0.95,
                                      bin_fn=_bin_fn_for(levels))
        reasoner = UtilityReasoner(goal, model, epsilon=0.08,
                                   rng=np.random.default_rng(950 + seed))
        node = SelfAwareNode(
            name=f"g{levels}",
            profile=CapabilityProfile.up_to(SelfAwarenessLevel.TIME),
            sensors=make_e1_sensors(env, np.random.default_rng(951 + seed)),
            reasoner=reasoner)
        trace = _run_one(f"g{levels}", node, env, goal, steps)
        payload[str(levels)] = [trace.mean_utility(),
                                float(model.bin_count())]
    return payload


def reduce_knowledge_representation(
        shards: Sequence[Dict[str, List[float]]],
        seeds: Sequence[int] = (), steps: int = 1200,
        granularities: Sequence[int] = (1, 3, 5, 11, 41)) -> ExperimentTable:
    """Seed-average per-seed payloads into the A5 table."""
    table = ExperimentTable(
        experiment_id="A5",
        title="Ablation: knowledge-representation granularity",
        columns=["levels_per_feature", "mean_utility", "bins_used"],
        notes="context bins per sensed feature in the self-model; E1 "
              "environment with shocks (stationary goal); 1 level = "
              "context-free")
    for levels in granularities:
        values = [shard[str(levels)] for shard in shards]
        table.add_row(levels_per_feature=levels,
                      mean_utility=float(np.mean([v[0] for v in values])),
                      bins_used=float(np.mean([v[1] for v in values])))
    return table


def run_knowledge_representation(
        seeds: Sequence[int] = (0, 1, 2, 3),
        steps: int = 1200,
        granularities: Sequence[int] = (1, 3, 5, 11, 41)) -> ExperimentTable:
    """Sweep context-bin granularity of the self-model on the E1 task.

    The trade-off of ref [60] in one knob: 1 level = a context-free
    model (underfits the regime-dependence of the actions); very many
    levels = each situation is its own bin and nothing generalises
    (sample starvation).  The sweet spot sits in between.
    """
    return reduce_knowledge_representation(
        [run_knowledge_representation_shard(seed, steps=steps,
                                            granularities=granularities)
         for seed in seeds],
        seeds=seeds, steps=steps, granularities=granularities)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run_aggregation(), run_forecasters(), run_auction_pricing(),
                  run_knowledge_representation()])
