"""E4 -- stimulus- and time-awareness in volunteer service composition.

Paper refs [14], [15]: self-adaptive volunteered service composition
through stimulus- and time-awareness.  Selectors of increasing awareness
bind requests to churning, drifting volunteer providers; the ordering
random < static-rank < stimulus-aware < self-aware is the claim.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..cloud.composition import (ProviderSelector, RandomSelector,
                                 SelfAwareSelector, StaticRankSelector,
                                 StimulusAwareSelector, VolunteerPool,
                                 run_composition)
from .harness import ExperimentTable

N_PROVIDERS = 12
HEARTBEAT_LAG = 5


def _pool(seed: int) -> VolunteerPool:
    return VolunteerPool(n_providers=N_PROVIDERS, heartbeat_lag=HEARTBEAT_LAG,
                         rng=np.random.default_rng(seed))


def _selectors(seed: int, initial_reliabilities) -> Dict[str, ProviderSelector]:
    return {
        "random": RandomSelector(np.random.default_rng(100 + seed)),
        "static-rank": StaticRankSelector(initial_reliabilities),
        "stimulus-aware": StimulusAwareSelector(np.random.default_rng(200 + seed)),
        "self-aware": SelfAwareSelector(N_PROVIDERS,
                                        rng=np.random.default_rng(300 + seed)),
    }


def run_shard(seed: int, steps: int = 3000) -> Dict[str, List[float]]:
    """One seed's worth of E4: [success_rate, late_rate] per selector."""
    payload: Dict[str, List[float]] = {}
    init_rel = [p.initial_reliability for p in _pool(seed).providers]
    for name, selector in _selectors(seed, init_rel).items():
        res = run_composition(selector, _pool(seed), steps=steps)
        windows = res.success_by_window
        late = float(np.mean(windows[len(windows) * 2 // 3:])) \
            if windows else float("nan")
        payload[name] = [res.success_rate, late]
    return payload


def reduce(shards: Sequence[Dict[str, List[float]]],
           seeds: Sequence[int] = (), steps: int = 3000) -> ExperimentTable:
    """Seed-average per-seed payloads into the E4 table."""
    table = ExperimentTable(
        experiment_id="E4",
        title="Volunteer service composition under churn and drift",
        columns=["selector", "success_rate", "late_success_rate",
                 "vs_random"],
        notes=(f"{N_PROVIDERS} providers, heartbeat lag {HEARTBEAT_LAG}; "
               "late = final third of the run (after drift has bitten)"))
    names = list(shards[0]) if shards else []
    random_rate = float(np.mean([shard["random"][0] for shard in shards]))
    for name in names:
        values = [shard[name] for shard in shards]
        rate = float(np.mean([v[0] for v in values]))
        late = float(np.mean([v[1] for v in values]))
        table.add_row(selector=name, success_rate=rate,
                      late_success_rate=late,
                      vs_random=rate / random_rate if random_rate else 0.0)
    return table


def run(seeds: Sequence[int] = (0, 1, 2, 3, 4),
        steps: int = 3000) -> ExperimentTable:
    """One row per selector, seed-averaged."""
    return reduce([run_shard(seed, steps=steps) for seed in seeds],
                  seeds=seeds, steps=steps)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run()])
