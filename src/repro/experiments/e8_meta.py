"""E8 -- meta-self-awareness: monitoring one's own learner under drift.

Paper Section IV: advanced systems are *meta-self-aware* -- aware of how
they themselves are aware, able to reason about and change their own
learning apparatus.  A drifting bandit task is faced by:

- fixed learners (a stable and a plastic ε-greedy -- the design-time
  choices a non-meta system is stuck with),
- a meta-self-aware controller holding both as a strategy portfolio,
  monitoring its own realised reward, and switching (two trigger
  mechanisms, the DESIGN.md ablation: drift detector vs. sliding-window
  comparison),
- an oracle that always pulls the currently best arm.

Reported: mean reward, normalised regret, and the tail regret slope
(a converged learner stops paying; a stale one keeps paying).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from ..envgen.driftgen import DriftingBandit
from ..learning.bandits import EpsilonGreedy
from ..learning.drift import PageHinkley
from ..metrics.regret import normalised_regret, regret_slope
from .harness import ExperimentTable

N_ARMS = 6

#: High observation noise: estimating arm means well requires long
#: averaging, which is precisely what a plastic (fast-forgetting) learner
#: gives up -- creating the calm-era/turbulent-era trade-off the meta
#: level arbitrates.
REWARD_STD = 0.4


class _BanditStrategy:
    """Adapter: an ε-greedy bandit behind a tiny select/update protocol."""

    def __init__(self, discount: float, seed: int) -> None:
        self.policy = EpsilonGreedy(N_ARMS, epsilon=0.08, discount=discount,
                                    rng=np.random.default_rng(seed))

    def select(self) -> int:
        return self.policy.select()

    def update(self, arm: int, reward: float) -> None:
        self.policy.update(arm, reward)


class MetaBandit:
    """Meta controller over {stable, plastic} strategies.

    The metacognitive policy (Cox's loop in miniature): a drift detector
    watches the controller's *own reward stream*; a detection means the
    world has changed, so the plastic strategy takes over.  A sustained
    quiet period (no detection for ``quiet_period`` pulls) means the
    world has settled, so the stable strategy -- the better estimator
    under noise -- resumes.

    ``trigger`` selects the change signal (DESIGN.md ablation 3):
    ``"detector"`` runs Page-Hinkley on the reward stream;
    ``"window"`` declares change when the recent reward mean falls below
    the long-run mean by a margin.
    """

    def __init__(self, trigger: str, seed: int, quiet_period: int = 400,
                 margin: float = 0.08, window: int = 50) -> None:
        if trigger not in ("detector", "window"):
            raise ValueError("trigger must be 'detector' or 'window'")
        self.strategies = {
            "stable": _BanditStrategy(discount=1.0, seed=seed),
            "plastic": _BanditStrategy(discount=0.9, seed=seed + 1),
        }
        self.active = "stable"
        self.trigger = trigger
        self.quiet_period = quiet_period
        self.margin = margin
        self.window = window
        self._detector = self._fresh_detector()
        self._rewards: List[float] = []
        self.switches = 0
        self._since_change = 0

    @staticmethod
    def _fresh_detector() -> PageHinkley:
        return PageHinkley(delta=0.05, threshold=8.0, direction="decrease",
                           min_samples=30)

    def select(self) -> int:
        return self.strategies[self.active].select()

    def _change_signalled(self, reward: float) -> bool:
        if self.trigger == "detector":
            return self._detector.update(reward)
        self._rewards.append(reward)
        if len(self._rewards) < 4 * self.window:
            return False
        recent = float(np.mean(self._rewards[-self.window:]))
        longrun = float(np.mean(self._rewards[-4 * self.window:-self.window]))
        if recent < longrun - self.margin:
            self._rewards.clear()
            return True
        return False

    def update(self, arm: int, reward: float) -> None:
        for strategy in self.strategies.values():
            strategy.update(arm, reward)
        self._since_change += 1
        if self._change_signalled(reward):
            self._since_change = 0
            if self.active != "plastic":
                self.active = "plastic"
                self.switches += 1
        elif (self.active == "plastic"
              and self._since_change >= self.quiet_period):
            self.active = "stable"
            self.switches += 1


def _run_two_era(learner, seed: int, steps: int,
                 turbulent_drift: int) -> Dict[str, float]:
    """A calm era (no drift) followed by a turbulent one (rapid drift).

    Neither design-time plasticity setting is right for both eras: the
    stable learner wins the calm half (lower estimator variance) and then
    decays; the plastic learner pays variance in the calm half but tracks
    the turbulent one.  Only a meta-self-aware system -- which watches
    its own reward -- gets both.
    """
    achieved: List[float] = []
    optimal: List[float] = []
    half = steps // 2
    calm = DriftingBandit(n_arms=N_ARMS, drift_every=10 ** 9,
                          reward_std=REWARD_STD,
                          rng=np.random.default_rng(7000 + seed))
    turbulent = DriftingBandit(n_arms=N_ARMS, drift_every=turbulent_drift,
                               reward_std=REWARD_STD,
                               rng=np.random.default_rng(8000 + seed))
    for t in range(steps):
        bandit = calm if t < half else turbulent
        optimal.append(bandit.optimal_mean())
        arm = learner.select()
        reward = bandit.pull(arm)
        learner.update(arm, reward)
        achieved.append(reward)
    return {
        "reward": float(np.mean(achieved)),
        "reward_calm": float(np.mean(achieved[:half])),
        "reward_turbulent": float(np.mean(achieved[half:])),
        "regret": normalised_regret(optimal, achieved),
        "tail_slope": regret_slope(optimal, achieved, tail_fraction=0.2),
    }


def _learner_factories() -> Dict[str, Callable[[int], object]]:
    return {
        "stable(fixed)": lambda seed: _BanditStrategy(1.0, seed),
        "plastic(fixed)": lambda seed: _BanditStrategy(0.9, seed),
        "meta(detector)": lambda seed: MetaBandit("detector", seed),
        "meta(window)": lambda seed: MetaBandit("window", seed),
    }


def run_shard(seed: int, steps: int = 4000,
              turbulent_drift: int = 250) -> Dict[str, Dict[str, float]]:
    """One seed's worth of E8: two-era scores + switches per learner."""
    payload: Dict[str, Dict[str, float]] = {}
    for name, factory in _learner_factories().items():
        learner = factory(seed)
        scores = dict(_run_two_era(learner, seed, steps, turbulent_drift))
        scores["switches"] = float(getattr(learner, "switches", 0))
        payload[name] = scores
    return payload


def reduce(shards: Sequence[Dict[str, Dict[str, float]]],
           seeds: Sequence[int] = (), steps: int = 4000,
           turbulent_drift: int = 250) -> ExperimentTable:
    """Seed-average per-seed payloads into the E8 table."""
    table = ExperimentTable(
        experiment_id="E8",
        title="Meta-self-awareness under concept drift (two-era bandit)",
        columns=["learner", "mean_reward", "reward_calm", "reward_turbulent",
                 "normalised_regret", "tail_regret_slope", "switches"],
        notes=(f"{N_ARMS} arms; first half stationary, second half abrupt "
               f"drift every {turbulent_drift} pulls; regret vs the "
               "always-best-arm oracle"))
    for name in _learner_factories():
        scores = [shard[name] for shard in shards]
        table.add_row(
            learner=name,
            mean_reward=float(np.mean([s["reward"] for s in scores])),
            reward_calm=float(np.mean([s["reward_calm"] for s in scores])),
            reward_turbulent=float(np.mean(
                [s["reward_turbulent"] for s in scores])),
            normalised_regret=float(np.mean([s["regret"] for s in scores])),
            tail_regret_slope=float(np.mean([s["tail_slope"] for s in scores])),
            switches=float(np.mean([s["switches"] for s in scores])))
    return table


def run(seeds: Sequence[int] = (0, 1, 2, 3, 4), steps: int = 4000,
        turbulent_drift: int = 250) -> ExperimentTable:
    """One row per learner on the calm-then-turbulent bandit."""
    return reduce([run_shard(seed, steps=steps,
                             turbulent_drift=turbulent_drift)
                   for seed in seeds],
                  seeds=seeds, steps=steps, turbulent_drift=turbulent_drift)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run()])
