"""E10 -- self-awareness reduces the need for a-priori domain modelling.

Paper abstract and Section III (Agarwal): run-time self-awareness
"reduc[es] the need for a priori domain modelling at design or
deployment time", because the system discovers how to meet its goals
from what it finds during operation.

One fixed decision task (the E1 resource environment, stationary goal);
controllers differ only in where their action-outcome model comes from:

- ``prior-exact``   : design-time model, perfectly correct (the best case
  classic engineering can hope for);
- ``prior-stale``   : design-time model built for the wrong regime (what
  actually happens when the world shifts after deployment);
- ``learned-only``  : no prior at all; empirical model from scratch;
- ``blended``       : stale prior + run-time learning (confidence-weighted
  blend -- awareness *reduces*, not eliminates, modelling).

The claim reproduced: a learner recovers most of the exact-prior utility
with *zero* design-time model, and a wrong prior is worse than no prior
unless run-time learning can override it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from ..core.goals import Goal, Objective
from ..core.levels import CapabilityProfile
from ..core.loop import run_control_loop
from ..core.models import (BlendedModel, EmpiricalActionModel,
                           PredictiveModel, PriorModel)
from ..core.node import SelfAwareNode
from ..core.reasoner import UtilityReasoner
from .e1_levels import (ACTION_TABLE, ResourceAllocationEnvironment,
                        make_e1_sensors)
from .harness import ExperimentTable


def _stationary_env(seed: int) -> ResourceAllocationEnvironment:
    """The E1 world, stationary: no goal change, no inversion, no shocks.

    The question E10 isolates is purely where the model comes from, so
    the regime holds still (stormy, the condition the stale prior was
    *not* built for).
    """
    env = ResourceAllocationEnvironment(
        seed=seed, goal_change_time=float("inf"),
        inversion_time=float("inf"), shock_times=())
    env.storminess.retarget(0.65)
    env.storminess.current = 0.65
    return env


def _goal() -> Goal:
    return Goal(objectives=[Objective("perf", lo=0.0, hi=1.0),
                            Objective("cost", maximise=False, lo=0.0, hi=1.0)],
                weights={"perf": 0.6, "cost": 0.4}, name="e10")


def _exact_prior() -> PriorModel:
    """A perfect design-time model of the (stormy, s=0.65) regime."""
    storm = 0.65
    table = {}
    for action, (calm_perf, storm_perf, cost) in ACTION_TABLE.items():
        table[action] = {"perf": (1 - storm) * calm_perf + storm * storm_perf,
                         "cost": cost}
    return PriorModel(table, stated_confidence=1.0)


def _stale_prior() -> PriorModel:
    """A design-time model built for the calm lab conditions (s=0.1)."""
    storm = 0.1
    table = {}
    for action, (calm_perf, storm_perf, cost) in ACTION_TABLE.items():
        table[action] = {"perf": (1 - storm) * calm_perf + storm * storm_perf,
                         "cost": cost}
    return PriorModel(table, stated_confidence=1.0)


def model_factories() -> Dict[str, Callable[[], PredictiveModel]]:
    """The model-provenance contenders."""
    return {
        "prior-exact": _exact_prior,
        "prior-stale": _stale_prior,
        "learned-only": lambda: EmpiricalActionModel(forgetting=0.95),
        "blended(stale+learning)": lambda: BlendedModel(
            _stale_prior(), EmpiricalActionModel(forgetting=0.95)),
    }


def run_shard(seed: int, steps: int = 800) -> Dict[str, List[float]]:
    """One seed's worth of E10: [mean_utility, late_utility] per model."""
    payload: Dict[str, List[float]] = {}
    for name, factory in model_factories().items():
        env = _stationary_env(seed)
        goal = _goal()
        # Priors get epsilon 0: a pure design-time system does not
        # explore (it has nothing to learn); learners do.
        epsilon = 0.0 if name.startswith("prior") else 0.1
        reasoner = UtilityReasoner(goal, factory(), epsilon=epsilon,
                                   rng=np.random.default_rng(300 + seed))
        node = SelfAwareNode(
            name=name, profile=CapabilityProfile.minimal(),
            sensors=make_e1_sensors(env, np.random.default_rng(400 + seed)),
            reasoner=reasoner)
        trace = run_control_loop(node, env, goal, steps)
        late = trace.mean_utility_between(steps * 0.75, steps + 1.0)
        payload[name] = [trace.mean_utility(), late]
    return payload


def reduce(shards: Sequence[Dict[str, List[float]]],
           seeds: Sequence[int] = (), steps: int = 800) -> ExperimentTable:
    """Seed-average per-seed payloads into the E10 table."""
    table = ExperimentTable(
        experiment_id="E10",
        title="Design-time knowledge vs run-time learning (model provenance)",
        columns=["model", "mean_utility", "late_utility", "vs_exact_prior"],
        notes=("stationary stormy regime the stale prior was not built "
               "for; late = final quarter; priors never learn, learners "
               "start from nothing"))
    exact = float(np.mean([shard["prior-exact"][0] for shard in shards]))
    for name in model_factories():
        values = [shard[name] for shard in shards]
        mean_u = float(np.mean([v[0] for v in values]))
        table.add_row(model=name, mean_utility=mean_u,
                      late_utility=float(np.mean([v[1] for v in values])),
                      vs_exact_prior=mean_u / exact if exact else 0.0)
    return table


def run(seeds: Sequence[int] = (0, 1, 2, 3, 4),
        steps: int = 800) -> ExperimentTable:
    """One row per model provenance."""
    return reduce([run_shard(seed, steps=steps) for seed in seeds],
                  seeds=seeds, steps=steps)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run()])
