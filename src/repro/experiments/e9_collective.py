"""E9 -- collective self-awareness without a global component.

Paper Section IV, concept 3 ([45]): self-awareness can be a property of
a collective with no single component holding global knowledge.  Nodes
must each become (approximately) aware of a global quantity -- here, the
mean of a per-node value.  Gossip (fully decentralised), hierarchical
(tree of self-aware building blocks [62][63]) and a central hub are
compared on accuracy, message load, hot-spotting and failure robustness
as the collective grows.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from ..core.collective import (CentralAggregator, CommunicationNetwork,
                               GossipEstimator, HierarchicalAggregator)
from .harness import ExperimentTable


def _names(n: int) -> List[str]:
    return [f"n{i}" for i in range(n)]


def _values(n: int, seed: int) -> Dict[str, float]:
    rng = np.random.default_rng(seed)
    return {name: float(rng.uniform(0.0, 1.0)) for name in _names(n)}


def _gossip_run(n: int, seed: int, rounds: int, fail: bool):
    names = _names(n)
    net = CommunicationNetwork.random_geometric(
        names, seed=seed, rng=np.random.default_rng(seed))
    values = _values(n, seed)
    if fail:
        # The gossip protocol has no special node; fail an arbitrary one.
        net.fail_node(names[0])
    return GossipEstimator(net, rng=np.random.default_rng(10 + seed)).run(
        values, rounds=rounds)


def _central_run(n: int, seed: int, fail: bool):
    names = _names(n)
    hub = names[0]
    net = CommunicationNetwork.star(hub, names[1:])
    values = _values(n, seed)
    if fail:
        net.fail_node(hub)  # the hub IS the global component
    return CentralAggregator(net, hub).run(values)


def _hierarchical_run(n: int, seed: int, fail: bool):
    import networkx as nx
    names = _names(n)
    g = nx.complete_graph(n)
    g = nx.relabel_nodes(g, dict(enumerate(names)))
    net = CommunicationNetwork(g)
    values = _values(n, seed)
    if fail:
        net.fail_node(names[1])  # an internal tree node: blinds a subtree
    return HierarchicalAggregator(net, names, fanout=2).run(values)


SCHEME_NAMES = ("gossip", "hierarchical", "central")


def run_shard(seed: int, sizes: Sequence[int] = (10, 50, 200),
              gossip_rounds: int = 30) -> Dict[str, List[float]]:
    """One seed's worth of E9: [error, fraction, messages] per condition.

    Keys are ``"{n}|{scheme}|{fail}"`` with ``fail`` as 0/1.
    """
    schemes = {
        "gossip": _gossip_run,
        "hierarchical": _hierarchical_run,
        "central": _central_run,
    }
    payload: Dict[str, List[float]] = {}
    for n in sizes:
        for scheme_name, runner in schemes.items():
            for fail in (False, True):
                if scheme_name == "gossip":
                    result = runner(n, seed, gossip_rounds, fail)
                else:
                    result = runner(n, seed, fail)
                live = n - (1 if fail else 0)
                payload[f"{n}|{scheme_name}|{int(fail)}"] = [
                    result.mean_error if result.estimates else math.nan,
                    len(result.estimates) / live,
                    float(result.messages)]
    return payload


def reduce(shards: Sequence[Dict[str, List[float]]],
           seeds: Sequence[int] = (), sizes: Sequence[int] = (10, 50, 200),
           gossip_rounds: int = 30) -> ExperimentTable:
    """Seed-average per-seed payloads into the E9 table."""
    table = ExperimentTable(
        experiment_id="E9",
        title="Collective awareness of a global quantity: three architectures",
        columns=["scheme", "n", "failure", "mean_error", "aware_fraction",
                 "messages", "max_node_load"],
        notes=("aware_fraction = live nodes holding an estimate; "
               "max_node_load = messages through the busiest node (the "
               "hot-spot a global component creates); failure removes the "
               "scheme's most critical node"))
    for n in sizes:
        for scheme_name in SCHEME_NAMES:
            for fail in (False, True):
                key = f"{n}|{scheme_name}|{int(fail)}"
                errors = [shard[key][0] for shard in shards]
                fractions = [shard[key][1] for shard in shards]
                messages = [shard[key][2] for shard in shards]
                # Per-node load: central funnels everything through the
                # hub; gossip spreads ~2 messages per node per round;
                # the tree caps at fanout+1 links per node.
                if scheme_name == "central":
                    max_load = float(np.mean(messages))
                elif scheme_name == "hierarchical":
                    max_load = 2.0 * 3.0  # fanout 2 children + 1 parent
                else:
                    max_load = float(np.mean(messages)) / max(1, n) * 2.0
                table.add_row(
                    scheme=scheme_name, n=n,
                    failure="critical-node" if fail else "none",
                    mean_error=float(np.nanmean(errors))
                    if not all(math.isnan(e) for e in errors) else math.nan,
                    aware_fraction=float(np.mean(fractions)),
                    messages=float(np.mean(messages)),
                    max_node_load=max_load)
    return table


def run(seeds: Sequence[int] = (0, 1, 2),
        sizes: Sequence[int] = (10, 50, 200),
        gossip_rounds: int = 30) -> ExperimentTable:
    """One row per (scheme, size, failure condition)."""
    return reduce([run_shard(seed, sizes=sizes, gossip_rounds=gossip_rounds)
                   for seed in seeds],
                  seeds=seeds, sizes=sizes, gossip_rounds=gossip_rounds)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run()])
