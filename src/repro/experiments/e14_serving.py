"""E14 -- self-aware serving: a governor versus a design-time pool.

PR 5's tentpole claim, made measurable.  The serving layer of
:mod:`repro.serve` is driven through its deterministic discrete-time
model (the ``serve`` substrate of the :mod:`repro.api` registry) across
an offered-load sweep, comparing two control arms over identical request
streams:

``static``
    A design-time configuration: a fixed worker pool (sized for the
    *typical* load) with admission derived from its fixed capacity --
    the conventional deployment the paper argues against.
``governor``
    The :class:`~repro.serve.governor.ServeGovernor`: stimulus/time/goal
    awareness over queue depth, arrival rate and p95 latency, a learned
    capacity self-model, and self-expression through pool size and
    admission settings.

Figures of merit per (load, arm) cell, scored post-warmup:

``goodput``
    Completions per tick that met the latency SLO.
``p95_latency``
    95th-percentile request latency in ticks (the SLO is
    ``ServeConfig.slo_p95``).
``shed_fraction``
    Fraction of offered requests shed by admission control.
``mean_pool``
    Average provisioned workers (the cost side of the trade-off).

The headline acceptance claim -- checked by ``tests/experiments/test_e14.py``
-- is that at the highest offered load the governor sustains at least
1.5x the static pool's goodput while keeping p95 latency within the SLO.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from .harness import ExperimentTable

ARMS = ("static", "governor")

#: Full-size sweep defaults (the quick suite overrides via params).
LOADS = (4.0, 8.0, 16.0, 28.0)
STEPS = 600


def run_shard(seed: int, steps: int = STEPS,
              loads: Sequence[float] = LOADS
              ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """One seed: arm -> offered load -> scored metrics (JSON-safe)."""
    from ..api import ServeConfig, make_simulator
    payload: Dict[str, Dict[str, Dict[str, float]]] = {}
    for arm in ARMS:
        cells: Dict[str, Dict[str, float]] = {}
        for load in loads:
            config = ServeConfig(
                steps=steps, seed=seed, offered_load=float(load),
                governor="self_aware" if arm == "governor" else "static")
            sim = make_simulator("serve", config)
            sim.run()
            metrics = sim.metrics()
            cells[f"{load:g}"] = {key: float(metrics[key]) for key in
                                  ("goodput", "p95_latency", "shed_fraction",
                                   "mean_pool", "slo_attainment", "offered")}
        payload[arm] = cells
    return payload


def _nanmean(values: List[float]) -> float:
    finite = [v for v in values if not math.isnan(v)]
    return float(np.mean(finite)) if finite else math.nan


def reduce(shards: Sequence[Dict], seeds: Sequence[int] = (),
           steps: int = STEPS,
           loads: Sequence[float] = LOADS) -> ExperimentTable:
    """Seed-average the serving sweep into the E14 table."""
    table = ExperimentTable(
        experiment_id="E14",
        title="Self-aware serving: goodput, latency and shedding vs a "
              "static pool across offered load",
        columns=["offered_load", "arm", "goodput", "p95_latency",
                 "shed_fraction", "mean_pool", "slo_attainment"],
        notes=("serve substrate (repro.serve.simulation): Poisson "
               "arrivals, admission-gated FIFO queue, worker pool with "
               "boot delay; 'goodput' = SLO-met completions per tick "
               "scored post-warmup; static arm = "
               "design-time pool of ServeConfig.static_workers; governor "
               "arm = ServeGovernor (learned capacity model + p95 SLO "
               "constraint + degradation monitor)"))
    for load in loads:
        key = f"{load:g}"
        for arm in ARMS:
            cells = [shard[arm][key] for shard in shards]
            table.add_row(
                offered_load=float(load), arm=arm,
                goodput=_nanmean([c["goodput"] for c in cells]),
                p95_latency=_nanmean([c["p95_latency"] for c in cells]),
                shed_fraction=_nanmean([c["shed_fraction"] for c in cells]),
                mean_pool=_nanmean([c["mean_pool"] for c in cells]),
                slo_attainment=_nanmean(
                    [c["slo_attainment"] for c in cells]))
    top = f"{max(loads):g}"
    static_good = _nanmean([s["static"][top]["goodput"] for s in shards])
    governor_good = _nanmean([s["governor"][top]["goodput"] for s in shards])
    if static_good > 1e-9:
        table.append_note(
            f"at offered load {top}: governor goodput is "
            f"{governor_good / static_good:.2f}x the static pool's")
    return table


def run(seeds: Sequence[int] = (0, 1, 2), steps: int = STEPS,
        loads: Sequence[float] = LOADS) -> ExperimentTable:
    """The full sweep, serial (the suite shards it by seed)."""
    return reduce([run_shard(seed, steps=steps, loads=loads)
                   for seed in seeds], seeds=seeds, steps=steps, loads=loads)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run()])
