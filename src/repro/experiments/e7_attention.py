"""E7 -- attention: directing limited sensing resources (fog/mist nodes).

Paper Section V (Preden et al. [55]): resource-constrained systems must
determine for themselves how to direct limited resources over the vast
set of things they could attend to.  One sensing node tracks a
heterogeneous channel field under an energy budget; attention policies
of increasing awareness are swept across budgets.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from ..core.attention import (AttentionPolicy, FullAttention,
                              RandomAttention, RoundRobinAttention,
                              SalienceAttention)
from ..api import SensornetConfig, SensornetSimulator
from ..sensornet.field import ChannelField, mixed_channel_specs
from .harness import ExperimentTable

N_CHANNELS = 8


def policy_factories(seed: int) -> Dict[str, Callable[[], AttentionPolicy]]:
    """The attention contenders."""
    return {
        "full(truncated)": FullAttention,
        "round-robin": RoundRobinAttention,
        "random": lambda: RandomAttention(np.random.default_rng(50 + seed)),
        "salience(self-aware)": lambda: SalienceAttention(staleness_scale=1.0),
    }


DETECTION_POLICY_NAMES = ("round-robin", "random", "salience(tracking)",
                          "deadline(mission-aware)")


def _detection_policies(specs, seed):
    from ..core.spans import public
    from ..sensornet.events import DeadlineAttention
    return {
        "round-robin": RoundRobinAttention(),
        "random": RandomAttention(np.random.default_rng(70 + seed)),
        "salience(tracking)": SalienceAttention(staleness_scale=1.0),
        "deadline(mission-aware)": DeadlineAttention(
            windows={public(s.name): float(s.spike_duration)
                     for s in specs},
            importance={public(s.name): s.importance for s in specs}),
    }


def run_detection_table_shard(seed: int,
                              budgets: Sequence[float] = (2.0, 4.0),
                              steps: int = 1500) -> Dict[str, float]:
    """One seed's worth of E7b: detection rate per 'policy|budget' key."""
    from ..sensornet.events import (SpikeField, mixed_spike_specs,
                                    run_detection)
    payload: Dict[str, float] = {}
    for budget in budgets:
        specs = mixed_spike_specs(N_CHANNELS, seed=seed)
        for name, policy in _detection_policies(specs, seed).items():
            field = SpikeField(specs, rng=np.random.default_rng(seed))
            stats = run_detection(field, policy, budget, steps=steps,
                                  rng=np.random.default_rng(100 + seed))
            payload[f"{name}|{budget}"] = stats["weighted_detection_rate"]
    return payload


def reduce_detection_table(shards: Sequence[Dict[str, float]],
                           seeds: Sequence[int] = (),
                           budgets: Sequence[float] = (2.0, 4.0),
                           steps: int = 1500) -> ExperimentTable:
    """E7b: transient-event detection (the deadline-matched policy).

    The tracking salience is mismatched to transient events -- a spike
    older than its observability window is lost, so staleness value
    saturates.  The mission-matched policy (learned event rates +
    deadline windows) is what catches them.
    """
    table = ExperimentTable(
        experiment_id="E7b",
        title="Attention for transient events (weighted detection rate)",
        columns=["policy", "budget", "weighted_detection", "vs_random"],
        notes=(f"{N_CHANNELS} spike channels (quiet/busy/hot bands); a "
               "spike is detected only if sampled during its short "
               "observability window; higher is better"))
    for budget in budgets:
        results = {name: [shard[f"{name}|{budget}"] for shard in shards]
                   for name in DETECTION_POLICY_NAMES}
        random_rate = float(np.mean(results["random"]))
        for name, values in results.items():
            rate = float(np.mean(values))
            table.add_row(policy=name, budget=budget,
                          weighted_detection=rate,
                          vs_random=rate / random_rate if random_rate else 0.0)
    return table


def run_detection_table(seeds: Sequence[int] = (0, 1, 2),
                        budgets: Sequence[float] = (2.0, 4.0),
                        steps: int = 1500) -> ExperimentTable:
    """E7b entry point: one row per (policy, budget), seed-averaged."""
    return reduce_detection_table(
        [run_detection_table_shard(seed, budgets=budgets, steps=steps)
         for seed in seeds],
        seeds=seeds, budgets=budgets, steps=steps)


POLICY_NAMES = ("full(truncated)", "round-robin", "random",
                "salience(self-aware)")


def run_shard(seed: int, budgets: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
              steps: int = 500) -> Dict[str, List[float]]:
    """One seed's worth of E7: [error, energy] per 'policy|budget' key."""
    payload: Dict[str, List[float]] = {}
    for budget in budgets:
        for name, factory in policy_factories(seed).items():
            field = ChannelField(mixed_channel_specs(N_CHANNELS, seed=seed),
                                 rng=np.random.default_rng(seed))
            res = SensornetSimulator(
                SensornetConfig(steps=steps, budget=budget),
                field=field, attention=factory(),
                rng=np.random.default_rng(100 + seed)).run()
            payload[f"{name}|{budget}"] = [res.mean_error(skip=50),
                                           res.mean_energy()]
    return payload


def reduce(shards: Sequence[Dict[str, List[float]]],
           seeds: Sequence[int] = (),
           budgets: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
           steps: int = 500) -> ExperimentTable:
    """Seed-average per-seed payloads into the E7 table."""
    table = ExperimentTable(
        experiment_id="E7",
        title="Attention under an energy budget (weighted tracking error)",
        columns=["policy", "budget", "error", "vs_random", "energy_per_step"],
        notes=(f"{N_CHANNELS} heterogeneous channels (quiet/active/volatile "
               "bands, varying importance and sampling cost); lower error "
               "is better"))
    for budget in budgets:
        results = {name: [shard[f"{name}|{budget}"] for shard in shards]
                   for name in POLICY_NAMES}
        random_error = float(np.mean([v[0] for v in results["random"]]))
        for name, values in results.items():
            error = float(np.mean([v[0] for v in values]))
            table.add_row(
                policy=name, budget=budget, error=error,
                vs_random=error / random_error if random_error else 0.0,
                energy_per_step=float(np.mean([v[1] for v in values])))
    return table


def run(seeds: Sequence[int] = (0, 1, 2, 3),
        budgets: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
        steps: int = 500) -> ExperimentTable:
    """One row per (policy, budget): importance-weighted tracking error."""
    return reduce([run_shard(seed, budgets=budgets, steps=steps)
                   for seed in seeds],
                  seeds=seeds, budgets=budgets, steps=steps)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run(), run_detection_table()])
