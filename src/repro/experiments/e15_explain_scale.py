"""E15 -- explanation at scale: causal queries over million-event streams.

PR 6's tentpole claim, made measurable.  A self-aware system that can
only explain its *last* decision has not solved self-explanation; the
:class:`~repro.explain.ExplanationStore` claims to answer "why did
decisions of kind K happen in window W" over arbitrarily long recorded
streams in O(rollup) time with bounded memory.  This experiment drives a
synthetic but structurally faithful decision stream -- the
telemetry → prediction → scale-decision chains the serve governor emits,
plus periodic meta switches -- through the store at increasing lengths
and scores:

``ingest_eps``
    Streaming ingestion throughput (events per second).
``query_seconds``
    Mean wall time of a ``why_aggregate`` query (full-stream and
    windowed, mixed).  The headline acceptance claim -- checked by
    ``tests/experiments/test_e15.py`` -- is that this is *sublinear* in
    stream length: queries run on rollups, never on the raw stream.
``state_cells``
    The store's total retained state (index slots + rollup cells +
    time buckets): must stay bounded as the stream grows.
``chain_complete``
    Fraction of recently recorded decisions whose full causal chain
    (decision → prediction → telemetry) resolves via ``why``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from ..explain import ExplanationStore
from ..obs.events import Event
from .harness import ExperimentTable

#: Full-size sweep defaults (the quick suite overrides via params).
LENGTHS = (100_000, 300_000, 1_000_000)

#: ``why_aggregate`` invocations averaged per measurement.
QUERIES = 24

#: Recent decisions whose chains are checked for completeness.
CHAIN_SAMPLE = 64


def synthesize_stream(store: ExplanationStore, length: int,
                      seed: int) -> int:
    """Feed ``length`` events of governor-shaped traffic into ``store``.

    Every cycle emits a telemetry event; every other cycle a prediction
    (caused by the telemetry) and a scale decision (caused by both);
    every ~200th cycle a ``meta.switch``.  Latencies are drawn from a
    seeded generator so runs are reproducible.  Events are fed directly
    (the store is stream-agnostic: a live bus and a replayed trace look
    identical), which keeps the experiment about the store, not about
    simulator speed.  Returns the number of decisions recorded.
    """
    rng = np.random.default_rng([0xE15, seed])
    # Draw per-chunk to bound the experiment's own memory at any length.
    chunk = 4096
    seq = 0
    decisions = 0
    feed = store  # one attribute lookup, hot loop below
    while seq < length:
        latencies = rng.gamma(shape=2.0, scale=0.5,
                              size=min(chunk, length - seq))
        for latency in latencies:
            t = float(seq) * 0.1
            telemetry = Event("serve.telemetry", seq,
                              {"time": t, "queue_depth": float(seq % 17)})
            feed(telemetry)
            seq += 1
            if seq >= length:
                break
            predict = Event("serve.predict", seq,
                            {"time": t, "latency": float(latency)},
                            causes=(telemetry.seq,))
            feed(predict)
            seq += 1
            if seq >= length:
                break
            name = "meta.switch" if decisions % 200 == 199 else "serve.scale"
            decision = Event(name, seq,
                             {"time": t, "pool": float(seq % 8 + 1),
                              "latency": float(latency)},
                             causes=(predict.seq, telemetry.seq))
            feed(decision)
            decisions += 1
            seq += 1
            if seq >= length:
                break
    return decisions


def _time_queries(store: ExplanationStore, length: int,
                  queries: int) -> float:
    """Mean seconds per ``why_aggregate`` call, mixed full and windowed."""
    t_hi = length * 0.1
    total = 0.0
    for q in range(queries):
        if q % 3 == 0:
            args = dict(kind=None, window=None)
        elif q % 3 == 1:
            args = dict(kind="serve.scale",
                        window=(t_hi * 0.4, t_hi * 0.6), axis="time")
        else:
            args = dict(kind="meta.switch",
                        window=(length // 4, length // 2), axis="seq")
        t0 = time.perf_counter()
        store.why_aggregate(**args)
        total += time.perf_counter() - t0
    return total / queries


def _chain_completeness(store: ExplanationStore, sample: int) -> float:
    """Fraction of the newest indexed decisions with fully resolved chains."""
    decision_seqs: List[int] = []
    for seq in reversed(store._index):
        if store._index[seq].name in ("serve.scale", "meta.switch"):
            decision_seqs.append(seq)
            if len(decision_seqs) >= sample:
                break
    if not decision_seqs:
        return 0.0
    complete = 0
    for seq in decision_seqs:
        chain = store.why(seq)
        causes = chain.get("causes", [])
        if causes and all(not c["truncated"] for c in causes) and any(
                c.get("causes") for c in causes):
            complete += 1
    return complete / len(decision_seqs)


def run_shard(seed: int, lengths: Sequence[int] = LENGTHS,
              queries: int = QUERIES
              ) -> Dict[str, Dict[str, float]]:
    """One seed: stream length -> scored metrics (JSON-safe)."""
    payload: Dict[str, Dict[str, float]] = {}
    for length in lengths:
        store = ExplanationStore()
        t0 = time.perf_counter()
        decisions = synthesize_stream(store, int(length), seed)
        ingest_seconds = time.perf_counter() - t0
        stats = store.stats()
        # Warm pass first: ingesting the stream just walked far more
        # memory than the rollups occupy, so the first queries measure
        # cache refill, not query cost.
        _time_queries(store, int(length), queries=3)
        payload[str(int(length))] = {
            "ingest_eps": (stats["events_seen"] / ingest_seconds
                           if ingest_seconds > 0 else 0.0),
            "query_seconds": _time_queries(store, int(length), queries),
            "state_cells": float(stats["indexed"] + stats["rollup_cells"]
                                 + stats["buckets"]),
            "chain_complete": _chain_completeness(store, CHAIN_SAMPLE),
            "decisions": float(decisions),
            "truncated": float(stats["truncated"]),
        }
    return payload


def reduce(shards: Sequence[Dict], seeds: Sequence[int] = (),
           lengths: Sequence[int] = LENGTHS,
           queries: int = QUERIES) -> ExperimentTable:
    """Seed-average the scaling sweep into the E15 table."""
    table = ExperimentTable(
        experiment_id="E15",
        title="Explanation at scale: causal query cost and store memory "
              "vs recorded stream length",
        columns=["stream_length", "ingest_eps", "query_seconds",
                 "state_cells", "chain_complete"],
        notes=("governor-shaped synthetic stream (telemetry -> prediction "
               "-> scale decision causal chains + periodic meta switches) "
               "fed through repro.explain.ExplanationStore; query_seconds "
               "= mean why_aggregate wall time over mixed full-stream and "
               "windowed queries answered from rollups only; state_cells "
               "= bounded index slots + rollup cells + time buckets"))
    for length in lengths:
        key = str(int(length))
        cells = [shard[key] for shard in shards]
        table.add_row(
            stream_length=int(length),
            ingest_eps=float(np.mean([c["ingest_eps"] for c in cells])),
            query_seconds=float(np.mean([c["query_seconds"]
                                         for c in cells])),
            state_cells=float(np.mean([c["state_cells"] for c in cells])),
            chain_complete=float(np.mean([c["chain_complete"]
                                          for c in cells])))
    if len(lengths) >= 2:
        lo, hi = str(int(lengths[0])), str(int(lengths[-1]))
        q_lo = float(np.mean([s[lo]["query_seconds"] for s in shards]))
        q_hi = float(np.mean([s[hi]["query_seconds"] for s in shards]))
        if q_lo > 0:
            table.append_note(
                f"stream grew {lengths[-1] / lengths[0]:.0f}x, query time "
                f"grew {q_hi / q_lo:.2f}x (sublinear: rollup-resident "
                f"queries never replay the stream)")
    return table


def run(seeds: Sequence[int] = (0,), lengths: Sequence[int] = LENGTHS,
        queries: int = QUERIES) -> ExperimentTable:
    """The full sweep, serial (the suite shards it by seed)."""
    return reduce([run_shard(seed, lengths=lengths, queries=queries)
                   for seed in seeds], seeds=seeds, lengths=lengths,
                  queries=queries)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run()])
