"""E3 -- self-aware autoscaling balances QoS and cost under change.

Paper Section V cites self-aware autoscaling of cloud configurations
[58] and self-expressive datacenter management [56].  The experiment
drives an elastic cluster with a seasonal + shocked workload and
compares static (under/over-provisioned), reactive (threshold), the
self-aware scaler (forecasting + learned capacity + live goal) and the
demand oracle.  A second table re-weights the goal mid-run toward cost,
which only the goal-reading scaler can follow.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..cloud.autoscaler import (Autoscaler, OracleScaler, ReactiveScaler,
                                SelfAwareScaler, StaticScaler,
                                make_cloud_goal)
from ..cloud.cluster import ClusterMetrics, ServiceCluster
from ..envgen.processes import Shock, ShockSchedule
from ..envgen.workloads import RequestRateWorkload
from .harness import ExperimentTable

CLUSTER = dict(capacity_per_server=10.0, boot_delay=5, max_servers=40,
               initial_servers=4)


def make_demand(seed: int, steps: int) -> Callable[[float], float]:
    """Seasonal demand with one flash-crowd shock at 55% of the run."""
    workload = RequestRateWorkload(
        base_rate=60.0, seasonal_amplitude=0.5, period=200.0,
        shocks=ShockSchedule([Shock(start=0.55 * steps, duration=60.0,
                                    magnitude=1.2)]),
        noise_std=0.05, rng=np.random.default_rng(seed))
    return workload.rate


def _drive(scaler: Autoscaler, demand, goal, steps: int,
           reweight_at: Optional[float] = None) -> List[ClusterMetrics]:
    cluster = ServiceCluster(**CLUSTER)
    history: List[ClusterMetrics] = []
    metrics: Optional[ClusterMetrics] = None
    for t in range(steps):
        if reweight_at is not None and t == int(reweight_at):
            goal.set_weights({"qos": 0.3, "cost": 0.7})
        cluster.request_scale(scaler.decide(float(t), metrics))
        metrics = cluster.step(float(t), max(0.0, demand(float(t))))
        history.append(metrics)
    return history


def _score(history: List[ClusterMetrics], goal) -> Dict[str, float]:
    utilities = [goal.utility(m.as_dict()) for m in history]
    return {
        "utility": float(np.mean(utilities)),
        "qos": float(np.mean([m.qos for m in history])),
        "cost": float(np.mean([m.cost for m in history])),
        "dropped": float(np.sum([m.dropped for m in history])),
    }


def scaler_factories(goal, demand) -> Dict[str, Callable[[], Autoscaler]]:
    """The contenders (oracle needs the true demand function)."""
    return {
        "static-4": lambda: StaticScaler(4),
        "static-15": lambda: StaticScaler(15),
        "reactive": lambda: ReactiveScaler(),
        "self-aware": lambda: SelfAwareScaler(
            goal, boot_delay=CLUSTER["boot_delay"],
            max_servers=CLUSTER["max_servers"]),
        "oracle": lambda: OracleScaler(
            demand, CLUSTER["capacity_per_server"], CLUSTER["boot_delay"],
            goal, max_servers=CLUSTER["max_servers"]),
    }


def run_shard(seed: int, steps: int = 600) -> Dict[str, Dict[str, float]]:
    """One seed's worth of E3: every scaler's score dict, JSON-safe."""
    payload: Dict[str, Dict[str, float]] = {}
    demand = make_demand(seed, steps)
    goal = make_cloud_goal()
    for name, factory in scaler_factories(goal, demand).items():
        history = _drive(factory(), demand, goal, steps)
        payload[name] = _score(history, goal)
    return payload


def reduce(shards: Sequence[Dict[str, Dict[str, float]]],
           seeds: Sequence[int] = (), steps: int = 600) -> ExperimentTable:
    """Seed-average per-seed payloads into the E3 table."""
    table = ExperimentTable(
        experiment_id="E3",
        title="Cloud autoscaling: QoS/cost trade-off under workload change",
        columns=["scaler", "utility", "qos", "mean_servers", "dropped",
                 "vs_oracle"],
        notes=("seasonal demand + flash crowd; goal 0.7 qos / 0.3 cost; "
               "'oracle' = perfect demand foresight through the same "
               "sizing procedure, i.e. what better information (not a "
               "better controller) buys -- slight over-provisioning can "
               "legitimately score above it under demand noise"))
    names = list(shards[0]) if shards else []
    oracle_mean = float(np.mean([shard["oracle"]["utility"]
                                 for shard in shards]))
    for name in names:
        scores = [shard[name] for shard in shards]
        utility = float(np.mean([s["utility"] for s in scores]))
        table.add_row(
            scaler=name, utility=utility,
            qos=float(np.mean([s["qos"] for s in scores])),
            mean_servers=float(np.mean([s["cost"] for s in scores])),
            dropped=float(np.mean([s["dropped"] for s in scores])),
            vs_oracle=utility / oracle_mean if oracle_mean else math.nan)
    return table


def run(seeds: Sequence[int] = (0, 1, 2), steps: int = 600) -> ExperimentTable:
    """Main comparison table (stationary goal)."""
    return reduce([run_shard(seed, steps=steps) for seed in seeds],
                  seeds=seeds, steps=steps)


def run_goal_change_shard(seed: int, steps: int = 600) -> Dict[str, List[float]]:
    """One seed's worth of E3b: [before, after, cost_after] per scaler."""
    payload: Dict[str, List[float]] = {}
    half = steps // 2
    for name in ("static-15", "reactive", "self-aware"):
        demand = make_demand(seed, steps)
        goal = make_cloud_goal()
        factory = scaler_factories(goal, demand)[name]
        history = _drive(factory(), demand, goal, steps, reweight_at=half)
        eval_goal_early = make_cloud_goal()
        eval_goal_late = make_cloud_goal(qos_weight=0.3, cost_weight=0.7)
        payload[name] = [
            float(np.mean(
                [eval_goal_early.utility(m.as_dict()) for m in history[:half]])),
            float(np.mean(
                [eval_goal_late.utility(m.as_dict()) for m in history[half:]])),
            float(np.mean([m.cost for m in history[half:]])),
        ]
    return payload


def reduce_goal_change(shards: Sequence[Dict[str, List[float]]],
                       seeds: Sequence[int] = (),
                       steps: int = 600) -> ExperimentTable:
    """Seed-average per-seed payloads into the E3b table."""
    table = ExperimentTable(
        experiment_id="E3b",
        title="Cloud autoscaling under a run-time goal change (qos->cost)",
        columns=["scaler", "utility_before", "utility_after", "cost_after"],
        notes="at t=steps/2 the goal becomes 0.3 qos / 0.7 cost; utilities "
              "scored against the live goal")
    for name in ("static-15", "reactive", "self-aware"):
        values = [shard[name] for shard in shards]
        table.add_row(scaler=name,
                      utility_before=float(np.mean([v[0] for v in values])),
                      utility_after=float(np.mean([v[1] for v in values])),
                      cost_after=float(np.mean([v[2] for v in values])))
    return table


def run_goal_change(seeds: Sequence[int] = (0, 1, 2),
                    steps: int = 600) -> ExperimentTable:
    """Second table: stakeholders re-weight the goal toward cost mid-run."""
    return reduce_goal_change(
        [run_goal_change_shard(seed, steps=steps) for seed in seeds],
        seeds=seeds, steps=steps)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run(), run_goal_change()])
