"""E13 -- graceful degradation: self-awareness buys resilience.

The paper's engineering case for self-awareness is not only steady-state
optimality but behaviour under the unforeseen: a self-aware system
"monitors its own state and its environment" and can therefore notice
that something broke and re-plan around it.  E13 makes that claim
measurable with the :mod:`repro.faults` layer: a deterministic
:class:`~repro.faults.plan.FaultPlan` opens a mid-run fault window --
crashed components, corrupted telemetry, a workload surge -- on two
substrates (the smart-camera network and the elastic cloud cluster),
sweeping fault intensity against the controller's awareness level.

Two figures of merit per (substrate, controller, intensity) cell:

``retained``
    Overall run performance under faults divided by the same
    controller/seed run with no faults -- the fraction of clean-run
    performance the controller kept.  1.0 at intensity 0 by
    construction (a fault-free plan is provably inert).
``recovery_steps``
    Steps after the fault window closes until the smoothed per-step
    performance returns to 90% of its pre-fault mean (NaN = never
    within the run).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..faults.plan import (CRASH, SENSOR_NOISE, WORKLOAD_SPIKE, FaultPlan,
                           FaultSpec)
from .harness import ExperimentTable

#: Fault window as fractions of the run: opens at 40%, closes at 60%.
WINDOW = (0.4, 0.6)

#: Smoothing width (steps) for the recovery scan.
SMOOTH = 15

#: Recovery target: smoothed performance back at this fraction of the
#: pre-fault mean.
RECOVERY_FRACTION = 0.9

ARMS = ("baseline", "self-aware")


# ---------------------------------------------------------------------------
# Fault plans


def camera_plan(steps: int, intensity: float, seed: int) -> Optional[FaultPlan]:
    """Cameras crash and bid telemetry goes noisy inside the window."""
    if intensity <= 0.0:
        return None
    t0, t1 = WINDOW[0] * steps, WINDOW[1] * steps
    return FaultPlan(specs=(
        FaultSpec(kind=CRASH, start=t0, end=t1, intensity=intensity),
        FaultSpec(kind=SENSOR_NOISE, start=t0, end=t1,
                  intensity=0.5 * intensity),
    ), seed=seed)


def cloud_plan(steps: int, intensity: float, seed: int) -> Optional[FaultPlan]:
    """Servers crash, demand surges and the scaler's telemetry degrades."""
    if intensity <= 0.0:
        return None
    t0, t1 = WINDOW[0] * steps, WINDOW[1] * steps
    return FaultPlan(specs=(
        FaultSpec(kind=CRASH, start=t0, end=t1, intensity=intensity),
        FaultSpec(kind=WORKLOAD_SPIKE, start=t0, end=t1,
                  intensity=intensity),
        FaultSpec(kind=SENSOR_NOISE, start=t0, end=t1,
                  intensity=8.0 * intensity, target="demand"),
        FaultSpec(kind=SENSOR_NOISE, start=t0, end=t1,
                  intensity=0.2 * intensity, target="utilisation"),
    ), seed=seed)


# ---------------------------------------------------------------------------
# Substrate drivers: per-step performance series + overall score


def _run_camera(arm: str, steps: int, seed: int,
                plan: Optional[FaultPlan]) -> Dict[str, object]:
    from ..api import CameraConfig, CameraSimulator
    if arm == "self-aware":
        config = CameraConfig(steps=steps, seed=seed, controller="self_aware")
    else:
        config = CameraConfig(steps=steps, seed=seed, controller="fixed",
                              strategy="ACTIVE_BROADCAST")
    result = CameraSimulator(config, faults=plan).run()
    series = [r.tracking_utility - r.comm_weight * r.messages
              for r in result.records]
    return {"series": series, "overall": result.efficiency()}


def _run_cloud(arm: str, steps: int, seed: int,
               plan: Optional[FaultPlan]) -> Dict[str, object]:
    from ..api import CloudConfig, CloudSimulator
    # The baseline is a *well-provisioned* design-time deployment (eight
    # static servers comfortably cover the seasonal peak): strong in
    # clean conditions, so the comparison isolates resilience rather
    # than steady-state tuning.  An under-provisioned static cluster
    # would make ``retained`` degenerate -- already saturated at the
    # bottom, faults cannot make it much worse.
    if arm == "self-aware":
        config = CloudConfig(steps=steps, seed=seed, scaler="self_aware")
    else:
        config = CloudConfig(steps=steps, seed=seed, scaler="static",
                             static_servers=8)
    sim = CloudSimulator(config, faults=plan)
    history = sim.run()
    goal = sim.goal()
    utilities = [goal.utility(m.as_dict()) for m in history]
    return {"series": utilities,
            "overall": float(np.mean(utilities)) if utilities else math.nan}


SUBSTRATES = {
    "smartcamera": (_run_camera, camera_plan),
    "cloud": (_run_cloud, cloud_plan),
}


# ---------------------------------------------------------------------------
# Scoring


def recovery_steps(series: Sequence[float], steps: int,
                   smooth: int = SMOOTH) -> float:
    """Steps after the window closes until smoothed recovery (NaN: never).

    The pre-fault reference skips the first 10% of the run (controller
    warm-up) and the recovery scan uses a ``smooth``-step rolling mean
    so one lucky step does not count as recovered.
    """
    t0, t1 = int(WINDOW[0] * steps), int(WINDOW[1] * steps)
    pre = series[int(0.1 * steps):t0]
    if not pre:
        return math.nan
    target = RECOVERY_FRACTION * float(np.mean(pre))
    post = list(series[t1:])
    if len(post) < smooth:
        return math.nan
    window_sums = np.convolve(post, np.ones(smooth), mode="valid") / smooth
    for offset, value in enumerate(window_sums):
        if value >= target:
            return float(offset)
    return math.nan


def run_shard(seed: int, steps: int = 500,
              intensities: Sequence[float] = (0.0, 0.3, 0.6)
              ) -> Dict[str, Dict[str, Dict[str, Dict[str, float]]]]:
    """One seed: substrate -> arm -> intensity -> scores (JSON-safe)."""
    payload: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
    for substrate, (drive, make_plan) in SUBSTRATES.items():
        payload[substrate] = {}
        for arm in ARMS:
            clean = drive(arm, steps, seed, None)
            clean_overall = float(clean["overall"])
            cells: Dict[str, Dict[str, float]] = {}
            for intensity in intensities:
                if intensity <= 0.0:
                    run = clean
                else:
                    run = drive(arm, steps, seed,
                                make_plan(steps, intensity, seed))
                overall = float(run["overall"])
                retained = (overall / clean_overall
                            if clean_overall > 1e-9 else math.nan)
                cells[f"{intensity:g}"] = {
                    "overall": overall,
                    "retained": retained,
                    "recovery": recovery_steps(run["series"], steps),
                }
            payload[substrate][arm] = cells
    return payload


def _nanmean(values: List[float]) -> float:
    finite = [v for v in values if not math.isnan(v)]
    return float(np.mean(finite)) if finite else math.nan


def reduce(shards: Sequence[Dict], seeds: Sequence[int] = (),
           steps: int = 500,
           intensities: Sequence[float] = (0.0, 0.3, 0.6)
           ) -> ExperimentTable:
    """Seed-average the resilience sweep into the E13 table."""
    table = ExperimentTable(
        experiment_id="E13",
        title="Resilience under injected faults: performance retained "
              "and recovery time",
        columns=["substrate", "controller", "intensity", "performance",
                 "retained", "recovery_steps"],
        notes=(f"fault window [{WINDOW[0]:g}, {WINDOW[1]:g}] of the run: "
               "component crashes + sensor corruption (+ demand surge on "
               "cloud); 'retained' = overall performance vs the same "
               "controller with no faults; 'recovery_steps' = steps "
               "after the window until smoothed performance regains "
               f"{RECOVERY_FRACTION:.0%} of its pre-fault mean "
               "(nan = not within the run)"))
    for substrate in SUBSTRATES:
        for intensity in intensities:
            key = f"{intensity:g}"
            for arm in ARMS:
                cells = [shard[substrate][arm][key] for shard in shards]
                table.add_row(
                    substrate=substrate, controller=arm,
                    intensity=float(intensity),
                    performance=_nanmean([c["overall"] for c in cells]),
                    retained=_nanmean([c["retained"] for c in cells]),
                    recovery_steps=_nanmean(
                        [c["recovery"] for c in cells]))
    return table


def run(seeds: Sequence[int] = (0, 1, 2), steps: int = 500,
        intensities: Sequence[float] = (0.0, 0.3, 0.6)) -> ExperimentTable:
    """The full sweep, serial (the suite shards it by seed)."""
    return reduce([run_shard(seed, steps=steps, intensities=intensities)
                   for seed in seeds], seeds=seeds, steps=steps,
                  intensities=intensities)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run()])
