"""E16 -- collective self-awareness: cluster goodput under skewed traffic.

PR 9's tentpole claim, made measurable.  The sharded serving cluster of
:mod:`repro.serve.cluster` is driven through its deterministic model
(the ``cluster`` substrate of the :mod:`repro.api` registry) across
traffic tiers, comparing three governance arms over identical request
streams and one shared cluster-wide worker budget:

``collective``
    Every node's *learned* self-model is gossiped
    (:class:`~repro.serve.gossip.NodeSelfView`); each node computes the
    same budget split from the same board and clamps itself to its
    share (:class:`~repro.serve.governor.CollectiveGovernor`), with
    session migration off hot nodes -- the paper's collective
    self-awareness level.
``per_node``
    The same self-aware governor on every node, but isolated: capped at
    the fair static split, no gossip, no migration.  What PR 5 shipped,
    times N.
``static``
    Design-time fixed pools at the fair split; telemetry never
    consulted.

Traffic tiers: ``skewed`` (Zipf session popularity over ring
placement), ``flash`` (a flash crowd multiplying a few sessions'
weight mid-run) and ``uniform`` (the control).

Figures of merit per (tier, arm) cell, scored post-warmup: ``goodput``
(SLO-met completions per tick), ``p95_latency``, ``shed_fraction``,
``mean_pool`` (total provisioned workers), ``migrations`` and
``collective_fraction`` (governor ticks taken on fresh gossip).

The headline acceptance claim -- checked by
``tests/experiments/test_e16.py`` -- is that under skewed traffic the
collective arm sustains at least 1.3x the per-node arm's goodput from
the same worker budget.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from .harness import ExperimentTable

ARMS = ("collective", "per_node", "static")
TIERS = ("skewed", "flash", "uniform")

STEPS = 400

METRIC_KEYS = ("goodput", "p95_latency", "shed_fraction", "mean_pool",
               "slo_attainment", "offered", "migrations",
               "collective_fraction")


def run_shard(seed: int, steps: int = STEPS,
              tiers: Sequence[str] = TIERS
              ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """One seed: arm -> traffic tier -> scored metrics (JSON-safe)."""
    from ..api import ClusterConfig, make_simulator
    payload: Dict[str, Dict[str, Dict[str, float]]] = {}
    for arm in ARMS:
        cells: Dict[str, Dict[str, float]] = {}
        for tier in tiers:
            config = ClusterConfig(steps=steps, seed=seed, governor=arm,
                                   traffic=tier)
            sim = make_simulator("cluster", config)
            sim.run()
            metrics = sim.metrics()
            cells[tier] = {key: float(metrics[key]) for key in METRIC_KEYS}
        payload[arm] = cells
    return payload


def _nanmean(values: List[float]) -> float:
    finite = [v for v in values if not math.isnan(v)]
    return float(np.mean(finite)) if finite else math.nan


def reduce(shards: Sequence[Dict], seeds: Sequence[int] = (),
           steps: int = STEPS,
           tiers: Sequence[str] = TIERS) -> ExperimentTable:
    """Seed-average the cluster sweep into the E16 table."""
    table = ExperimentTable(
        experiment_id="E16",
        title="Collective self-awareness: cluster goodput under skewed "
              "and flash-crowd traffic, three governance arms over one "
              "worker budget",
        columns=["traffic", "arm", "goodput", "p95_latency",
                 "shed_fraction", "mean_pool", "migrations",
                 "collective_fraction"],
        notes=("cluster substrate (repro.serve.cluster): sessions placed "
               "by consistent hash, Zipf/flash popularity, per-node "
               "admission + governor over a shared worker budget; "
               "collective arm = gossiped NodeSelfView -> decentralised "
               "budget split (largest-remainder by believed load) + "
               "measured-rate session migration off hot nodes; per_node "
               "arm = isolated self-aware governors at the fair split; "
               "static arm = design-time fair pools; 'goodput' = SLO-met "
               "completions per tick scored post-warmup"))
    for tier in tiers:
        for arm in ARMS:
            cells = [shard[arm][tier] for shard in shards]
            table.add_row(
                traffic=tier, arm=arm,
                goodput=_nanmean([c["goodput"] for c in cells]),
                p95_latency=_nanmean([c["p95_latency"] for c in cells]),
                shed_fraction=_nanmean([c["shed_fraction"] for c in cells]),
                mean_pool=_nanmean([c["mean_pool"] for c in cells]),
                migrations=_nanmean([c["migrations"] for c in cells]),
                collective_fraction=_nanmean(
                    [c["collective_fraction"] for c in cells]))
    if "skewed" in tiers:
        per_node = _nanmean([s["per_node"]["skewed"]["goodput"]
                             for s in shards])
        collective = _nanmean([s["collective"]["skewed"]["goodput"]
                               for s in shards])
        if per_node > 1e-9:
            table.append_note(
                f"under skewed traffic: collective goodput is "
                f"{collective / per_node:.2f}x the per-node arm's from "
                f"the same worker budget")
    return table


def run(seeds: Sequence[int] = (0, 1, 2), steps: int = STEPS,
        tiers: Sequence[str] = TIERS) -> ExperimentTable:
    """The full sweep, serial (the suite shards it by seed)."""
    return reduce([run_shard(seed, steps=steps, tiers=tiers)
                   for seed in seeds], seeds=seeds, steps=steps, tiers=tiers)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run()])
