"""E11 -- self-explanation: the reasons behind action are made clear.

Paper Sections III and VI (Schubert, Cox): because self-aware systems
hold internal self-models, they can *explain or justify themselves* to
external entities.  This experiment runs the E1 node at two capability
extremes, journals every decision, and measures explanation quality --
coverage (every step explainable), evidence rate (explanations cite the
alternatives considered and predictions made), narrative content -- and
the bookkeeping overhead of keeping the journal at all.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Sequence

import numpy as np

from ..core.levels import CapabilityProfile, SelfAwarenessLevel
from ..core.patterns import build_node, build_static_node
from .e1_levels import (ResourceAllocationEnvironment, _run_one,
                        make_e1_goal, make_e1_sensors)
from .harness import ExperimentTable


def _keywords_present(narrative: str) -> int:
    """Count explanation ingredients present in a narrative."""
    ingredients = ["because", "considered", "utility", "goal"]
    return sum(1 for word in ingredients if word in narrative)


def _profiles():
    return {
        "static": None,
        "goal-aware": CapabilityProfile.up_to(SelfAwarenessLevel.GOAL),
        "full-stack": CapabilityProfile.full_stack(),
    }


def run_shard(seed: int, steps: int = 600) -> Dict[str, List[float]]:
    """One seed's worth of E11: five quality/overhead values per profile."""
    payload: Dict[str, List[float]] = {}
    for name, profile in _profiles().items():
        env = ResourceAllocationEnvironment(seed=seed)
        goal = make_e1_goal()
        sensors = make_e1_sensors(env, np.random.default_rng(600 + seed))
        if profile is None:
            node = build_static_node(name, sensors, action="balanced")
        else:
            node = build_node(name, profile, sensors, goal,
                              rng=np.random.default_rng(700 + seed))
        start = _time.perf_counter()
        _run_one(name, node, env, goal, steps)
        elapsed = _time.perf_counter() - start
        per_step = elapsed / steps

        # Overhead probe: microbenchmark the journalling operations
        # themselves (log + outcome attach) against the measured
        # per-step cost of the whole awareness loop.  Wall-clock
        # A/B of full runs is far too noisy at this scale.
        from ..core.explanation import ExplanationLog
        sample = node.log.last()
        probe = ExplanationLog()
        reps = 2000
        start = _time.perf_counter()
        for _ in range(reps):
            probe.log(sample.decision, sample.actuation)
            probe.attach_outcome(sample.outcome or {})
        journal_cost = (_time.perf_counter() - start) / reps
        overhead = (100.0 * journal_cost / per_step if per_step > 0 else 0.0)

        report = node.log.report()
        payload[name] = [
            report.coverage, report.evidence_rate, report.mean_candidates,
            float(np.mean([_keywords_present(text)
                           for text in node.log.explain_window(20)])),
            overhead]
    return payload


def reduce(shards: Sequence[Dict[str, List[float]]],
           seeds: Sequence[int] = (), steps: int = 600) -> ExperimentTable:
    """Seed-average per-seed payloads into the E11 table."""
    table = ExperimentTable(
        experiment_id="E11",
        title="Self-explanation: coverage, evidence and overhead",
        columns=["profile", "coverage", "evidence_rate", "mean_candidates",
                 "narrative_ingredients", "journal_overhead_pct"],
        notes=("evidence_rate = decisions whose journal entry carries the "
               "considered alternatives and their predicted outcomes; "
               "overhead = measured cost of the journalling operations as "
               "a percentage of the full awareness-loop step time"))
    for name in _profiles():
        values = [shard[name] for shard in shards]
        table.add_row(
            profile=name,
            coverage=float(np.mean([v[0] for v in values])),
            evidence_rate=float(np.mean([v[1] for v in values])),
            mean_candidates=float(np.mean([v[2] for v in values])),
            narrative_ingredients=float(np.mean([v[3] for v in values])),
            journal_overhead_pct=float(np.mean([v[4] for v in values])))
    return table


def run(seeds: Sequence[int] = (0, 1, 2), steps: int = 600) -> ExperimentTable:
    """One row per profile: explanation quality and overhead."""
    return reduce([run_shard(seed, steps=steps) for seed in seeds],
                  seeds=seeds, steps=steps)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run()])
