"""E6 -- cognitive packet networks: QoS under degradation and DoS attack.

Paper Section III ([38], [39]): a self-awareness loop lets network nodes
monitor the effect of using different routes and adapt continuously,
remaining resilient to attack.  Static shortest-path routing, the
self-aware CPN router (Q-routing + smart packets + loss awareness) and
an omniscient oracle face link degradation and a DoS attack on the most
central node.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import networkx as nx
import numpy as np

from ..api import CPNConfig, CPNSimulator
from ..cpn.routing import (CPNRouter, DEFAULT_QOS, DELAY_SENSITIVE,
                           LOSS_SENSITIVE, OracleRouter, StaticRouter)
from ..cpn.sim import Flow, default_flows
from ..cpn.topology import CPNetwork
from .harness import ExperimentTable

#: The DoS attack occupies the middle-late portion of any run length.
ATTACK_START_FRAC = 0.5
ATTACK_END_FRAC = 0.75


def make_scenario(seed: int, n_nodes: int = 30,
                  steps: int = 600) -> CPNetwork:
    """Geometric network + random degradations + DoS on the hub."""
    net = CPNetwork.random_geometric(n=n_nodes, seed=seed)
    net.schedule_random_disturbances(horizon=float(steps), count=6,
                                     duration=steps / 6.0)
    centrality = nx.betweenness_centrality(net.graph)
    victim = max(centrality, key=centrality.get)
    net.launch_attack(victim, start=ATTACK_START_FRAC * steps,
                      duration=(ATTACK_END_FRAC - ATTACK_START_FRAC) * steps,
                      loss_add=0.3)
    return net


ROUTER_NAMES = ("static", "cpn-self-aware", "oracle")


def _router_factories():
    return {
        "static": lambda net, seed: StaticRouter(net),
        "cpn-self-aware": lambda net, seed: CPNRouter(
            net, epsilon=0.2, rng=np.random.default_rng(1000 + seed)),
        "oracle": lambda net, seed: OracleRouter(net),
    }


def run_shard(seed: int, n_nodes: int = 30,
              steps: int = 600) -> Dict[str, List[float]]:
    """One seed's worth of E6: five resilience metrics per router."""
    payload: Dict[str, List[float]] = {}
    attack_start = ATTACK_START_FRAC * steps
    attack_end = ATTACK_END_FRAC * steps
    for name, factory in _router_factories().items():
        net = make_scenario(seed, n_nodes=n_nodes, steps=steps)
        flows = default_flows(net, n_flows=6, seed=seed)
        result = CPNSimulator(CPNConfig(steps=steps), network=net,
                              router=factory(net, seed), flows=flows).run()
        overall = result.delivery_rate()
        attack = result.delivery_rate(attack_start, attack_end)
        pre = result.delivery_rate(0.0, attack_start)
        payload[name] = [overall, result.mean_delay(), attack,
                         result.mean_delay(attack_start, attack_end),
                         max(0.0, pre - attack)]
    return payload


def reduce(shards: Sequence[Dict[str, List[float]]],
           seeds: Sequence[int] = (), n_nodes: int = 30,
           steps: int = 600) -> ExperimentTable:
    """Seed-average per-seed payloads into the E6 table."""
    table = ExperimentTable(
        experiment_id="E6",
        title="CPN routing resilience: delay and delivery under DoS",
        columns=["router", "delivery", "delay", "delivery_attack",
                 "delay_attack", "delivery_drop_under_attack"],
        notes=("attack on the most central node during the middle-late "
               f"window [{ATTACK_START_FRAC:.0%}, {ATTACK_END_FRAC:.0%}] "
               "of the run; 6 random link degradations throughout"))
    for name in ROUTER_NAMES:
        means = np.mean([shard[name] for shard in shards], axis=0)
        table.add_row(router=name, delivery=float(means[0]),
                      delay=float(means[1]), delivery_attack=float(means[2]),
                      delay_attack=float(means[3]),
                      delivery_drop_under_attack=float(means[4]))
    return table


def run(seeds: Sequence[int] = (0, 1, 2), n_nodes: int = 30,
        steps: int = 600) -> ExperimentTable:
    """One row per router, seed-averaged, with attack-window breakdown."""
    return reduce([run_shard(seed, n_nodes=n_nodes, steps=steps)
                   for seed in seeds],
                  seeds=seeds, n_nodes=n_nodes, steps=steps)


def make_theta_network(seed: int = 0) -> CPNetwork:
    """Two parallel paths 0 -> 5: fast-but-lossy vs slow-but-clean.

    The route choice where per-class QoS goals genuinely diverge: the
    2-hop path costs 2 delay units at ~12% loss; the 4-hop detour costs
    6 delay units at ~0.4% loss.
    """
    g = nx.Graph()
    for u, v in ((0, 1), (1, 5)):           # fast, lossy
        g.add_edge(u, v, delay=1.0, loss=0.06)
    for u, v in ((0, 2), (2, 3), (3, 4), (4, 5)):  # slow, clean
        g.add_edge(u, v, delay=1.5, loss=0.001)
    return CPNetwork(g, rng=np.random.default_rng(seed))


def _qos_configs():
    return {
        "class-blind": {"delay-sensitive": DEFAULT_QOS,
                        "loss-sensitive": DEFAULT_QOS},
        "class-aware": {"delay-sensitive": DELAY_SENSITIVE,
                        "loss-sensitive": LOSS_SENSITIVE},
    }


def run_qos_classes_shard(seed: int, steps: int = 500) -> Dict[str, List[float]]:
    """One seed's worth of E6b: [delivery, delay] per 'config|class' key."""
    payload: Dict[str, List[float]] = {}
    for config_name, class_map in _qos_configs().items():
        for label, qos in class_map.items():
            net = make_theta_network(seed)
            router = CPNRouter(net, epsilon=0.2,
                               rng=np.random.default_rng(2000 + seed))
            flows = [Flow(source=0, dest=5, qos=qos)]
            result = CPNSimulator(
                CPNConfig(steps=steps, smart_packets_per_flow=3),
                network=net, router=router, flows=flows).run()
            half = steps / 2.0  # converged half
            payload[f"{config_name}|{label}"] = [
                result.delivery_rate(half, steps),
                result.mean_delay(half, steps)]
    return payload


def reduce_qos_classes(shards: Sequence[Dict[str, List[float]]],
                       seeds: Sequence[int] = (),
                       steps: int = 500) -> ExperimentTable:
    """E6b: per-flow QoS goals over one set of route measurements.

    CPN's claim of "dealing with changing quality of service
    requirements": the same router serves a delay-sensitive and a
    loss-sensitive flow differently, while a class-blind router forces
    one compromise route on both.
    """
    table = ExperimentTable(
        experiment_id="E6b",
        title="CPN per-flow QoS classes (fast-lossy vs slow-clean paths)",
        columns=["router", "traffic_class", "delivery", "delay"],
        notes=("theta topology 0->5: 2-hop path (delay 2, ~12% loss) vs "
               "4-hop path (delay 6, ~0.4% loss); class-aware routing "
               "sends each flow down its own right path"))
    for config_name, class_map in _qos_configs().items():
        for label in class_map:
            key = f"{config_name}|{label}"
            table.add_row(router=config_name, traffic_class=label,
                          delivery=float(np.mean(
                              [shard[key][0] for shard in shards])),
                          delay=float(np.mean(
                              [shard[key][1] for shard in shards])))
    return table


def run_qos_classes(seeds: Sequence[int] = (0, 1, 2),
                    steps: int = 500) -> ExperimentTable:
    """E6b entry point: one row per (router config, traffic class)."""
    return reduce_qos_classes(
        [run_qos_classes_shard(seed, steps=steps) for seed in seeds],
        seeds=seeds, steps=steps)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run(), run_qos_classes()])
