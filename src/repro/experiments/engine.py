"""Parallel seed-sharded execution engine with on-disk result caching.

The experiment suite decomposes naturally into ``(experiment, seed)``
shards: every ``eN_*`` module exposes a picklable
``run_shard(seed, **params)`` returning a JSON-safe payload, and a
``reduce(shards, seeds=..., **params)`` that rebuilds the published
:class:`~repro.experiments.harness.ExperimentTable` objects from the
per-seed payloads.  The engine

1. expands a list of :class:`SuiteJob` descriptions into shard specs,
2. executes them -- in-process for ``jobs=1``, else over a
   ``multiprocessing`` pool (fork start method where available),
3. reduces results back in declaration order, so the output tables are
   byte-identical to a serial run regardless of worker count, and
4. merges worker telemetry (event buffers + metric snapshots shipped
   with each shard result) into the parent
   :class:`~repro.obs.TelemetrySession` in deterministic
   (experiment, seed) order.

A content-keyed shard cache can sit underneath: the key hashes the
experiment name, shard function, seed, parameters and a fingerprint of
every ``src/repro`` source file, so *any* code change invalidates every
cached shard while re-runs of unchanged code are pure disk reads.
Cache entries live as JSON under ``.repro_cache/`` (configurable);
events are deliberately not cached -- replaying a stale event stream
would be misleading and the files would dwarf the payloads -- so cached
shards contribute metrics and step counts but no trace events.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import multiprocessing
import os
import re
import time
import traceback
from dataclasses import dataclass, field
from time import perf_counter
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..obs import TelemetrySession
from .harness import ExperimentTable, format_table

#: Where shard results live unless the caller says otherwise.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Preferred start method: fork keeps imports warm; spawn is the
#: portable fallback (everything shipped between processes is picklable
#: and workers re-import experiment modules by name).
_START_METHOD = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                 else "spawn")


# ---------------------------------------------------------------------------
# Job and shard descriptions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SuiteJob:
    """One experiment entry: which module, which functions, which seeds.

    ``params`` is passed verbatim to ``shard_fn(seed, **params)`` and,
    together with ``seeds=``, to ``reduce_fn(payloads, seeds=seeds,
    **params)`` -- the two signatures are symmetric by convention.
    """

    name: str
    module: str
    shard_fn: str
    reduce_fn: str
    seeds: Tuple[int, ...]
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ShardSpec:
    """One unit of work: a single (experiment, seed) cell."""

    job_name: str
    module: str
    shard_fn: str
    seed: int
    params: Tuple[Tuple[str, Any], ...]
    telemetry: bool = False

    @property
    def kwargs(self) -> Dict[str, Any]:
        """The params as the keyword dict ``shard_fn`` expects."""
        return dict(self.params)


@dataclass
class ShardResult:
    """What a worker ships home for one shard.

    ``payload`` is whatever ``run_shard`` returned (JSON-safe by
    contract); ``events`` and ``metrics`` carry the worker's telemetry
    buffers for the parent session to absorb; ``steps`` is the worker's
    ``steps`` counter total, feeding the per-table step-rate note.
    """

    job_name: str
    seed: int
    payload: Any
    wall: float
    steps: float = 0.0
    events: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    cached: bool = False
    #: Full worker-side traceback text when the shard failed (the
    #: parent decides whether to retry or raise), ``None`` on success.
    error: Optional[str] = None
    #: How many executions this result took (1 = first try).
    attempts: int = 1


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine treats a failing or hanging shard.

    ``max_attempts`` bounds executions per shard (1 = no retry); between
    attempts the engine sleeps ``backoff * 2**(failures-1)`` seconds.
    ``timeout`` is a wall-clock deadline per attempt, measured from when
    the parent starts waiting on the shard; it needs a worker pool to be
    enforceable (an in-process shard cannot be pre-empted) and so is
    ignored at ``jobs=1``.  Deterministic by construction: a retried
    shard re-runs the same seeded code, so a success-after-retry yields
    the byte-identical payload a first-try success would have.
    """

    max_attempts: int = 1
    backoff: float = 0.5
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff < 0:
            raise ValueError("backoff must be non-negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")

    def delay(self, failures: int) -> float:
        """Exponential backoff before retry number ``failures``."""
        return self.backoff * (2.0 ** (failures - 1))


@dataclass
class EngineReport:
    """Tables plus the execution accounting the tests assert against."""

    tables: List[ExperimentTable]
    executed_shards: int = 0
    cached_shards: int = 0
    wall: float = 0.0

    @property
    def total_shards(self) -> int:
        """Every shard the suite needed, however it was satisfied."""
        return self.executed_shards + self.cached_shards


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------

def _execute_shard(spec: ShardSpec) -> ShardResult:
    """Run one shard (module-level so pools can pickle it).

    Always runs inside a fresh :class:`TelemetrySession` when telemetry
    is requested -- including in the ``jobs=1`` in-process path -- so
    serial and parallel runs execute identical code and produce
    identical event streams.
    """
    module = importlib.import_module(spec.module)
    shard_fn = getattr(module, spec.shard_fn)
    start = perf_counter()
    try:
        if spec.telemetry:
            session = TelemetrySession()
            with session:
                payload = shard_fn(spec.seed, **spec.kwargs)
            wall = perf_counter() - start
            return ShardResult(
                spec.job_name, spec.seed, payload, wall,
                steps=session.registry.total("steps"),
                events=[event.as_dict() for event in session.bus.events()],
                metrics=session.registry.snapshot())
        payload = shard_fn(spec.seed, **spec.kwargs)
        return ShardResult(spec.job_name, spec.seed, payload,
                           perf_counter() - start)
    except Exception as exc:
        raise RuntimeError(
            f"shard {spec.job_name!r} seed {spec.seed} "
            f"({spec.module}.{spec.shard_fn}) failed: {exc!r}") from exc


def _execute_shard_safe(spec: ShardSpec) -> ShardResult:
    """:func:`_execute_shard`, but failures come home as data.

    A worker that raised across the pool boundary loses its traceback
    (the parent re-raises only the exception repr).  Capturing
    ``traceback.format_exc()`` into ``ShardResult.error`` instead lets
    the parent print the *worker's* full stack and apply the retry
    policy.
    """
    try:
        return _execute_shard(spec)
    except Exception:
        return ShardResult(spec.job_name, spec.seed, payload=None,
                           wall=0.0, error=traceback.format_exc())


# ---------------------------------------------------------------------------
# Content-keyed cache
# ---------------------------------------------------------------------------

def code_fingerprint(package_root: Optional[str] = None) -> str:
    """SHA-256 over every ``*.py`` file under the repro package.

    Cheap (a few ms), and the coarsest sound invalidation rule: any
    source change anywhere in ``src/repro`` flushes the whole cache.
    Finer per-module tracking would miss cross-module behaviour changes
    (a simulator edit changes every experiment that drives it).
    """
    if package_root is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(package_root)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, package_root).encode())
            digest.update(b"\0")
            with open(path, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\0")
    return digest.hexdigest()


def shard_cache_key(spec: ShardSpec, fingerprint: str) -> str:
    """Deterministic key for one shard under one code state."""
    blob = json.dumps(
        {"experiment": spec.job_name, "module": spec.module,
         "shard_fn": spec.shard_fn, "seed": spec.seed,
         "params": spec.kwargs, "code": fingerprint},
        sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:40]


class ShardCache:
    """JSON shard results on disk, keyed by content (see module docs).

    Layout: ``<root>/<experiment>/<key>.json``.  Writes are atomic
    (temp file + rename) so a crashed run never leaves a torn entry;
    unreadable entries count as misses.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 fingerprint: Optional[str] = None) -> None:
        self.root = root
        self.fingerprint = (fingerprint if fingerprint is not None
                            else code_fingerprint())
        self.hits = 0
        self.misses = 0

    def _path(self, spec: ShardSpec) -> str:
        bucket = re.sub(r"[^A-Za-z0-9._-]", "_", spec.job_name) or "job"
        return os.path.join(self.root, bucket,
                            shard_cache_key(spec, self.fingerprint) + ".json")

    def load(self, spec: ShardSpec) -> Optional[ShardResult]:
        """The cached result for ``spec``, or ``None`` on a miss."""
        path = self._path(spec)
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return ShardResult(
            job_name=spec.job_name, seed=spec.seed,
            payload=record["payload"], wall=float(record.get("wall", 0.0)),
            steps=float(record.get("steps", 0.0)),
            metrics=record.get("metrics", {}), cached=True)

    def store(self, spec: ShardSpec, result: ShardResult) -> None:
        """Persist one executed shard (events deliberately excluded)."""
        path = self._path(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        record = {"experiment": spec.job_name, "seed": spec.seed,
                  "payload": result.payload, "wall": result.wall,
                  "steps": result.steps, "metrics": result.metrics}
        tmp = path + f".tmp{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(record, handle)
        os.replace(tmp, path)


# ---------------------------------------------------------------------------
# Suite execution
# ---------------------------------------------------------------------------

def _as_tables(reduced: Any) -> List[ExperimentTable]:
    """Normalise a reduce result (table or list of tables) to a list."""
    if isinstance(reduced, ExperimentTable):
        return [reduced]
    return list(reduced)


def _run_pending(pending: Sequence[ShardSpec], n_jobs: int,
                 retry: RetryPolicy,
                 progress: Optional[Callable[[str], None]]
                 ) -> Dict[Tuple[str, int], ShardResult]:
    """Execute shards under the retry policy; raise on final failure.

    The error raised for a shard that exhausted its attempts embeds the
    worker's full traceback (or the timeout note), so ``run_all --jobs``
    failures are as debuggable as serial ones.
    """
    results: Dict[Tuple[str, int], ShardResult] = {}

    def _note_retry(spec: ShardSpec, failures: int, error: str) -> None:
        if progress is not None:
            reason = error.strip().splitlines()[-1] if error else "failed"
            progress(f"[retrying {spec.job_name} seed {spec.seed} "
                     f"(attempt {failures} failed: {reason})]")

    def _fail(spec: ShardSpec, attempts: int, error: str) -> None:
        raise RuntimeError(
            f"shard {spec.job_name!r} seed {spec.seed} "
            f"({spec.module}.{spec.shard_fn}) failed after {attempts} "
            f"attempt(s); worker traceback follows:\n{error}")

    if n_jobs <= 1 or len(pending) == 1:
        # In-process: the timeout is unenforceable (nothing can pre-empt
        # the shard), the retry loop still applies.
        for spec in pending:
            for attempt in range(1, retry.max_attempts + 1):
                result = _execute_shard_safe(spec)
                result.attempts = attempt
                if result.error is None:
                    break
                if attempt < retry.max_attempts:
                    _note_retry(spec, attempt, result.error)
                    time.sleep(retry.delay(attempt))
            if result.error is not None:
                _fail(spec, result.attempts, result.error)
            results[(spec.job_name, spec.seed)] = result
        return results

    context = multiprocessing.get_context(_START_METHOD)
    with context.Pool(processes=min(n_jobs, len(pending))) as pool:
        # Submission queue: (spec, attempt number, async handle).
        # Retries append to the tail, so surviving shards keep draining
        # while a flaky one backs off; a worker stuck past its timeout
        # is abandoned (the pool tears it down on exit).
        queue = [(spec, 1, pool.apply_async(_execute_shard_safe, (spec,)))
                 for spec in pending]
        index = 0
        while index < len(queue):
            spec, attempt, handle = queue[index]
            index += 1
            try:
                result = handle.get(retry.timeout)
            except multiprocessing.TimeoutError:
                result = ShardResult(
                    spec.job_name, spec.seed, payload=None, wall=0.0,
                    error=(f"shard timed out after {retry.timeout:.1f}s "
                           f"(attempt {attempt})"))
            if result.error is None:
                result.attempts = attempt
                results[(spec.job_name, spec.seed)] = result
                continue
            if attempt < retry.max_attempts:
                _note_retry(spec, attempt, result.error)
                time.sleep(retry.delay(attempt))
                queue.append((spec, attempt + 1,
                              pool.apply_async(_execute_shard_safe, (spec,))))
                continue
            _fail(spec, attempt, result.error)
    return results


def run_suite(jobs: Sequence[SuiteJob],
              n_jobs: Optional[int] = None,
              cache: bool = False,
              cache_dir: str = DEFAULT_CACHE_DIR,
              telemetry: Optional[TelemetrySession] = None,
              progress: Optional[Callable[[str], None]] = None,
              retry: Optional[RetryPolicy] = None) -> EngineReport:
    """Execute a suite of jobs and reduce them back to tables.

    Parameters
    ----------
    jobs:
        Suite entries, in the order their tables should appear.
    n_jobs:
        Worker count; ``None`` means ``os.cpu_count()``.  ``1`` runs
        shards in-process (no pool), which is also the telemetry-exact
        path: with workers, histograms merge approximately (see
        :class:`~repro.obs.metrics.MergedHistogram`) -- counters,
        gauges, events and the tables themselves are identical either
        way.
    cache:
        When true, satisfy shards from ``cache_dir`` where possible and
        persist freshly executed ones.
    telemetry:
        An *active* :class:`TelemetrySession` to absorb worker event
        buffers and metric snapshots into, in (experiment, seed) order.
    progress:
        Called with one line per finished experiment (run_all wires
        this to stderr).
    retry:
        Per-shard :class:`RetryPolicy` (attempts, exponential backoff,
        wall-clock timeout); default: one attempt, no timeout.  A shard
        that exhausts the policy raises with the worker's full
        traceback.
    """
    n_jobs = n_jobs if n_jobs is not None else (os.cpu_count() or 1)
    retry = retry if retry is not None else RetryPolicy()
    started = perf_counter()
    want_telemetry = telemetry is not None

    specs = [ShardSpec(job_name=job.name, module=job.module,
                       shard_fn=job.shard_fn, seed=seed,
                       params=tuple(sorted(job.params.items())),
                       telemetry=want_telemetry)
             for job in jobs for seed in job.seeds]

    shard_cache = ShardCache(cache_dir) if cache else None
    results: Dict[Tuple[str, int], ShardResult] = {}
    pending: List[ShardSpec] = []
    for spec in specs:
        hit = shard_cache.load(spec) if shard_cache is not None else None
        if hit is not None:
            results[(spec.job_name, spec.seed)] = hit
        else:
            pending.append(spec)

    if pending:
        results.update(_run_pending(pending, n_jobs, retry, progress))
        if shard_cache is not None:
            for spec in pending:
                shard_cache.store(spec, results[(spec.job_name, spec.seed)])

    tables: List[ExperimentTable] = []
    for job in jobs:
        shard_results = [results[(job.name, seed)] for seed in job.seeds]
        module = importlib.import_module(job.module)
        reduce_fn = getattr(module, job.reduce_fn)
        reduce_start = perf_counter()
        job_tables = _as_tables(
            reduce_fn([r.payload for r in shard_results],
                      seeds=job.seeds, **dict(job.params)))
        reduce_wall = perf_counter() - reduce_start
        if telemetry is not None:
            for result in shard_results:
                telemetry.absorb(result.events, result.metrics)
        _stamp_provenance(job_tables, shard_results, reduce_wall,
                          telemetry=want_telemetry)
        tables.extend(job_tables)
        if progress is not None:
            cached_count = sum(1 for r in shard_results if r.cached)
            shard_note = (f"{len(shard_results)} shards"
                          + (f", {cached_count} cached" if cached_count else ""))
            wall = sum(r.wall for r in shard_results) + reduce_wall
            progress(f"[{job.name} done in {wall:.1f}s ({shard_note})]")

    executed = sum(1 for r in results.values() if not r.cached)
    cached = sum(1 for r in results.values() if r.cached)
    return EngineReport(tables=tables, executed_shards=executed,
                        cached_shards=cached, wall=perf_counter() - started)


def _stamp_provenance(tables: Sequence[ExperimentTable],
                      shard_results: Sequence[ShardResult],
                      reduce_wall: float, telemetry: bool) -> None:
    """Append the wall/step-rate note run_with_provenance used to add.

    ``wall`` sums the shard walls (work done, not wall-clock elapsed --
    under a pool the same shards cost the same work, spread over
    workers), so the note stays meaningful at any ``--jobs``.
    """
    wall = sum(r.wall for r in shard_results) + reduce_wall
    steps = sum(r.steps for r in shard_results)
    note = f"wall {wall:.2f}s"
    if telemetry and steps > 0 and wall > 0:
        note += f", {steps:g} steps, {steps / wall:.0f} steps/s [telemetry]"
    cached_count = sum(1 for r in shard_results if r.cached)
    if cached_count:
        note += f" ({cached_count}/{len(shard_results)} shards cached)"
    for table in tables:
        table.append_note(note)


# ---------------------------------------------------------------------------
# Determinism helpers
# ---------------------------------------------------------------------------

#: Note segments the engine (and run_with_provenance) stamp that vary
#: run to run: wall clock, step rate, cache accounting.
_VOLATILE_NOTE = re.compile(r"^wall \d")


def canonical_table_text(table: ExperimentTable) -> str:
    """``format_table`` output with volatile provenance notes removed.

    The determinism guarantee -- serial, parallel and cache-served runs
    agree byte for byte -- covers every row and column but not the
    wall-clock/step-rate note, which honestly varies.  Tests compare
    this canonical form.
    """
    rendered = format_table(table)
    if not table.notes:
        return rendered
    kept = [segment for segment in table.notes.split("; ")
            if not _VOLATILE_NOTE.match(segment)]
    canonical_notes = "; ".join(kept)
    lines = rendered.splitlines()
    # The notes render as the final "note: ..." line format_table appends.
    if lines and lines[-1].startswith("note: "):
        lines = lines[:-1]
        if canonical_notes:
            lines.append(f"note: {canonical_notes}")
    return "\n".join(lines)


def canonical_suite_text(tables: Sequence[ExperimentTable]) -> str:
    """Whole-suite canonical form (tables joined in order)."""
    return "\n\n".join(canonical_table_text(table) for table in tables)
