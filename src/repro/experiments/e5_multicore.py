"""E5 -- run-time mapping on heterogeneous multi-cores (on-the-fly computing).

Paper Section III (Agarwal [16]) and Section V (Platzner [8], Agne [47]):
moving mapping and configuration decisions to run time beats fixing them
at design time.  Governors of increasing awareness manage a big.LITTLE
platform with a thermal envelope under a phase-changing workload; a
second table re-weights the goal toward energy mid-run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from ..multicore.governor import (Governor, OndemandGovernor,
                                  SelfAwareGovernor, StaticGovernor,
                                  make_multicore_goal)
from ..api import MulticoreConfig, MulticoreSimulator
from ..multicore.sim import make_platform, make_workload
from .harness import ExperimentTable

TEMP_CAP = 82.0


def governor_factories(goal) -> Dict[str, Callable[[], Governor]]:
    """The contenders."""
    return {
        "static-max": lambda: StaticGovernor(1.0, 1.0),
        "static-mid": lambda: StaticGovernor(0.75, 0.75),
        "ondemand": lambda: OndemandGovernor(),
        "self-aware": lambda: SelfAwareGovernor(
            goal, rng=np.random.default_rng(0)),
    }


def run_shard(seed: int, steps: int = 1000) -> Dict[str, List[float]]:
    """One seed's worth of E5: six metric values per governor."""
    payload: Dict[str, List[float]] = {}
    eval_goal = make_multicore_goal()
    for name in governor_factories(eval_goal):
        goal = make_multicore_goal()
        governor = governor_factories(goal)[name]()
        result = MulticoreSimulator(MulticoreConfig(steps=steps),
                                    governor=governor,
                                    workload=make_workload(seed=seed),
                                    platform=make_platform()).run()
        payload[name] = [result.mean_utility(eval_goal),
                         result.mean_throughput(), result.mean_energy(),
                         result.mean_queue(),
                         result.thermal_violation_rate(TEMP_CAP),
                         result.throttle_fraction()]
    return payload


def reduce(shards: Sequence[Dict[str, List[float]]],
           seeds: Sequence[int] = (), steps: int = 1000) -> ExperimentTable:
    """Seed-average per-seed payloads into the E5 table."""
    table = ExperimentTable(
        experiment_id="E5",
        title="Heterogeneous multi-core management: run-time vs design-time",
        columns=["governor", "utility", "throughput", "energy", "queue",
                 "thermal_violation_rate", "throttle_fraction"],
        notes=(f"thermal constraint max_temp <= {TEMP_CAP}C; utility is the "
               "throughput/energy/latency goal; violations reported "
               "separately (a high-utility, high-violation policy is not "
               "managing the trade-off)"))
    for name in (list(shards[0]) if shards else []):
        means = np.mean([shard[name] for shard in shards], axis=0)
        table.add_row(governor=name, utility=float(means[0]),
                      throughput=float(means[1]), energy=float(means[2]),
                      queue=float(means[3]),
                      thermal_violation_rate=float(means[4]),
                      throttle_fraction=float(means[5]))
    return table


def run(seeds: Sequence[int] = (0, 1, 2), steps: int = 1000) -> ExperimentTable:
    """One row per governor, seed-averaged."""
    return reduce([run_shard(seed, steps=steps) for seed in seeds],
                  seeds=seeds, steps=steps)


def run_goal_change_shard(seed: int, steps: int = 800) -> Dict[str, List[float]]:
    """One seed's worth of E5b: [energy_before, energy_after] per governor."""
    payload: Dict[str, List[float]] = {}
    half = steps // 2
    for name in ("static-max", "ondemand", "self-aware"):
        goal = make_multicore_goal()
        governor = governor_factories(goal)[name]()

        def on_step(t, goal=goal):
            if int(t) == half:
                goal.set_weights({"throughput": 0.15, "energy": 0.7,
                                  "queue": 0.15})

        result = MulticoreSimulator(MulticoreConfig(steps=steps),
                                    governor=governor,
                                    workload=make_workload(seed=seed),
                                    platform=make_platform(),
                                    on_step=on_step).run()
        energies = [m.energy for m in result.history]
        payload[name] = [float(np.mean(energies[:half])),
                         float(np.mean(energies[half:]))]
    return payload


def reduce_goal_change(shards: Sequence[Dict[str, List[float]]],
                       seeds: Sequence[int] = (),
                       steps: int = 800) -> ExperimentTable:
    """Seed-average per-seed payloads into the E5b table."""
    table = ExperimentTable(
        experiment_id="E5b",
        title="Multi-core governor response to a run-time goal change",
        columns=["governor", "energy_before", "energy_after",
                 "energy_reduction"],
        notes="at t=steps/2 the goal shifts to 0.15 throughput / 0.7 "
              "energy / 0.15 queue; only the goal-reading governor follows")
    for name in ("static-max", "ondemand", "self-aware"):
        energy_before = float(np.mean([shard[name][0] for shard in shards]))
        energy_after = float(np.mean([shard[name][1] for shard in shards]))
        table.add_row(governor=name, energy_before=energy_before,
                      energy_after=energy_after,
                      energy_reduction=1.0 - energy_after / energy_before)
    return table


def run_goal_change(seeds: Sequence[int] = (0, 1),
                    steps: int = 800) -> ExperimentTable:
    """Second table: stakeholders make energy dominant mid-run."""
    return reduce_goal_change(
        [run_goal_change_shard(seed, steps=steps) for seed in seeds],
        seeds=seeds, steps=steps)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run(), run_goal_change()])
