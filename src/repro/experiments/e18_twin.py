"""E18 -- the digital twin is predictive: replay ranks governors like live.

PR 10's tentpole claim, made measurable.  The serving substrate is
driven *live* through an adversarial scenario
(:mod:`repro.envgen.scenario`), its arrival stream is recorded off the
obs event bus by a :class:`~repro.twin.TraceRecorder` -- exactly the
hook a production deployment would use -- and every governor arm is
then re-run *offline* against the recorded trace by a
:class:`~repro.twin.TraceWorkload`.  Three properties are scored:

1. **determinism** -- replaying the same trace with the same seed twice
   yields byte-identical tick records (checked structurally per shard);
2. **conservation** -- the replay offers exactly the requests the
   recorder saw (``twin_offered == trace total_offered``);
3. **prediction** -- the twin ranks the governor arms (by goodput) in
   the same order as the live runs that the trace came from, so a
   candidate tuned on yesterday's traffic can be promoted with
   confidence.

Arms: ``self_aware`` (the adaptive :class:`~repro.serve.governor
.ServeGovernor`), ``static:4`` and ``static:2`` (design-time pools).
The replay configs carry no scenario -- the trace *is* the scenario,
which is the point of the twin.

The headline acceptance claim -- checked by
``tests/experiments/test_e18.py`` -- is ``rank_agreement == 1.0``:
live and twin orderings agree on every seed.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Sequence

import numpy as np

from .harness import ExperimentTable

ARMS = ("self_aware", "static:4", "static:2")

STEPS = 400
SCENARIO = "flash_crowd"

METRIC_KEYS = ("goodput", "p95_latency", "shed_fraction", "mean_pool",
               "offered")


def _rank(goodput: Dict[str, float]) -> List[str]:
    return sorted(goodput, key=lambda arm: (-goodput[arm], arm))


def run_shard(seed: int, steps: int = STEPS,
              scenario: str = SCENARIO) -> Dict[str, object]:
    """One seed: live sweep, record, twin replay sweep (JSON-safe)."""
    from ..api.configs import ServeConfig
    from ..obs.export import TelemetrySession
    from ..serve.simulation import ServingSimulation
    from ..twin import (TraceRecorder, TraceWorkload, evaluate_candidates,
                        parse_candidate)
    warmup = min(ServeConfig().warmup, steps // 5)

    # Live leg: every arm rides the same scenario (same seed => same
    # arrival draws); the reference arm additionally feeds a recorder
    # through the obs event stream, exactly as a deployment would.
    live: Dict[str, Dict[str, float]] = {}
    recorder = TraceRecorder(source=f"e18:{scenario}:seed{seed}")
    for arm in ARMS:
        config = ServeConfig(steps=steps, seed=seed, scenario=scenario,
                             warmup=warmup, **parse_candidate(arm, "serve"))
        sim = ServingSimulation(config)
        if arm == ARMS[0]:
            with TelemetrySession() as session:
                recorder.attach(session.bus)
                sim.run()
                recorder.detach()
        else:
            sim.run()
        metrics = sim.metrics()
        live[arm] = {key: float(metrics[key]) for key in METRIC_KEYS}

    # Twin leg: the same arms against the recorded trace.  Replaying
    # twice checks determinism structurally on every shard.
    workload = TraceWorkload.from_recorder(recorder)
    twin: Dict[str, Dict[str, float]] = {}
    for results in (evaluate_candidates(workload, ARMS, seed=seed,
                                        warmup=warmup),
                    evaluate_candidates(workload, ARMS, seed=seed,
                                        warmup=warmup)):
        replay = {r.candidate: {"goodput": r.goodput,
                                "p95_latency": r.p95_latency,
                                "shed_fraction": r.shed_fraction,
                                "mean_pool": r.mean_pool,
                                "offered": r.offered,
                                "regret": r.regret} for r in results}
        if twin and json.dumps(replay, sort_keys=True) \
                != json.dumps(twin, sort_keys=True):
            raise AssertionError(
                f"twin replay is not deterministic (seed {seed})")
        twin = replay

    live_ranking = _rank({arm: live[arm]["goodput"] for arm in ARMS})
    twin_ranking = _rank({arm: twin[arm]["goodput"] for arm in ARMS})
    return {"live": live, "twin": twin,
            "trace": {"ticks": int(workload.ticks),
                      "total_offered": int(workload.total_offered)},
            "live_ranking": live_ranking,
            "twin_ranking": twin_ranking,
            "rank_agreement": float(live_ranking == twin_ranking)}


def _nanmean(values: List[float]) -> float:
    finite = [v for v in values if not math.isnan(v)]
    return float(np.mean(finite)) if finite else math.nan


def reduce(shards: Sequence[Dict], seeds: Sequence[int] = (),
           steps: int = STEPS, scenario: str = SCENARIO) -> ExperimentTable:
    """Seed-average live vs twin into the E18 table."""
    table = ExperimentTable(
        experiment_id="E18",
        title="Digital twin fidelity: governor arms ranked on trace "
              "replay versus the live runs that produced the trace",
        columns=["arm", "live_goodput", "twin_goodput", "live_rank",
                 "twin_rank", "shed_live", "shed_twin"],
        notes=(f"scenario '{scenario}' drives the live serving substrate; "
               "a TraceRecorder on the obs event bus captures per-tick "
               "arrivals (repro.twin/v1); each arm then replays the trace "
               "via TraceWorkload with recorded counts standing in for "
               "the Poisson draws; every shard double-replays to assert "
               "byte-identical twin metrics; 'rank' = goodput order "
               "(1 = best) on seed 0"))
    ranks_live = {arm: shards[0]["live_ranking"].index(arm) + 1
                  for arm in ARMS}
    ranks_twin = {arm: shards[0]["twin_ranking"].index(arm) + 1
                  for arm in ARMS}
    for arm in ARMS:
        table.add_row(
            arm=arm,
            live_goodput=_nanmean([s["live"][arm]["goodput"]
                                   for s in shards]),
            twin_goodput=_nanmean([s["twin"][arm]["goodput"]
                                   for s in shards]),
            live_rank=float(ranks_live[arm]),
            twin_rank=float(ranks_twin[arm]),
            shed_live=_nanmean([s["live"][arm]["shed_fraction"]
                                for s in shards]),
            shed_twin=_nanmean([s["twin"][arm]["shed_fraction"]
                                for s in shards]))
    agreement = _nanmean([s["rank_agreement"] for s in shards])
    table.append_note(
        f"rank agreement (live ordering == twin ordering): "
        f"{agreement:.2f} over {max(1, len(shards))} seed(s)")
    return table


def run(seeds: Sequence[int] = (0, 1, 2), steps: int = STEPS,
        scenario: str = SCENARIO) -> ExperimentTable:
    """The full sweep, serial (the suite shards it by seed)."""
    return reduce([run_shard(seed, steps=steps, scenario=scenario)
                   for seed in seeds], seeds=seeds, steps=steps,
                  scenario=scenario)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run()])
