"""E12 -- swarm self-adaptation: recognising when to restructure.

Paper Section III (collective robotics, ref [34]): self-awareness lets a
swarm recognise, during operation, situations that require self-adaptive
actions -- in particular intentionally modifying the swarm's structure.
One mission contains two such situations: the event hotspots *shift*
(the structure is aimed at the wrong places) and two robots *die* (the
structure has holes).  Controllers: design-time static formation,
structureless random patrol, and the self-aware swarm (local event
learning + gossip + Voronoi attribution + liveness-aware separation).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from ..api import SwarmSimulator
from ..swarm.robots import (RandomPatrol, SelfAwareSwarm, StaticFormation,
                            SwarmController)
from ..swarm.sim import SwarmMissionConfig
from .harness import ExperimentTable


def controller_factories(n_robots: int) -> Dict[str, Callable[[int], SwarmController]]:
    """The contenders."""
    return {
        "static-formation": lambda seed: StaticFormation(n_robots),
        "random-patrol": lambda seed: RandomPatrol(
            np.random.default_rng(400 + seed)),
        "self-aware": lambda seed: SelfAwareSwarm(
            rng=np.random.default_rng(500 + seed)),
    }


def run_shard(seed: int, steps: int = 800,
              n_robots: int = 9) -> Dict[str, List[float]]:
    """One seed's worth of E12: four detection rates per controller."""
    payload: Dict[str, List[float]] = {}
    for name, factory in controller_factories(n_robots).items():
        config = SwarmMissionConfig(n_robots=n_robots, steps=steps,
                                    seed=seed)
        result = SwarmSimulator(mission_config=config,
                                controller=factory(seed)).run()
        payload[name] = [result.detection_rate(),
                         result.detection_rate(0.0, 0.4 * steps),
                         result.detection_rate(0.45 * steps, 0.7 * steps),
                         result.detection_rate(0.75 * steps, float(steps))]
    return payload


def reduce(shards: Sequence[Dict[str, List[float]]],
           seeds: Sequence[int] = (), steps: int = 800,
           n_robots: int = 9) -> ExperimentTable:
    """Seed-average per-seed payloads into the E12 table."""
    table = ExperimentTable(
        experiment_id="E12",
        title="Swarm structural self-adaptation (event detection rate)",
        columns=["controller", "overall", "initial", "after_shift",
                 "after_failures"],
        notes=("hotspots shift at 40% of the mission; robots 0 and 1 die "
               "at 70%; detection rate = fraction of events witnessed by "
               "some robot"))
    for name in controller_factories(n_robots):
        values = [shard[name] for shard in shards]
        table.add_row(controller=name,
                      overall=float(np.mean([v[0] for v in values])),
                      initial=float(np.mean([v[1] for v in values])),
                      after_shift=float(np.mean([v[2] for v in values])),
                      after_failures=float(np.mean([v[3] for v in values])))
    return table


def run(seeds: Sequence[int] = (0, 1, 2), steps: int = 800,
        n_robots: int = 9) -> ExperimentTable:
    """One row per controller; phase breakdown around shift and failures."""
    return reduce([run_shard(seed, steps=steps, n_robots=n_robots)
                   for seed in seeds],
                  seeds=seeds, steps=steps, n_robots=n_robots)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run()])
