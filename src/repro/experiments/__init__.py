"""The experiment suite: one module per claim (see DESIGN.md index).

Because the reproduced paper is a vision paper with no tables of its
own, each experiment here operationalises one claim from the text; the
tables these modules produce are the repository's evaluation section.

Run everything::

    python -m repro.experiments.run_all

or individual experiments::

    python -m repro.experiments.e1_levels
"""

from . import (ablations, e1_levels, e2_camera, e3_cloud, e4_volunteer,
               e5_multicore, e6_cpn, e7_attention, e8_meta, e9_collective,
               e10_priors, e11_explain, e12_swarm)
from .harness import ExperimentTable, format_table, print_tables

__all__ = [
    "ablations",
    "e1_levels", "e2_camera", "e3_cloud", "e4_volunteer", "e5_multicore",
    "e6_cpn", "e7_attention", "e8_meta", "e9_collective", "e10_priors",
    "e11_explain", "e12_swarm",
    "ExperimentTable", "format_table", "print_tables",
]
