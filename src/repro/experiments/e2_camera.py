"""E2 -- smart cameras learn to be different (heterogeneity pays).

Paper Section II: "a system comprising many self-aware entities may lead
to increased heterogeneity, as the different entities learn to be
different from each other" [13], improving the network's trade-off
between tracking utility and communication.

Three scenarios (cheap communication, expensive communication, and a
run-time price change) are each run with every homogeneous design-time
strategy assignment and with self-aware (bandit-learning) cameras.
Reported per controller: efficiency per scenario, efficiency relative to
the per-scenario best homogeneous assignment, and strategy diversity.
The self-aware network should stay near the per-scenario best everywhere
-- without anyone having known at design time which strategy that is --
while developing non-zero strategy diversity.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..api import CameraSimulator
from ..smartcamera.controller import (FixedStrategyController,
                                      SelfAwareStrategyController)
from ..smartcamera.sim import CameraSimConfig
from ..smartcamera.strategies import ALL_STRATEGIES
from .harness import ExperimentTable

SCENARIOS: Dict[str, Dict] = {
    "cheap_comms": dict(comm_cost_weight=0.003),
    "pricey_comms": dict(comm_cost_weight=0.03),
    "price_change": dict(comm_cost_weight=0.003,
                         comm_weight_breaks=[(None, 0.03)]),  # filled below
}


def _config(scenario: str, seed: int, steps: int) -> CameraSimConfig:
    kwargs = dict(SCENARIOS[scenario])
    if scenario == "price_change":
        kwargs["comm_weight_breaks"] = [(steps / 2.0, 0.03)]
    return CameraSimConfig(
        rows=3, cols=3, n_objects=8, object_speed=0.035,
        detection_rate=0.08, random_placement=True, steps=steps,
        seed=seed, **kwargs)


def run_shard(seed: int, steps: int = 800) -> Dict[str, Dict[str, List[float]]]:
    """One seed's worth of E2: every scenario x controller, JSON-safe."""
    payload: Dict[str, Dict[str, List[float]]] = {}
    for scenario in SCENARIOS:
        per_scenario: Dict[str, List[float]] = {}
        for strategy in ALL_STRATEGIES:
            result = CameraSimulator(
                sim_config=_config(scenario, seed, steps),
                controller_factory=lambda cid, rng, s=strategy:
                    FixedStrategyController(cid, s)).run()
            per_scenario[strategy.value] = [
                result.efficiency(), result.mean_tracking_utility(),
                result.mean_messages()]
        result = CameraSimulator(
            sim_config=_config(scenario, seed, steps),
            controller_factory=lambda cid, rng: SelfAwareStrategyController(
                cid, epsilon=0.05, discount=0.995, rng=rng)).run()
        per_scenario["self-aware"] = [
            result.efficiency(), result.mean_tracking_utility(),
            result.mean_messages(), result.diversity_bits()]
        payload[scenario] = per_scenario
    return payload


def reduce(shards: Sequence[Dict[str, Dict[str, List[float]]]],
           seeds: Sequence[int] = (), steps: int = 800) -> ExperimentTable:
    """Seed-average per-seed payloads into the E2 table."""
    table = ExperimentTable(
        experiment_id="E2",
        title="Learning to be different: camera sociality strategies",
        columns=["controller", "scenario", "efficiency", "vs_best_homog",
                 "tracking", "messages", "diversity_bits"],
        notes=("efficiency = tracking utility - comm price x messages, "
               "at the price in force; vs_best_homog = efficiency / best "
               "homogeneous assignment in that scenario"))
    for scenario in SCENARIOS:
        homogeneous = {
            s.value: [shard[scenario][s.value][0] for shard in shards]
            for s in ALL_STRATEGIES}
        best_value = max(float(np.mean(v)) for v in homogeneous.values())
        for strategy in ALL_STRATEGIES:
            eff = float(np.mean(homogeneous[strategy.value]))
            tracking, messages = np.mean(
                [shard[scenario][strategy.value][1:3] for shard in shards],
                axis=0)
            table.add_row(controller=strategy.value, scenario=scenario,
                          efficiency=eff, vs_best_homog=eff / best_value,
                          tracking=float(tracking), messages=float(messages),
                          diversity_bits=0.0)
        eff = float(np.mean(
            [shard[scenario]["self-aware"][0] for shard in shards]))
        tracking, messages, diversity = np.mean(
            [shard[scenario]["self-aware"][1:4] for shard in shards], axis=0)
        table.add_row(controller="self-aware", scenario=scenario,
                      efficiency=eff, vs_best_homog=eff / best_value,
                      tracking=float(tracking), messages=float(messages),
                      diversity_bits=float(diversity))
    return table


def run(seeds: Sequence[int] = (0, 1, 2), steps: int = 800) -> ExperimentTable:
    """One row per (controller, scenario), seed-averaged."""
    return reduce([run_shard(seed, steps=steps) for seed in seeds],
                  seeds=seeds, steps=steps)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run()])
