"""E1 -- levels-of-self-awareness ablation on a dynamic resource task.

The paper's central hypothesis (Section III): systems that engage in
self-awareness better manage trade-offs between goals at run time in
complex, uncertain, dynamic environments.  Section IV adds that
self-awareness comes in *levels*.  E1 tests both at once: one abstract
resource-allocation task, one node per capability profile on the ladder
(plus a non-self-aware static baseline), same seeds, measured on
trade-off management quality.

The task is constructed so each level has something to contribute:

- the environment has a hidden *storminess* regime that slowly drifts and
  occasionally jumps; which configuration is best depends on it;
- a noisy private ``load`` sensor reflects storminess (stimulus level);
- a peer system sends a cleaner ``storm`` report (interaction level --
  nodes below it never surface the report in their context);
- storminess drifts, so trends anticipate it (time level);
- stakeholders flip the goal weights from performance-heavy to cost-heavy
  mid-run (goal level -- lower profiles optimise the design-time goal
  snapshot);
- late in the run the configuration/outcome mapping is inverted, a
  concept drift only a meta-self-aware node (which monitors its own
  strategy) absorbs quickly.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from ..core.goals import Goal, Objective
from ..core.levels import CapabilityProfile, ladder
from ..core.loop import SimulationClock, Trace, run_control_loop
from ..core.node import SelfAwareNode
from ..core.patterns import build_node, build_static_node
from ..core.sensors import Sensor, SensorSuite
from ..core.spans import private
from ..envgen.processes import BoundedRandomWalk, Shock, ShockSchedule
from ..metrics.tradeoff import tradeoff_summary
from .harness import ExperimentTable

#: The candidate configurations and their per-regime characteristics:
#: (perf in calm, perf in storm, cost).  "lean" is efficient in calm but
#: collapses in storm; "heavy" is robust but expensive; the middles
#: interpolate.  The best configuration rotates across the run's phases:
#: lean (calm, perf-weighted) -> robust (storm shock) -> balanced
#: (stormy era, cost-conscious) -> heavy (after the price flip).
ACTION_TABLE: Dict[str, Tuple[float, float, float]] = {
    "lean": (0.90, 0.15, 0.20),
    "balanced": (0.80, 0.55, 0.35),
    "robust": (0.70, 0.80, 0.50),
    "heavy": (0.65, 0.90, 0.70),
}



class ResourceAllocationEnvironment:
    """The E1 task: pick a configuration under drifting storminess.

    Implements the :class:`repro.core.loop.Environment` protocol plus
    ``peer_reports``.
    """

    def __init__(self, seed: int = 0, goal_change_time: float = 600.0,
                 inversion_time: float = 1100.0,
                 shock_times: Sequence[float] = (300.0, 900.0)) -> None:
        self._rng = np.random.default_rng(seed)
        self.storminess = BoundedRandomWalk(
            mean=0.5, reversion=0.01, sigma=0.03, lo=0.0, hi=1.0,
            start=0.2, rng=self._rng)
        self.shocks = ShockSchedule(
            [Shock(start=t, duration=120.0,
                   magnitude=0.5 if i % 2 == 0 else -0.5)
             for i, t in enumerate(shock_times)])
        self.goal_change_time = goal_change_time
        self.inversion_time = inversion_time
        self._now = 0.0
        # The concept drift at ``inversion_time``: the mapping from
        # configuration to performance is re-drawn (a random non-identity
        # permutation of the perf profiles; costs stay).  Randomising per
        # seed prevents any fixed policy from being right by accident.
        names = list(ACTION_TABLE)
        while True:
            permuted = list(self._rng.permutation(names))
            if permuted != names:
                break
        self._post_drift_perf = {
            name: ACTION_TABLE[src][:2]
            for name, src in zip(names, permuted)}

    def current_storm(self, now: float) -> float:
        """Current effective storminess in [0, 1]."""
        return float(np.clip(self.storminess.current + self.shocks.offset(now),
                             0.0, 1.0))

    def candidate_actions(self, now: float) -> List[str]:
        return list(ACTION_TABLE)

    def sensed_load(self) -> float:
        """What the private load sensor reads (noisy storminess)."""
        return self.current_storm(self._now)

    def peer_reports(self, now: float):
        """An upstream system shares its (cleaner) storm estimate."""
        report = self.current_storm(now) + float(self._rng.normal(0.0, 0.03))
        yield ("upstream", "storm", float(np.clip(report, 0.0, 1.0)))

    def apply(self, action: Hashable, now: float) -> Dict[str, float]:
        self._now = now
        if now >= self.goal_change_time and self.storminess.mean < 0.7:
            # The world itself enters a stormier era alongside the
            # stakeholder change (ongoing change, paper Section II).
            self.storminess.retarget(0.75)
        storm = self.current_storm(now)
        calm_perf, storm_perf, cost = ACTION_TABLE[str(action)]
        if now >= self.inversion_time:
            # Concept drift: the perf profiles a learner internalised are
            # suddenly wrong (e.g. a platform update remapped them).
            calm_perf, storm_perf = self._post_drift_perf[str(action)]
        perf = (1.0 - storm) * calm_perf + storm * storm_perf
        perf += float(self._rng.normal(0.0, 0.03))
        self.storminess.step()
        return {"perf": float(np.clip(perf, 0.0, 1.0)), "cost": cost}


def make_e1_goal() -> Goal:
    """Initial stakeholder goal: performance-weighted."""
    return Goal(
        objectives=[Objective("perf", maximise=True, lo=0.0, hi=1.0),
                    Objective("cost", maximise=False, lo=0.0, hi=1.0)],
        weights={"perf": 0.8, "cost": 0.2},
        name="e1")


def make_e1_sensors(env: ResourceAllocationEnvironment,
                    rng: np.random.Generator) -> SensorSuite:
    """The node's only direct sensor: noisy load."""
    return SensorSuite([
        Sensor(private("load"), env.sensed_load, noise_std=0.08, rng=rng),
    ])


def _run_one(profile_name: str, node: SelfAwareNode,
             env: ResourceAllocationEnvironment, live_goal: Goal,
             steps: int) -> Trace:
    """Drive one node, applying the mid-run stakeholder goal change."""
    clock = SimulationClock()
    trace = Trace(node_name=node.name)
    goal_changed = False
    chunk = 50
    done = 0
    while done < steps:
        n = min(chunk, steps - done)
        if not goal_changed and clock.now + n > env.goal_change_time:
            # Run exactly up to the change point, flip, continue.
            upto = int(env.goal_change_time - clock.now)
            if upto > 0:
                part = run_control_loop(node, env, live_goal, upto, clock)
                trace.steps.extend(part.steps)
                done += upto
            live_goal.set_weights({"perf": 0.45, "cost": 0.55})
            goal_changed = True
            continue
        part = run_control_loop(node, env, live_goal, n, clock)
        trace.steps.extend(part.steps)
        done += n
    return trace


def _variants() -> List[Tuple[str, CapabilityProfile]]:
    """The ablation arms: the static baseline plus every ladder rung."""
    variants: List[Tuple[str, CapabilityProfile]] = [("static", None)]
    variants += [
        ("+".join(lv.name.lower() for lv in profile), profile)
        for profile in ladder()
    ]
    return variants


def run_shard(seed: int, steps: int = 1500) -> Dict[str, Dict[str, float]]:
    """One seed's worth of E1: every variant, as a JSON-safe payload."""
    payload: Dict[str, Dict[str, float]] = {}
    for name, profile in _variants():
        env = ResourceAllocationEnvironment(seed=seed)
        rng = np.random.default_rng(1000 + seed)
        live_goal = make_e1_goal()
        sensors = make_e1_sensors(env, np.random.default_rng(2000 + seed))
        if profile is None:
            # The design-time choice: "lean" wins the calm,
            # perf-weighted conditions the system was tested in.
            node = build_static_node(name, sensors, action="lean")
        else:
            # forgetting=0.98 is the designer's (reasonable, slightly
            # stale) plasticity guess; only the meta profile can
            # notice at run time that its learner has gone stale and
            # switch to a more plastic strategy.
            node = build_node(name, profile, sensors, live_goal,
                              epsilon=0.08, forgetting=0.98, rng=rng)
        trace = _run_one(name, node, env, live_goal, steps)
        change_times = [300.0, 600.0, 900.0, 1100.0]
        summary = dict(tradeoff_summary(trace, live_goal, change_times))
        from ..core.meta import MetaReasoner
        if isinstance(node.reasoner, MetaReasoner):
            summary["switches"] = float(len(node.reasoner.switches))
        payload[name] = summary
    return payload


def reduce(shards: Sequence[Dict[str, Dict[str, float]]],
           seeds: Sequence[int] = (), steps: int = 1500) -> ExperimentTable:
    """Seed-average per-seed payloads into the E1 table."""
    table = ExperimentTable(
        experiment_id="E1",
        title="Levels-of-self-awareness ablation (dynamic resource allocation)",
        columns=["profile", "mean_utility", "worst_phase_utility",
                 "recovered_fraction", "stability", "switches"],
        notes=("change points: shocks @300/@900, goal reweighting @600, "
               "concept inversion @1100; utility measured against the live "
               "stakeholder goal"))
    for name, _profile in _variants():
        summaries = [shard[name] for shard in shards]
        switch_counts = [s["switches"] for s in summaries if "switches" in s]
        table.add_row(
            profile=name,
            mean_utility=float(np.mean([s["mean_utility"] for s in summaries])),
            worst_phase_utility=float(np.mean(
                [s["worst_phase_utility"] for s in summaries])),
            recovered_fraction=float(np.mean(
                [s["recovered_fraction"] for s in summaries])),
            stability=float(np.mean([s["stability"] for s in summaries])),
            switches=float(np.mean(switch_counts)) if switch_counts else 0.0)
    return table


def run(seeds: Sequence[int] = (0, 1, 2, 3, 4),
        steps: int = 1500) -> ExperimentTable:
    """Run the ablation; one row per capability profile, seed-averaged."""
    return reduce([run_shard(seed, steps=steps) for seed in seeds],
                  seeds=seeds, steps=steps)


if __name__ == "__main__":  # pragma: no cover
    from .harness import print_tables
    print_tables([run()])
