"""Digital twin: record live traffic, replay it deterministically.

The twin closes the paper's sense-model-act loop at the system level:
:class:`TraceRecorder` captures what the environment actually offered a
running serve/cluster substrate (via the :mod:`repro.obs` event stream),
and :class:`TraceWorkload` replays that trace tick-for-tick inside the
deterministic simulations, so governor candidates can be scored against
yesterday's real traffic before any of them reaches production.

``python -m repro.twin TRACE`` evaluates a candidate slate against a
recorded trace and reports goodput/p95/regret per candidate.
"""

from .evaluate import (DEFAULT_CANDIDATES, CandidateResult,
                       evaluate_candidates, parse_candidate, rank_candidates,
                       render_table)
from .trace import SCHEMA, TraceRecorder, TraceSchemaError, TraceWorkload

__all__ = [
    "SCHEMA", "TraceRecorder", "TraceSchemaError", "TraceWorkload",
    "CandidateResult", "DEFAULT_CANDIDATES", "evaluate_candidates",
    "parse_candidate", "rank_candidates", "render_table",
]
