"""Twin evaluation: score governor candidates against a recorded trace.

The point of the twin: given yesterday's real arrival trace, run N
governor candidates through the deterministic serving model over the
*identical* request sequence and rank them before any of them touches
production.  :func:`evaluate_candidates` builds one simulation per
candidate with the trace as its workload, runs it, and reports goodput,
p95 latency, shed fraction, mean pool and *regret* -- the goodput gap to
the best candidate on this trace.

Candidate specs are strings, substrate-dependent:

* serve traces: ``"self_aware"`` or ``"static:N"`` (a static pool of
  ``N`` workers; bare ``"static"`` uses the config default);
* cluster traces: ``"collective"``, ``"per_node"`` or ``"static"``.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..api.configs import ClusterConfig, ServeConfig
from .trace import TraceWorkload

#: Default candidate slates per substrate.
DEFAULT_CANDIDATES = {
    "serve": ("self_aware", "static:2", "static:4"),
    "cluster": ("collective", "per_node", "static"),
}


@dataclass(frozen=True)
class CandidateResult:
    """One governor candidate's score on one trace."""

    candidate: str
    goodput: float
    p95_latency: float
    shed_fraction: float
    mean_pool: float
    offered: float
    regret: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"candidate": self.candidate, "goodput": self.goodput,
                "p95_latency": self.p95_latency,
                "shed_fraction": self.shed_fraction,
                "mean_pool": self.mean_pool, "offered": self.offered,
                "regret": self.regret}


def parse_candidate(spec: str, substrate: str) -> Dict[str, Any]:
    """Config overrides for one candidate spec string."""
    spec = spec.strip()
    if substrate == "cluster":
        if spec not in ("collective", "per_node", "static"):
            raise ValueError(
                f"unknown cluster candidate {spec!r}; "
                "known: collective, per_node, static")
        return {"governor": spec}
    if spec == "self_aware":
        return {"governor": "self_aware"}
    if spec == "static":
        return {"governor": "static"}
    if spec.startswith("static:"):
        try:
            workers = int(spec.split(":", 1)[1])
        except ValueError:
            raise ValueError(
                f"bad candidate {spec!r}; static:N needs an integer N") \
                from None
        if workers < 1:
            raise ValueError(f"bad candidate {spec!r}; N must be >= 1")
        return {"governor": "static", "static_workers": workers}
    raise ValueError(
        f"unknown serve candidate {spec!r}; known: self_aware, static, "
        "static:N")


def _build_simulation(workload: TraceWorkload, overrides: Dict[str, Any],
                      *, seed: int, steps: int,
                      config_kwargs: Dict[str, Any]) -> Any:
    from ..serve.cluster import ClusterSimulation
    from ..serve.simulation import ServingSimulation
    merged = dict(config_kwargs)
    merged.update(overrides)
    if workload.substrate == "cluster":
        config = ClusterConfig(steps=steps, seed=seed, **merged)
        return ClusterSimulation(config, workload=workload)
    config = ServeConfig(steps=steps, seed=seed, **merged)
    return ServingSimulation(config, workload=workload)


def evaluate_candidates(workload: TraceWorkload,
                        candidates: Optional[Sequence[str]] = None, *,
                        seed: int = 0, steps: Optional[int] = None,
                        warmup: Optional[int] = None,
                        **config_kwargs: Any) -> List[CandidateResult]:
    """Run every candidate over the trace; results in candidate order.

    ``steps`` defaults to the trace length; ``warmup`` defaults to the
    substrate config's warmup capped at a fifth of the trace, so short
    live recordings still score a non-empty window.  Extra keyword
    arguments are passed through to the substrate config (e.g.
    ``slo_p95=...``, ``per_worker_rate=...``).
    """
    if workload.ticks == 0:
        raise ValueError("trace is empty; nothing to replay")
    if candidates is None:
        candidates = DEFAULT_CANDIDATES.get(
            workload.substrate, DEFAULT_CANDIDATES["serve"])
    if not candidates:
        raise ValueError("need at least one candidate")
    steps = workload.ticks if steps is None else int(steps)
    config_kwargs = dict(config_kwargs)
    if warmup is None:
        default_cls = (ClusterConfig if workload.substrate == "cluster"
                       else ServeConfig)
        default_warmup = dataclasses.fields(default_cls)
        default_warmup = next(f.default for f in default_warmup
                              if f.name == "warmup")
        warmup = min(int(default_warmup), steps // 5)
    config_kwargs["warmup"] = int(warmup)
    results: List[CandidateResult] = []
    for spec in candidates:
        overrides = parse_candidate(spec, workload.substrate)
        sim = _build_simulation(workload, overrides, seed=seed, steps=steps,
                                config_kwargs=config_kwargs)
        sim.run()
        metrics = sim.metrics()
        results.append(CandidateResult(
            candidate=spec,
            goodput=float(metrics["goodput"]),
            p95_latency=float(metrics["p95_latency"]),
            shed_fraction=float(metrics["shed_fraction"]),
            mean_pool=float(metrics["mean_pool"]),
            offered=float(metrics["offered"])))
    best = max((r.goodput for r in results
                if not math.isnan(r.goodput)), default=0.0)
    return [dataclasses.replace(r, regret=best - r.goodput)
            for r in results]


def rank_candidates(results: Sequence[CandidateResult]) -> List[str]:
    """Candidate names best-first (goodput descending, name tie-break)."""
    return [r.candidate
            for r in sorted(results, key=lambda r: (-r.goodput, r.candidate))]


def render_table(results: Sequence[CandidateResult]) -> str:
    """A fixed-width report table, best candidate first."""
    ordered = sorted(results, key=lambda r: (-r.goodput, r.candidate))
    header = (f"{'candidate':<14} {'goodput':>9} {'p95':>8} "
              f"{'shed':>7} {'pool':>7} {'regret':>8}")
    lines = [header, "-" * len(header)]
    for r in ordered:
        lines.append(f"{r.candidate:<14} {r.goodput:>9.3f} "
                     f"{r.p95_latency:>8.2f} {r.shed_fraction:>7.3f} "
                     f"{r.mean_pool:>7.2f} {r.regret:>8.3f}")
    return "\n".join(lines)
