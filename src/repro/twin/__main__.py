"""``python -m repro.twin`` -- evaluate governor candidates on a trace.

Examples::

    python -m repro.twin trace.jsonl
    python -m repro.twin trace.jsonl --candidates self_aware,static:2,static:6
    python -m repro.twin trace.jsonl --json > report.json
"""

from __future__ import annotations

import argparse
import json
import sys

from .evaluate import (DEFAULT_CANDIDATES, evaluate_candidates,
                       rank_candidates, render_table)
from .trace import TraceSchemaError, TraceWorkload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.twin",
        description="Replay a recorded trace against governor candidates "
                    "and rank them by goodput.")
    parser.add_argument("trace", help="path to a repro.twin/v1 JSONL trace")
    parser.add_argument("--candidates", default=None,
                        help="comma-separated candidate specs (default "
                             "depends on the trace's substrate: "
                             f"serve={','.join(DEFAULT_CANDIDATES['serve'])}; "
                             "cluster="
                             f"{','.join(DEFAULT_CANDIDATES['cluster'])})")
    parser.add_argument("--seed", type=int, default=0,
                        help="replay seed (default 0)")
    parser.add_argument("--steps", type=int, default=None,
                        help="replay steps (default: trace length)")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report")
    args = parser.parse_args(argv)

    try:
        workload = TraceWorkload.load(args.trace)
    except TraceSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    candidates = None
    if args.candidates:
        candidates = [c for c in args.candidates.split(",") if c.strip()]
    try:
        results = evaluate_candidates(workload, candidates, seed=args.seed,
                                      steps=args.steps)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ranking = rank_candidates(results)

    if args.json:
        report = {"trace": args.trace,
                  "header": workload.header,
                  "seed": args.seed,
                  "ranking": ranking,
                  "winner": ranking[0],
                  "candidates": [r.as_dict() for r in results]}
        print(json.dumps(report, sort_keys=True))
        return 0

    header = workload.header
    print(f"trace    {args.trace}")
    print(f"schema   {header.get('schema')}  substrate "
          f"{workload.substrate}  ticks {workload.ticks}  "
          f"offered {workload.total_offered}")
    print()
    print(render_table(results))
    print()
    print(f"winner: {ranking[0]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
