"""Trace recording and replay: the digital twin's data plane.

Two halves of one contract:

* :class:`TraceRecorder` subscribes to the :mod:`repro.obs` event bus
  and distils the serve/cluster event stream into per-tick *arrival*
  records -- what the environment offered, before any admission or
  governance touched it.  It understands three event shapes: the
  simulated serving layer's per-tick ``serve.request`` (carries
  ``offered``), the deterministic cluster's ``cluster.tick`` (carries
  ``by_session`` counts), and the live wall-clock server's per-request
  ``serve.request`` (``op``/``t``/``session``), which it buckets into
  fixed-width ticks.

* :class:`TraceWorkload` loads a recorded trace back and replays it
  tick-for-tick inside :class:`~repro.serve.simulation.ServingSimulation`
  or :class:`~repro.serve.cluster.ClusterSimulation`: recorded arrival
  counts replace the Poisson/multinomial draws, so the same trace and
  seed replay byte-identically -- and a governor candidate can be scored
  against yesterday's real traffic before deployment.

Traces are versioned JSON Lines: a header line stamped
``{"schema": "repro.twin/v1", ...}`` followed by one record per tick
(``{"t": k, "offered": n, "by_session": {...}}``).  Loading validates
the schema and raises :class:`TraceSchemaError` with a pointed message
for foreign or corrupt files.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

#: The trace schema this package writes and accepts.
SCHEMA = "repro.twin/v1"

#: Server ops counted as offered work when recording a live server
#: (control-plane ops -- create, stats, snapshot -- are not load).
_WORK_OPS = frozenset(("step", "run"))


class TraceSchemaError(ValueError):
    """A trace file failed schema validation (foreign, corrupt, stale)."""


class TraceRecorder:
    """Distil the obs event stream into a per-tick arrival trace.

    Attach to a bus (``recorder.attach(bus)`` or
    ``obs.events.subscribe(recorder)``); every matching event folds into
    the per-tick ledger.  ``write(path)`` emits the versioned JSONL
    trace; ``header()``/``records()`` expose the same data in-memory for
    the experiment path, which never touches the filesystem.

    Parameters
    ----------
    source:
        Free-form provenance string stamped into the header.
    tick_seconds:
        Bucket width for live wall-clock events.  Simulated events carry
        their own integer ticks and ignore this.
    substrate:
        ``"serve"`` or ``"cluster"``; inferred from the first matching
        event when omitted.
    """

    def __init__(self, *, source: str = "live", tick_seconds: float = 1.0,
                 substrate: Optional[str] = None) -> None:
        if tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")
        self.source = source
        self.tick_seconds = tick_seconds
        self.substrate = substrate
        self.events_seen = 0
        self._offered: Dict[int, int] = {}
        self._by_session: Dict[int, Dict[str, int]] = {}
        self._ok = 0
        self._wall0: Optional[float] = None
        self._bus = None

    # -- subscription ------------------------------------------------------

    def attach(self, bus: Any) -> "TraceRecorder":
        """Subscribe to ``bus`` (kept for symmetric :meth:`detach`)."""
        bus.subscribe(self)
        self._bus = bus
        return self

    def detach(self) -> None:
        """Unsubscribe from the bus :meth:`attach` joined (idempotent)."""
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None

    # -- ingestion ---------------------------------------------------------

    def _note(self, substrate: str, tick: int, count: int,
              session: Optional[str]) -> None:
        if self.substrate is None:
            self.substrate = substrate
        if count <= 0:
            return
        self._offered[tick] = self._offered.get(tick, 0) + count
        if session is not None:
            per = self._by_session.setdefault(tick, {})
            per[str(session)] = per.get(str(session), 0) + count

    def __call__(self, event: Any) -> None:
        """Subscriber interface: fold one event into the ledger."""
        fields = event.fields
        if event.name == "serve.request":
            if "offered" in fields:
                # Simulated serving layer: one event per tick.
                self.events_seen += 1
                self._note("serve", int(fields["time"]),
                           int(fields["offered"]), None)
            elif fields.get("op") in _WORK_OPS and "t" in fields:
                # Live server: one event per request, wall-clock stamped.
                self.events_seen += 1
                now = float(fields["t"])
                if self._wall0 is None:
                    self._wall0 = now
                tick = int((now - self._wall0) / self.tick_seconds)
                self._note("serve", tick, 1, fields.get("session"))
                if fields.get("ok"):
                    self._ok += 1
        elif event.name == "cluster.tick":
            self.events_seen += 1
            tick = int(fields["time"])
            by_session = fields.get("by_session") or {}
            for sid, count in by_session.items():
                self._note("cluster", tick, int(count), str(sid))
            attributed = sum(int(c) for c in by_session.values())
            remainder = int(fields.get("offered", 0)) - attributed
            self._note("cluster", tick, remainder, None)

    # -- output ------------------------------------------------------------

    @property
    def ticks(self) -> int:
        """Ticks covered (max seen tick + 1; 0 when nothing recorded)."""
        return (max(self._offered) + 1) if self._offered else 0

    @property
    def total_offered(self) -> int:
        return sum(self._offered.values())

    @property
    def total_ok(self) -> int:
        """Requests the live server answered ok (0 for simulated feeds)."""
        return self._ok

    def sessions(self) -> List[str]:
        """Every session id seen, sorted (stable replay order)."""
        seen = set()
        for per in self._by_session.values():
            seen.update(per)
        return sorted(seen)

    def header(self) -> Dict[str, Any]:
        """The schema-stamped trace header."""
        return {"schema": SCHEMA,
                "substrate": self.substrate or "serve",
                "source": self.source,
                "tick_seconds": self.tick_seconds,
                "ticks": self.ticks,
                "sessions": self.sessions(),
                "total_offered": self.total_offered,
                "total_ok": self._ok}

    def records(self) -> List[Dict[str, Any]]:
        """Per-tick records in tick order (ticks with zero offered kept)."""
        out = []
        for tick in range(self.ticks):
            record: Dict[str, Any] = {"t": tick,
                                      "offered": self._offered.get(tick, 0)}
            per = self._by_session.get(tick)
            if per:
                record["by_session"] = dict(sorted(per.items()))
            out.append(record)
        return out

    def write(self, path: str) -> int:
        """Write the versioned JSONL trace; returns records written."""
        records = self.records()
        with open(path, "w") as handle:
            handle.write(json.dumps(self.header(), sort_keys=True) + "\n")
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


class TraceWorkload:
    """A recorded trace, replayable tick-for-tick.

    ``offered(t)`` is the recorded arrival count at tick ``t`` (0 past
    the end of the trace); ``session_counts(t, n)`` folds the recorded
    per-session counts onto an ``n``-session population in the trace's
    sorted session order (extra recorded sessions wrap modulo ``n``,
    unattributed arrivals land on session 0).  Simulations consume these
    in place of their Poisson/multinomial draws, which is what makes a
    replay byte-identical for a given ``(trace, seed)``.
    """

    def __init__(self, header: Mapping[str, Any],
                 records: Sequence[Mapping[str, Any]]) -> None:
        self.header = dict(header)
        self.substrate = str(self.header.get("substrate", "serve"))
        self.session_ids: List[str] = list(self.header.get("sessions", ()))
        self._rank = {sid: i for i, sid in enumerate(self.session_ids)}
        ticks = int(self.header.get("ticks", len(records)))
        ticks = max(ticks, len(records))
        self._offered = np.zeros(ticks, dtype=np.int64)
        self._by_session: Dict[int, Dict[str, int]] = {}
        for record in records:
            t = int(record["t"])
            self._offered[t] = int(record["offered"])
            per = record.get("by_session")
            if per:
                self._by_session[t] = {str(k): int(v) for k, v in per.items()}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_recorder(cls, recorder: TraceRecorder) -> "TraceWorkload":
        """The in-memory path: no file round-trip."""
        return cls(recorder.header(), recorder.records())

    @classmethod
    def load(cls, path: str) -> "TraceWorkload":
        """Load and validate a trace file.

        Raises :class:`TraceSchemaError` naming the problem -- not a
        bare decode error -- for foreign files, schema mismatches and
        corrupt records.
        """
        try:
            with open(path) as handle:
                lines = handle.read().splitlines()
        except OSError as exc:
            raise TraceSchemaError(f"cannot read trace {path!r}: {exc}") \
                from None
        lines = [line for line in lines if line.strip()]
        if not lines:
            raise TraceSchemaError(f"{path!r} is empty, not a {SCHEMA} trace")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(
                f"{path!r} line 1 is not JSON ({exc}); "
                f"not a {SCHEMA} trace") from None
        if not isinstance(header, dict) or "schema" not in header:
            raise TraceSchemaError(
                f"{path!r} has no schema stamp; not a {SCHEMA} trace "
                "(is this a telemetry trace? those replay via repro.explain)")
        if header["schema"] != SCHEMA:
            raise TraceSchemaError(
                f"{path!r} is schema {header['schema']!r}; "
                f"this build reads {SCHEMA}")
        records = []
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(
                    f"{path!r} line {lineno}: corrupt record ({exc})") \
                    from None
            if not isinstance(record, dict) or "t" not in record \
                    or "offered" not in record:
                raise TraceSchemaError(
                    f"{path!r} line {lineno}: record needs 't' and "
                    "'offered' fields")
            records.append(record)
        return cls(header, records)

    # -- replay ------------------------------------------------------------

    @property
    def ticks(self) -> int:
        return int(len(self._offered))

    @property
    def total_offered(self) -> int:
        return int(self._offered.sum())

    def offered(self, t: float) -> int:
        """Recorded arrivals at tick ``t`` (0 past the end of the trace)."""
        index = int(t)
        if index < 0 or index >= len(self._offered):
            return 0
        return int(self._offered[index])

    def session_counts(self, t: float, n: int) -> np.ndarray:
        """Per-session arrival counts folded onto ``n`` sessions.

        Recorded sessions map to slots by their sorted rank (wrapping
        modulo ``n`` when the trace saw more sessions than the replay
        has); arrivals the trace could not attribute go to slot 0.
        """
        counts = np.zeros(n, dtype=np.int64)
        index = int(t)
        if index < 0 or index >= len(self._offered):
            return counts
        per = self._by_session.get(index, {})
        attributed = 0
        for sid, count in per.items():
            rank = self._rank.get(sid, 0)
            counts[rank % n] += int(count)
            attributed += int(count)
        counts[0] += int(self._offered[index]) - attributed
        return counts
