"""The elastic service cluster: the plant the autoscalers control.

A time-stepped model of a horizontally scaled service: identical servers
each serve ``capacity_per_server`` requests per step, newly requested
servers take ``boot_delay`` steps to come online (the key friction that
makes *time-awareness* -- anticipating demand -- valuable), and unserved
requests queue in a bounded backlog (overflow is dropped).

Quality of service per step is the fraction of offered work (new demand
plus backlog) actually served; cost is the number of provisioned servers
(booting ones bill too, as in real clouds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..obs import events as obs_events
from ..obs import metrics as obs_metrics


@dataclass(slots=True)
class ClusterMetrics:
    """Telemetry for one step of the cluster."""

    time: float
    demand: float
    served: float
    dropped: float
    backlog: float
    n_active: int
    n_booting: int
    utilisation: float
    qos: float
    cost: float

    def as_dict(self) -> Dict[str, float]:
        """Raw metric vector for goal evaluation."""
        return {
            "demand": self.demand, "served": self.served,
            "dropped": self.dropped, "backlog": self.backlog,
            "n_active": float(self.n_active),
            "n_booting": float(self.n_booting),
            "utilisation": self.utilisation, "qos": self.qos,
            "cost": self.cost,
        }


class ServiceCluster:
    """Elastic pool of identical servers with boot latency.

    Parameters
    ----------
    capacity_per_server:
        Requests one active server serves per step.
    boot_delay:
        Steps between requesting a server and it becoming active.
    min_servers, max_servers:
        Hard scaling bounds.
    backlog_limit:
        Queue bound, in requests; overflow is dropped.
    initial_servers:
        Active servers at t=0.
    cost_per_server:
        Billing per provisioned (active or booting) server-step.
    """

    def __init__(
        self,
        capacity_per_server: float = 10.0,
        boot_delay: int = 5,
        min_servers: int = 1,
        max_servers: int = 40,
        backlog_limit: float = 400.0,
        initial_servers: int = 4,
        cost_per_server: float = 1.0,
    ) -> None:
        if capacity_per_server <= 0:
            raise ValueError("capacity_per_server must be positive")
        if boot_delay < 0:
            raise ValueError("boot_delay must be non-negative")
        if not 1 <= min_servers <= max_servers:
            raise ValueError("need 1 <= min_servers <= max_servers")
        if not min_servers <= initial_servers <= max_servers:
            raise ValueError("initial_servers out of bounds")
        if backlog_limit < 0:
            raise ValueError("backlog_limit must be non-negative")
        self.capacity_per_server = capacity_per_server
        self.boot_delay = boot_delay
        self.min_servers = min_servers
        self.max_servers = max_servers
        self.backlog_limit = backlog_limit
        self.cost_per_server = cost_per_server
        self.n_active = initial_servers
        self._boot_queue: List[int] = []  # remaining boot steps per pending server
        self.backlog = 0.0
        self.total_cost = 0.0
        self.total_dropped = 0.0

    @property
    def n_booting(self) -> int:
        """Servers currently booting."""
        return len(self._boot_queue)

    @property
    def n_provisioned(self) -> int:
        """Active plus booting servers (what the bill is based on)."""
        return self.n_active + self.n_booting

    def request_scale(self, target: int) -> int:
        """Ask for ``target`` provisioned servers; returns the granted target.

        Scaling up enqueues boots; scaling down removes booting servers
        first, then stops active ones immediately.  The target is clamped
        to the configured bounds.
        """
        target = max(self.min_servers, min(self.max_servers, int(target)))
        diff = target - self.n_provisioned
        if diff != 0 and obs_events.enabled():
            obs_metrics.counter("cloud.scaling_actions").increment()
            obs_events.emit("cloud.scale", target=target, change=diff)
        if diff > 0:
            self._boot_queue.extend([self.boot_delay] * diff)
        elif diff < 0:
            to_remove = -diff
            while to_remove > 0 and self._boot_queue:
                self._boot_queue.pop()
                to_remove -= 1
            self.n_active = max(self.min_servers, self.n_active - to_remove)
        return target

    def fail_servers(self, count: int) -> int:
        """Abruptly kill up to ``count`` active servers (fault injection).

        Unlike :meth:`request_scale`, a failure bypasses the lower
        scaling bound -- the pool can drop to zero -- and recovery goes
        through the normal scaling path, paying the full boot delay.
        Returns the number actually killed.
        """
        killed = max(0, min(int(count), self.n_active))
        if killed == 0:
            return 0
        self.n_active -= killed
        if obs_events.enabled():
            obs_metrics.counter("cloud.server_failures").increment(killed)
            obs_events.emit("cloud.fail", killed=killed,
                            n_active=self.n_active)
        return killed

    def step(self, time: float, demand: float) -> ClusterMetrics:
        """Serve one step of ``demand``; returns the step telemetry."""
        if demand < 0:
            raise ValueError("demand must be non-negative")
        # Boot progress (servers requested this step still need full delay).
        matured = 0
        next_queue = []
        for remaining in self._boot_queue:
            if remaining <= 1:
                matured += 1
            else:
                next_queue.append(remaining - 1)
        self._boot_queue = next_queue
        self.n_active = min(self.max_servers, self.n_active + matured)

        offered = demand + self.backlog
        capacity = self.n_active * self.capacity_per_server
        served = min(offered, capacity)
        remainder = offered - served
        dropped = max(0.0, remainder - self.backlog_limit)
        self.backlog = remainder - dropped
        self.total_dropped += dropped

        cost = self.n_provisioned * self.cost_per_server
        self.total_cost += cost
        utilisation = served / capacity if capacity > 0 else 1.0
        qos = served / offered if offered > 0 else 1.0
        if obs_events.enabled():
            obs_metrics.counter("steps", sim="cloud").increment()
            obs_metrics.counter("cloud.dropped_requests").increment(dropped)
            obs_metrics.histogram("cloud.qos").observe(qos)
            obs_metrics.gauge("cloud.active_servers").set(self.n_active)
            obs_events.emit("cloud.step", time=time, demand=demand,
                            served=served, dropped=dropped, qos=qos,
                            n_active=self.n_active, n_booting=self.n_booting)
        return ClusterMetrics(
            time=time, demand=demand, served=served, dropped=dropped,
            backlog=self.backlog, n_active=self.n_active,
            n_booting=self.n_booting, utilisation=utilisation, qos=qos,
            cost=cost)
