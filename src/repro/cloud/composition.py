"""Volunteer service composition under churn (paper refs [14], [15]).

In volunteer clouds, the resources behind a service are donated machines
that come and go, and whose behaviour drifts.  A composer must pick, per
request, which volunteer provider to bind -- with stale information and
no central authority.

Providers have hidden state: a two-state (up/down) Markov availability
chain and a slowly drifting reliability.  What a selector can see is a
*heartbeat*: the provider's up/down state as of up to ``heartbeat_lag``
steps ago.  Selectors:

- :class:`RandomSelector` -- no awareness at all;
- :class:`StaticRankSelector` -- design-time ranking by the reliability
  measured before deployment (goes stale as reliabilities drift);
- :class:`StimulusAwareSelector` -- prefers providers whose (possibly
  stale) heartbeat says "up", random among them;
- :class:`SelfAwareSelector` -- stimulus- *and* time-aware: combines the
  heartbeat with discounted empirical success statistics per provider
  (learning who actually delivers, and forgetting as the world drifts).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence

import numpy as np

from ..envgen.processes import BoundedRandomWalk


class VolunteerProvider:
    """One donated machine offering the service.

    Parameters
    ----------
    provider_id:
        Identifier.
    availability_stay:
        Probability of staying in the current up/down state each step.
    reliability:
        Initial probability a request succeeds while the provider is up;
        drifts as a bounded random walk with ``reliability_sigma``.
    """

    def __init__(self, provider_id: int, availability_stay: float = 0.95,
                 reliability: float = 0.9, reliability_sigma: float = 0.01,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 < availability_stay < 1.0:
            raise ValueError("availability_stay must be in (0, 1)")
        if not 0.0 <= reliability <= 1.0:
            raise ValueError("reliability must be in [0, 1]")
        self.provider_id = provider_id
        self.availability_stay = availability_stay
        self._rng = rng if rng is not None else np.random.default_rng()
        self.up = bool(self._rng.random() < 0.8)
        self._reliability_walk = BoundedRandomWalk(
            mean=reliability, reversion=0.02, sigma=reliability_sigma,
            lo=0.05, hi=0.99, start=reliability, rng=self._rng)
        self.initial_reliability = reliability

    @property
    def reliability(self) -> float:
        """Current (hidden) success probability while up."""
        return self._reliability_walk.current

    def step(self) -> None:
        """Advance availability and reliability one step."""
        if self._rng.random() >= self.availability_stay:
            self.up = not self.up
        self._reliability_walk.step()

    def serve(self) -> bool:
        """Attempt one request; hidden truth decides success."""
        return self.up and (self._rng.random() < self.reliability)


@dataclass
class Heartbeat:
    """What a selector may see about one provider: a possibly stale state."""

    provider_id: int
    up: bool
    age: int


class VolunteerPool:
    """The provider population plus the heartbeat channel."""

    def __init__(self, n_providers: int = 10, heartbeat_lag: int = 5,
                 rng: Optional[np.random.Generator] = None,
                 reliability_spread: float = 0.3) -> None:
        if n_providers < 2:
            raise ValueError("need at least 2 providers")
        if heartbeat_lag < 0:
            raise ValueError("heartbeat_lag must be non-negative")
        self._rng = rng if rng is not None else np.random.default_rng()
        self.heartbeat_lag = heartbeat_lag
        self.providers: List[VolunteerProvider] = []
        for i in range(n_providers):
            rel = float(np.clip(0.9 - reliability_spread * self._rng.random(),
                                0.1, 0.95))
            self.providers.append(VolunteerProvider(
                provider_id=i, reliability=rel,
                rng=np.random.default_rng(self._rng.integers(2 ** 31))))
        self._state_history: Deque[List[bool]] = deque(maxlen=heartbeat_lag + 1)
        self._state_history.append([p.up for p in self.providers])

    def step(self) -> None:
        """Advance all providers and the heartbeat pipeline."""
        for p in self.providers:
            p.step()
        self._state_history.append([p.up for p in self.providers])

    def heartbeats(self) -> List[Heartbeat]:
        """Stale view: provider states as of ``heartbeat_lag`` steps ago."""
        stale = self._state_history[0]
        age = len(self._state_history) - 1
        return [Heartbeat(provider_id=i, up=up, age=age)
                for i, up in enumerate(stale)]

    def __len__(self) -> int:
        return len(self.providers)


class ProviderSelector(ABC):
    """Picks a provider for each request."""

    @abstractmethod
    def select(self, heartbeats: Sequence[Heartbeat]) -> int:
        """Provider id to bind for this request."""

    def feedback(self, provider_id: int, success: bool) -> None:
        """Outcome of the bound request (default: ignored)."""


class RandomSelector(ProviderSelector):
    """Uniform random choice: the no-awareness floor."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()

    def select(self, heartbeats: Sequence[Heartbeat]) -> int:
        return int(self._rng.integers(len(heartbeats)))


class StaticRankSelector(ProviderSelector):
    """Design-time ranking: always the provider measured best pre-deployment."""

    def __init__(self, initial_reliabilities: Sequence[float]) -> None:
        if not initial_reliabilities:
            raise ValueError("need at least one provider")
        self.best = int(np.argmax(initial_reliabilities))

    def select(self, heartbeats: Sequence[Heartbeat]) -> int:
        return self.best


class StimulusAwareSelector(ProviderSelector):
    """Random among providers whose heartbeat reports 'up'.

    Reacts to the current (stale) stimulus but learns nothing.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()

    def select(self, heartbeats: Sequence[Heartbeat]) -> int:
        up = [h.provider_id for h in heartbeats if h.up]
        pool = up if up else [h.provider_id for h in heartbeats]
        return int(pool[self._rng.integers(len(pool))])


class SelfAwareSelector(ProviderSelector):
    """Discounted success statistics combined with the heartbeat stimulus.

    Per provider the selector keeps an exponentially discounted success
    rate *conditioned on the heartbeat having said "up"* (time-awareness
    of drifting reliability, uncontaminated by obvious downtime).
    Selection uses the stimulus first -- restrict to providers whose
    heartbeat reports up -- then picks the one with the best learned
    record, with ε-greedy exploration so knowledge stays current.
    """

    def __init__(self, n_providers: int, epsilon: float = 0.05,
                 discount: float = 0.99,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if not 0.0 < discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        self.epsilon = epsilon
        self.discount = discount
        self._rng = rng if rng is not None else np.random.default_rng()
        self._success = np.full(n_providers, 0.5)
        self._counts = np.zeros(n_providers)
        self._last_seen_up: Optional[bool] = None

    def select(self, heartbeats: Sequence[Heartbeat]) -> int:
        up = [h.provider_id for h in heartbeats if h.up]
        pool = up if up else [h.provider_id for h in heartbeats]
        if self._rng.random() < self.epsilon:
            choice = int(pool[self._rng.integers(len(pool))])
        else:
            choice = int(max(pool, key=lambda pid: self._success[pid]))
        self._last_seen_up = choice in up
        return choice

    def feedback(self, provider_id: int, success: bool) -> None:
        self._counts *= self.discount
        self._counts[provider_id] += 1.0
        step = 1.0 / self._counts[provider_id]
        self._success[provider_id] += step * (float(success)
                                              - self._success[provider_id])


@dataclass
class CompositionResult:
    """Outcome of one composition run."""

    successes: int
    requests: int
    success_by_window: List[float]

    @property
    def success_rate(self) -> float:
        """Overall request success fraction."""
        return self.successes / self.requests if self.requests else math.nan


def run_composition(selector: ProviderSelector, pool: VolunteerPool,
                    steps: int = 2000, window: int = 200) -> CompositionResult:
    """Drive one selector against a pool for ``steps`` requests."""
    successes = 0
    window_hits: List[int] = []
    success_by_window: List[float] = []
    for t in range(steps):
        pool.step()
        choice = selector.select(pool.heartbeats())
        ok = pool.providers[choice].serve()
        selector.feedback(choice, ok)
        successes += int(ok)
        window_hits.append(int(ok))
        if len(window_hits) == window:
            success_by_window.append(sum(window_hits) / window)
            window_hits = []
    return CompositionResult(successes=successes, requests=steps,
                             success_by_window=success_by_window)
