"""Autoscalers: design-time, reactive and self-aware cluster controllers.

The cloud case study (paper refs [56], [58]) asks a controller to balance
quality of service against provisioning cost as the workload changes.
Four controllers of increasing awareness:

- :class:`StaticScaler` -- a fixed size chosen at design time;
- :class:`ReactiveScaler` -- threshold rules on current utilisation
  (stimulus-awareness only; the way production rule-based autoscalers
  work);
- :class:`SelfAwareScaler` -- time-aware (forecasts demand over the boot
  horizon), goal-aware (reads a live, reweightable QoS/cost goal) and
  self-model-based (learns its own per-server capacity from telemetry
  rather than trusting a spec sheet);
- :class:`OracleScaler` -- knows future demand exactly (upper bound).

All share ``decide(time, metrics) -> target servers``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:
    from ..faults.injector import FaultInjector

from ..core.goals import Goal, Objective
from ..learning.forecast import Forecaster, HoltForecaster
from .cluster import ClusterMetrics


def make_cloud_goal(qos_weight: float = 0.7, cost_weight: float = 0.3,
                    max_servers: int = 40) -> Goal:
    """The standard QoS-vs-cost goal used across the cloud experiments."""
    return Goal(
        objectives=[
            Objective("qos", maximise=True, lo=0.0, hi=1.0),
            Objective("cost", maximise=False, lo=0.0, hi=float(max_servers)),
        ],
        weights={"qos": qos_weight, "cost": cost_weight},
        name="cloud")


class Autoscaler(ABC):
    """Chooses a provisioning target each step from cluster telemetry."""

    @abstractmethod
    def decide(self, time: float, metrics: Optional[ClusterMetrics]) -> int:
        """Target number of provisioned servers for the next step."""


class StaticScaler(Autoscaler):
    """Design-time baseline: a fixed cluster size."""

    def __init__(self, n_servers: int) -> None:
        if n_servers < 1:
            raise ValueError("n_servers must be at least 1")
        self.n_servers = n_servers

    def decide(self, time: float, metrics: Optional[ClusterMetrics]) -> int:
        return self.n_servers


class ReactiveScaler(Autoscaler):
    """Rule-based scaler: react to the current utilisation.

    Scale out by ``step`` when utilisation exceeds ``high``; scale in when
    below ``low``; honour a cooldown between actions.  This is the
    threshold pattern of production autoscalers -- stimulus-aware but
    blind to history, futures and the goal structure.
    """

    def __init__(self, high: float = 0.85, low: float = 0.4, step: int = 2,
                 cooldown: int = 3, initial: int = 4) -> None:
        if not 0.0 <= low < high <= 1.0:
            raise ValueError("need 0 <= low < high <= 1")
        if step < 1 or cooldown < 0:
            raise ValueError("invalid step/cooldown")
        self.high = high
        self.low = low
        self.step = step
        self.cooldown = cooldown
        self._target = initial
        self._since_action = cooldown

    def decide(self, time: float, metrics: Optional[ClusterMetrics]) -> int:
        self._since_action += 1
        if metrics is None or self._since_action < self.cooldown:
            return self._target
        if metrics.utilisation > self.high or metrics.backlog > 0:
            self._target = self._target + self.step
            self._since_action = 0
        elif metrics.utilisation < self.low:
            self._target = max(1, self._target - self.step)
            self._since_action = 0
        return self._target


class SelfAwareScaler(Autoscaler):
    """Model-based, forecast-driven, goal-reading autoscaler.

    Each step it:

    1. updates a demand forecaster (time-awareness) and an online estimate
       of the *actual* per-server capacity (a learned self-model -- the
       spec sheet may be wrong, and the experiments exercise that);
    2. forecasts demand ``boot_delay + 1`` steps ahead (capacity ordered
       now arrives then);
    3. evaluates each candidate size against the **live** goal: predicted
       QoS is ``min(1, n * capacity / (forecast + backlog))``, predicted
       cost is ``n``; picks the utility-maximising size (goal-awareness:
       re-weighting the goal at run time immediately shifts the choice).

    Parameters
    ----------
    goal:
        Live QoS/cost goal (see :func:`make_cloud_goal`).
    boot_delay:
        The cluster's boot latency; sets the forecast horizon.
    forecaster:
        Demand forecaster; default Holt (level + trend).
    max_servers:
        Upper bound of the candidate range.
    capacity_guess:
        Initial per-server capacity belief before telemetry arrives.
    headroom:
        Multiplier applied to forecast demand (guard against forecast
        error); 1.0 disables it.
    horizon:
        Steps over which the QoS of a candidate size is projected.  A
        one-step view is myopic about backlog: once a queue has built,
        every single server looks useless against it ("cap / huge load"),
        and a cost-weighted goal then drives the scaler into a
        death-spiral at minimum size.  Projecting offered work and
        capacity over a drain horizon prices backlog recovery correctly.
    """

    def __init__(
        self,
        goal: Goal,
        boot_delay: int = 5,
        forecaster: Optional[Forecaster] = None,
        max_servers: int = 40,
        capacity_guess: float = 10.0,
        headroom: float = 1.1,
        horizon: int = 10,
    ) -> None:
        if capacity_guess <= 0:
            raise ValueError("capacity_guess must be positive")
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        self.goal = goal
        self.boot_delay = boot_delay
        self.forecaster = forecaster if forecaster is not None else HoltForecaster()
        self.max_servers = max_servers
        self.capacity_estimate = capacity_guess
        self.headroom = headroom
        self.horizon = horizon
        self._capacity_samples = 0

    def _learn_capacity(self, metrics: ClusterMetrics) -> None:
        """Refine the per-server capacity self-model from saturated steps.

        Only steps where the cluster ran saturated reveal true capacity
        (unsaturated steps only lower-bound it).
        """
        if metrics.n_active <= 0 or metrics.utilisation < 0.999:
            return
        observed = metrics.served / metrics.n_active
        self._capacity_samples += 1
        step = 1.0 / min(self._capacity_samples, 20)
        self.capacity_estimate += step * (observed - self.capacity_estimate)

    def decide(self, time: float, metrics: Optional[ClusterMetrics]) -> int:
        backlog = 0.0
        if metrics is not None:
            self.forecaster.update(metrics.demand)
            self._learn_capacity(metrics)
            backlog = metrics.backlog
        forecast = self.forecaster.forecast(self.boot_delay + 1)
        if math.isnan(forecast):
            forecast = metrics.demand if metrics is not None else 0.0
        per_step = max(0.0, forecast) * self.headroom
        offered = backlog + self.horizon * per_step

        best_n, best_utility = 1, -math.inf
        for n in range(1, self.max_servers + 1):
            capacity = self.horizon * n * self.capacity_estimate
            qos = 1.0 if offered <= 0 else min(1.0, capacity / offered)
            utility = self.goal.utility({"qos": qos, "cost": float(n)})
            if utility > best_utility + 1e-12:
                best_n, best_utility = n, utility
        return best_n


class OracleScaler(Autoscaler):
    """Upper bound: sizes for the *true* demand ``boot_delay+1`` ahead.

    Requires the experiment to expose the demand function; measures how
    much of the oracle gap the self-aware scaler closes.
    """

    def __init__(self, demand_fn: Callable[[float], float],
                 capacity_per_server: float, boot_delay: int,
                 goal: Goal, max_servers: int = 40, horizon: int = 10) -> None:
        self.demand_fn = demand_fn
        self.capacity = capacity_per_server
        self.boot_delay = boot_delay
        self.goal = goal
        self.max_servers = max_servers
        self.horizon = horizon

    def decide(self, time: float, metrics: Optional[ClusterMetrics]) -> int:
        # Integrate the true demand over the whole decision horizon
        # (capacity ordered now arrives after the boot delay and serves
        # the following steps), and size for the worst step within it so
        # transient peaks do not sink QoS.
        start = time + self.boot_delay + 1
        samples = [max(0.0, self.demand_fn(start + k))
                   for k in range(self.horizon)]
        backlog = metrics.backlog if metrics is not None else 0.0
        offered = backlog + sum(samples)
        peak = max(samples) if samples else 0.0
        best_n, best_utility = 1, -math.inf
        for n in range(1, self.max_servers + 1):
            capacity = self.horizon * n * self.capacity
            mean_qos = 1.0 if offered <= 0 else min(1.0, capacity / offered)
            peak_qos = 1.0 if peak <= 0 else min(1.0, n * self.capacity / peak)
            qos = min(mean_qos, 0.5 + 0.5 * peak_qos)
            utility = self.goal.utility({"qos": qos, "cost": float(n)})
            if utility > best_utility + 1e-12:
                best_n, best_utility = n, utility
        return best_n


def _sensed_metrics(metrics: ClusterMetrics,
                    faults: "FaultInjector") -> Optional[ClusterMetrics]:
    """The telemetry as the scaler perceives it under active faults.

    Sensor dropout loses the whole sample (the scaler sees ``None``,
    exactly as at t=0); sensor noise perturbs the demand and utilisation
    readings.  The true metrics -- what the experiment scores -- are
    untouched.
    """
    if faults.dropped(target="cloud.metrics"):
        return None
    demand = faults.perturb(metrics.demand, target="demand")
    utilisation = faults.perturb(metrics.utilisation, target="utilisation")
    if demand == metrics.demand and utilisation == metrics.utilisation:
        return metrics
    return replace(metrics, demand=max(0.0, demand),
                   utilisation=max(0.0, utilisation))


def run_autoscaling(
    scaler: Autoscaler,
    demand_fn: Callable[[float], float],
    goal: Goal,
    steps: int = 600,
    cluster_kwargs: Optional[Dict] = None,
    faults: Optional["FaultInjector"] = None,
) -> List[ClusterMetrics]:
    """Drive ``scaler`` against a fresh cluster under ``demand_fn``.

    Returns the per-step telemetry; the experiment layer scores it with
    ``goal`` and the trade-off metrics.

    Deprecated shim: the decide/scale/serve loop (and its fault hooks)
    now lives in :class:`repro.api.CloudSimulator`; use that instead.
    """
    import warnings
    warnings.warn(
        "run_autoscaling is deprecated; use repro.api.CloudSimulator",
        DeprecationWarning, stacklevel=2)
    from ..api.adapters import CloudSimulator
    from ..api.configs import CloudConfig
    return CloudSimulator(CloudConfig(steps=steps), scaler=scaler,
                          demand_fn=demand_fn, goal=goal,
                          cluster_kwargs=cluster_kwargs or {},
                          faults=faults).run()
