"""Cloud substrate: elastic autoscaling and volunteer service composition.

Two case studies from the paper's cloud strand: self-aware autoscaling of
an elastic cluster against a QoS/cost goal under changing workloads
(refs [56], [58]; experiment E3), and service composition over churning,
drifting volunteer providers (refs [14], [15]; experiment E4).
"""

from .autoscaler import (Autoscaler, OracleScaler, ReactiveScaler,
                         SelfAwareScaler, StaticScaler, make_cloud_goal,
                         run_autoscaling)
from .cluster import ClusterMetrics, ServiceCluster
from .composition import (CompositionResult, Heartbeat, ProviderSelector,
                          RandomSelector, SelfAwareSelector,
                          StaticRankSelector, StimulusAwareSelector,
                          VolunteerPool, VolunteerProvider, run_composition)

__all__ = [
    "Autoscaler", "OracleScaler", "ReactiveScaler", "SelfAwareScaler",
    "StaticScaler", "make_cloud_goal", "run_autoscaling",
    "ClusterMetrics", "ServiceCluster",
    "CompositionResult", "Heartbeat", "ProviderSelector", "RandomSelector",
    "SelfAwareSelector", "StaticRankSelector", "StimulusAwareSelector",
    "VolunteerPool", "VolunteerProvider", "run_composition",
]
