"""Sensors: how a self-aware node acquires phenomena.

The reference architecture's input side.  A sensor binds a :class:`Scope`
(what the reading is about, and whether it is private or public) to a
callable that produces the current value.  Sensors may be noisy, may fail,
and may carry a sampling cost -- all three matter for the paper's
attention arguments: a resource-constrained node must *choose* what to
sense (see :mod:`repro.core.attention`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from .knowledge import KnowledgeBase
from .spans import Scope


@dataclass
class SensorReading:
    """Result of sampling one sensor once."""

    scope: Scope
    time: float
    value: float
    ok: bool = True

    def is_valid(self) -> bool:
        """Whether the reading succeeded and carries a finite value."""
        return self.ok and math.isfinite(self.value)


class Sensor:
    """A named source of observations about one phenomenon.

    Parameters
    ----------
    scope:
        What the sensor measures and which span it belongs to.
    read_fn:
        Zero-argument callable returning the current true value.
    noise_std:
        Standard deviation of additive Gaussian noise applied to readings.
    failure_rate:
        Probability in ``[0, 1]`` that any given sample fails (returns an
        invalid reading).  Models unreliable volunteer-style resources.
    cost:
        Abstract cost (e.g. energy) of taking one sample; consumed by the
        attention mechanism.
    rng:
        Random generator for noise and failures; a default is created when
        omitted so sensors stay deterministic under a fixed seed.
    """

    def __init__(
        self,
        scope: Scope,
        read_fn: Callable[[], float],
        noise_std: float = 0.0,
        failure_rate: float = 0.0,
        cost: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        if cost < 0:
            raise ValueError("cost must be non-negative")
        self.scope = scope
        self._read_fn = read_fn
        self.noise_std = noise_std
        self.failure_rate = failure_rate
        self.cost = cost
        self._rng = rng if rng is not None else np.random.default_rng()
        self.samples_taken = 0
        self.samples_failed = 0

    def sample(self, time: float) -> SensorReading:
        """Take one sample at ``time``; may fail or be noisy."""
        self.samples_taken += 1
        if self.failure_rate > 0 and self._rng.random() < self.failure_rate:
            self.samples_failed += 1
            return SensorReading(scope=self.scope, time=time, value=math.nan, ok=False)
        value = float(self._read_fn())
        if self.noise_std > 0:
            value += float(self._rng.normal(0.0, self.noise_std))
        return SensorReading(scope=self.scope, time=time, value=value)

    @property
    def observed_failure_rate(self) -> float:
        """Empirical failure fraction over the sensor's lifetime."""
        if self.samples_taken == 0:
            return 0.0
        return self.samples_failed / self.samples_taken


class SensorSuite:
    """The full set of sensors available to one node.

    Provides batched sampling into a :class:`KnowledgeBase` and exposes the
    per-sensor costs that the attention mechanism trades off.
    """

    def __init__(self, sensors: Iterable[Sensor] = ()) -> None:
        self._sensors: Dict[Scope, Sensor] = {}
        for sensor in sensors:
            self.add(sensor)

    def add(self, sensor: Sensor) -> None:
        """Register a sensor; scopes must be unique within a suite."""
        if sensor.scope in self._sensors:
            raise ValueError(f"duplicate sensor for scope {sensor.scope}")
        self._sensors[sensor.scope] = sensor

    def __len__(self) -> int:
        return len(self._sensors)

    def __contains__(self, scope: Scope) -> bool:
        return scope in self._sensors

    def scopes(self) -> List[Scope]:
        """All scopes this suite can observe."""
        return sorted(self._sensors, key=lambda s: s.qualified_name())

    def sensor(self, scope: Scope) -> Sensor:
        """The sensor for ``scope``; raises ``KeyError`` when absent."""
        return self._sensors[scope]

    def total_cost(self, scopes: Optional[Iterable[Scope]] = None) -> float:
        """Summed sampling cost of ``scopes`` (all sensors when ``None``)."""
        if scopes is None:
            scopes = self._sensors.keys()
        return sum(self._sensors[s].cost for s in scopes)

    def sample_into(
        self,
        kb: KnowledgeBase,
        time: float,
        scopes: Optional[Iterable[Scope]] = None,
    ) -> List[SensorReading]:
        """Sample the chosen scopes and record valid readings in ``kb``.

        Returns every reading taken (including failures) so callers can
        account for cost and observe sensor reliability.
        """
        if scopes is None:
            chosen = list(self._sensors.values())
        else:
            chosen = [self._sensors[s] for s in scopes]
        readings = []
        for sensor in chosen:
            reading = sensor.sample(time)
            readings.append(reading)
            if reading.is_valid():
                kb.observe(sensor.scope, time, reading.value)
        return readings
