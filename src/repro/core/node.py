"""The self-aware node: the reference architecture, assembled.

A :class:`SelfAwareNode` wires together the framework's parts in the shape
of the Lewis et al. reference architecture: sensors feed a private/public
knowledge base; self-models and goals inform a reasoner; decisions flow
through guarded actuators (self-expression); everything is journalled for
self-explanation; and -- when the capability profile includes the meta
level -- the reasoner is itself monitored and switchable.

Which knowledge reaches the reasoner is governed by the node's
:class:`~repro.core.levels.CapabilityProfile`:

- ``STIMULUS``  -- current believed values of directly sensed phenomena;
- ``INTERACTION`` -- additionally, scopes concerning other entities;
- ``TIME`` -- additionally, window means and trends per phenomenon
  (simple awareness of history and direction of travel);
- ``GOAL`` -- the reasoner may read the goal structure (utility-based
  deliberation rather than fixed reactions);
- ``META`` -- the reasoner is a :class:`~repro.core.meta.MetaReasoner`
  over a strategy portfolio.

The node is substrate-agnostic: simulators provide the sensors, the
candidate actions and the outcome metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Sequence

from ..obs import events as obs_events
from ..obs.timers import phase_timer
from .actuators import ActuationResult, ExpressionEngine
from .attention import AttentionPolicy, FullAttention
from .explanation import ExplanationLog
from .knowledge import KnowledgeBase
from .levels import CapabilityProfile, SelfAwarenessLevel
from .meta import MetaReasoner
from .reasoner import Decision, Reasoner
from .sensors import SensorSuite
from .spans import Scope


@dataclass
class StepResult:
    """Everything one awareness-loop step produced."""

    time: float
    context: Dict[str, float]
    decision: Decision
    actuation: Optional[ActuationResult]
    sensing_cost: float


class SelfAwareNode:
    """One self-aware entity: sensors, knowledge, reasoning, expression.

    Parameters
    ----------
    name:
        Identifier (used in collectives and explanations).
    profile:
        Which self-awareness levels this node possesses.
    sensors:
        The node's sensor suite.
    reasoner:
        Decision engine; its sophistication should match the profile (the
        builders in :mod:`repro.core.patterns` enforce this pairing).
    expression:
        Actuation engine; optional for nodes whose actions are applied by
        the surrounding simulator.
    attention:
        Attention policy; defaults to attending to everything affordable.
    attention_budget:
        Per-step sensing budget handed to the attention policy.
    trend_window:
        Window length for the time-awareness features.
    history_maxlen:
        Bound on per-scope history retention.
    """

    def __init__(
        self,
        name: str,
        profile: CapabilityProfile,
        sensors: SensorSuite,
        reasoner: Reasoner,
        expression: Optional[ExpressionEngine] = None,
        attention: Optional[AttentionPolicy] = None,
        attention_budget: float = math.inf,
        trend_window: int = 32,
        history_maxlen: int = 512,
    ) -> None:
        self.name = name
        self.profile = profile
        self.sensors = sensors
        self.reasoner = reasoner
        self.expression = expression
        self.attention = attention if attention is not None else FullAttention()
        self.attention_budget = attention_budget
        self.trend_window = trend_window
        self.knowledge = KnowledgeBase(history_maxlen=history_maxlen)
        self.log = ExplanationLog()
        self.total_sensing_cost = 0.0
        self._last_context: Dict[str, float] = {}
        self._last_decision: Optional[Decision] = None

    # -- the awareness loop --------------------------------------------------

    def perceive(self, now: float) -> float:
        """Sample sensors (under attention) into the knowledge base.

        Returns the sensing cost incurred this step.
        """
        scopes = self.attention.select(self.sensors, self.knowledge, now,
                                       self.attention_budget)
        readings = self.sensors.sample_into(self.knowledge, now, scopes)
        cost = sum(self.sensors.sensor(r.scope).cost for r in readings)
        self.total_sensing_cost += cost
        return cost

    def context(self, now: float) -> Dict[str, float]:
        """Build the decision context the capability profile permits."""
        ctx: Dict[str, float] = {}
        for scope in self.knowledge.scopes():
            if scope.is_social() and not self.profile.has(SelfAwarenessLevel.INTERACTION):
                continue
            if not self.profile.has(SelfAwarenessLevel.STIMULUS):
                continue
            value = self.knowledge.value(scope)
            if math.isnan(value):
                continue
            key = scope.name if scope.entity is None else f"{scope.name}@{scope.entity}"
            ctx[key] = value
            if self.profile.has(SelfAwarenessLevel.TIME):
                history = self.knowledge.history(scope)
                if len(history) >= 2:
                    ctx[f"{key}.mean"] = history.mean(self.trend_window)
                    ctx[f"{key}.trend"] = history.trend(self.trend_window)
        return ctx

    def decide(self, now: float, actions: Sequence[Hashable]) -> Decision:
        """Deliberate over ``actions`` using the current context."""
        self._last_context = self.context(now)
        decision = self.reasoner.decide(now, self._last_context, actions)
        self._last_decision = decision
        return decision

    def step(self, now: float, actions: Sequence[Hashable]) -> StepResult:
        """Run one full loop iteration: perceive, decide, express, journal."""
        if obs_events.enabled():
            return self._step_traced(now, actions)
        cost = self.perceive(now)
        decision = self.decide(now, actions)
        actuation = None
        if self.expression is not None:
            actuation = self.expression.express(decision.action, self._last_context)
        self.log.log(decision, actuation)
        return StepResult(time=now, context=dict(self._last_context),
                          decision=decision, actuation=actuation,
                          sensing_cost=cost)

    def _step_traced(self, now: float,
                     actions: Sequence[Hashable]) -> StepResult:
        """The same loop iteration, with per-phase timing and events.

        The sense → model → reason → act phases each feed the
        ``phase_seconds`` histogram; one ``node.step`` event carries the
        durations and one ``node.decision`` event carries the choice, so
        a trace alone reconstructs what the node did and how long each
        awareness phase took.  The phase durations are also journalled
        with the decision: self-explanation reads the same telemetry.
        """
        phases: Dict[str, float] = {}
        with phase_timer("sense", sink=phases, node=self.name):
            cost = self.perceive(now)
        with phase_timer("model", sink=phases, node=self.name):
            self._last_context = self.context(now)
        with phase_timer("reason", sink=phases, node=self.name):
            decision = self.reasoner.decide(now, self._last_context, actions)
            self._last_decision = decision
        actuation = None
        with phase_timer("act", sink=phases, node=self.name):
            if self.expression is not None:
                actuation = self.expression.express(decision.action,
                                                    self._last_context)
        obs_events.emit("node.step", node=self.name, time=now,
                        sensing_cost=cost, **phases)
        obs_events.emit("node.decision", node=self.name, time=now,
                        action=decision.action, explored=decision.explored,
                        vetoed=actuation is not None and not actuation.applied,
                        reason=decision.reason)
        self.log.log(decision, actuation, telemetry=phases)
        return StepResult(time=now, context=dict(self._last_context),
                          decision=decision, actuation=actuation,
                          sensing_cost=cost)

    def feedback(self, outcome: Mapping[str, float],
                 utility: Optional[float] = None) -> None:
        """Close the loop: learn from the outcome of the last decision.

        ``outcome`` holds the raw metrics the last action produced;
        ``utility`` (when supplied) additionally drives the metacognitive
        loop of a meta-self-aware node.
        """
        if self._last_decision is None:
            raise RuntimeError("feedback() before any decision")
        self.reasoner.learn(self._last_context, self._last_decision.action, outcome)
        if self.log.last() is not None:
            self.log.attach_outcome(outcome)
        if utility is not None and isinstance(self.reasoner, MetaReasoner):
            self.reasoner.observe_utility(self._last_decision.time, utility)

    # -- introspection ---------------------------------------------------------

    def explain(self) -> str:
        """Why did I just do what I did? (self-explanation entry point)."""
        base = self.log.explain_last()
        if isinstance(self.reasoner, MetaReasoner):
            return base + " Meta: " + self.reasoner.describe() + "."
        return base

    def describe(self) -> str:
        """One-line self-description (profile + knowledge footprint)."""
        return (f"node '{self.name}': {self.profile.describe()}; "
                f"{len(self.knowledge.scopes())} known scope(s); "
                f"{self.log.total_logged} decision(s) journalled")

    def share_belief(self, scope: Scope) -> Optional[float]:
        """Expose one believed value to peers (public span only).

        Collective self-awareness is built from such exchanges; private
        scopes are withheld by definition of the private span.
        """
        if scope.span.value != "public":
            return None
        value = self.knowledge.value(scope)
        return None if math.isnan(value) else value

    def receive_report(self, from_entity: str, name: str, now: float,
                       value: float) -> None:
        """Ingest a peer's report as social (interaction-span) knowledge.

        Nodes without interaction-awareness still store the report, but
        their context construction will never surface it.
        """
        scope = Scope(name=name, span=self._public_span(), entity=from_entity)
        self.knowledge.observe(scope, now, value)

    @staticmethod
    def _public_span():
        from .spans import Span
        return Span.PUBLIC
