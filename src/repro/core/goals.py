"""Goals, objectives and run-time trade-off management.

The paper's Section I argues that meaningful evaluation of a modern system
is *inherently multi-objective*: stakeholder concerns (performance, cost,
reliability, ...) trade off against each other, and because stakeholders
and environments change, the goal structure itself must be changeable at
run time.  Goal-awareness (level 4) is the system's explicit knowledge of
this structure.

This module provides:

- :class:`Objective` -- one named, directed concern with normalisation.
- :class:`Goal` -- a weighted set of objectives plus hard constraints,
  mutable at run time (weights and constraints can change mid-run, which
  experiments use to model stakeholder change).
- Pareto utilities -- dominance checks and front extraction used both by
  reasoners and by the evaluation metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Objective:
    """A single stakeholder concern.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"throughput"`` or ``"energy"``.
    maximise:
        Direction: ``True`` when larger raw values are better.
    lo, hi:
        Normalisation range.  Raw values are mapped affinely so that the
        *worst* end of the range scores 0 and the *best* end scores 1;
        values outside the range are clipped.  ``lo < hi`` is required.
    """

    name: str
    maximise: bool = True
    lo: float = 0.0
    hi: float = 1.0

    def __post_init__(self) -> None:
        if not self.lo < self.hi:
            raise ValueError(f"objective {self.name}: need lo < hi, got [{self.lo}, {self.hi}]")

    def score(self, raw: float) -> float:
        """Normalised desirability of ``raw`` in ``[0, 1]`` (1 is best)."""
        if math.isnan(raw):
            return 0.0
        clipped = min(max(raw, self.lo), self.hi)
        frac = (clipped - self.lo) / (self.hi - self.lo)
        return frac if self.maximise else 1.0 - frac


@dataclass(frozen=True)
class Constraint:
    """A hard requirement on one raw metric.

    ``kind`` is ``"max"`` (raw must stay at or below ``bound``) or
    ``"min"`` (raw must stay at or above ``bound``).  Violations are
    reported with their magnitude so reasoners can prefer the least-bad
    infeasible option when nothing is feasible.
    """

    metric: str
    kind: str
    bound: float

    def __post_init__(self) -> None:
        if self.kind not in ("max", "min"):
            raise ValueError(f"constraint kind must be 'max' or 'min', got {self.kind!r}")

    def violation(self, raw: float) -> float:
        """Magnitude of violation (0 when satisfied; NaN raw counts as violated)."""
        if math.isnan(raw):
            return math.inf
        if self.kind == "max":
            return max(0.0, raw - self.bound)
        return max(0.0, self.bound - raw)

    def satisfied(self, raw: float) -> bool:
        """Whether ``raw`` meets the constraint."""
        return self.violation(raw) == 0.0


@dataclass
class GoalEvaluation:
    """Outcome of evaluating one candidate metric vector against a goal."""

    utility: float
    scores: Dict[str, float]
    violations: Dict[str, float]

    @property
    def feasible(self) -> bool:
        """Whether every hard constraint was satisfied."""
        return all(v == 0.0 for v in self.violations.values())

    @property
    def total_violation(self) -> float:
        """Summed constraint violation magnitude."""
        return sum(self.violations.values())


class Goal:
    """A run-time mutable, multi-objective goal.

    A goal bundles objectives with weights and hard constraints.  Weights
    may be changed while the system runs (``reweight``), which is how the
    experiments model stakeholders changing their minds after deployment;
    goal-aware systems observe such changes, goal-unaware baselines do not.

    Parameters
    ----------
    objectives:
        The concerns to balance.
    weights:
        Relative importance per objective name.  Defaults to uniform.
        Weights are normalised to sum to 1 at evaluation time.
    constraints:
        Hard requirements checked on raw metric values.
    name:
        Identifier used in explanations.
    """

    def __init__(
        self,
        objectives: Sequence[Objective],
        weights: Optional[Mapping[str, float]] = None,
        constraints: Sequence[Constraint] = (),
        name: str = "goal",
    ) -> None:
        if not objectives:
            raise ValueError("a goal needs at least one objective")
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self.name = name
        self._objectives: Dict[str, Objective] = {o.name: o for o in objectives}
        self._weights: Dict[str, float] = {}
        self._version = -1  # set_weights below bumps this to 0
        self.set_weights(weights if weights is not None else {n: 1.0 for n in names})
        self.constraints: List[Constraint] = list(constraints)

    # -- structure ----------------------------------------------------------

    @property
    def objectives(self) -> List[Objective]:
        """The objectives, in insertion order."""
        return list(self._objectives.values())

    @property
    def objective_names(self) -> List[str]:
        return list(self._objectives)

    @property
    def weights(self) -> Dict[str, float]:
        """Current normalised weights."""
        total = sum(self._weights.values())
        return {n: w / total for n, w in self._weights.items()}

    @property
    def version(self) -> int:
        """Monotone counter bumped on every run-time goal change.

        Goal-aware components compare versions to detect stakeholder
        change; this is the minimal mechanism for "awareness that goals
        themselves changed".
        """
        return self._version

    def set_weights(self, weights: Mapping[str, float]) -> None:
        """Replace the weight vector (keys must match objective names)."""
        unknown = set(weights) - set(self._objectives)
        if unknown:
            raise ValueError(f"weights for unknown objectives: {sorted(unknown)}")
        missing = set(self._objectives) - set(weights)
        if missing:
            raise ValueError(f"missing weights for objectives: {sorted(missing)}")
        if any(w < 0 for w in weights.values()):
            raise ValueError("weights must be non-negative")
        if sum(weights.values()) <= 0:
            raise ValueError("at least one weight must be positive")
        self._weights = dict(weights)
        self._version += 1

    def reweight(self, **changes: float) -> None:
        """Adjust a subset of weights at run time (stakeholder change)."""
        merged = dict(self._weights)
        merged.update(changes)
        self.set_weights(merged)

    def add_constraint(self, constraint: Constraint) -> None:
        """Install a new hard constraint at run time."""
        self.constraints.append(constraint)
        self._version += 1

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, metrics: Mapping[str, float]) -> GoalEvaluation:
        """Evaluate a raw metric vector against this goal.

        ``metrics`` must contain a raw value for every objective; missing
        metrics score 0 (worst), making ignorance costly by construction.
        Constraint metrics may name objectives or any other raw metric.
        """
        scores: Dict[str, float] = {}
        weights = self.weights
        utility = 0.0
        for nm, obj in self._objectives.items():
            raw = metrics.get(nm, math.nan)
            s = obj.score(raw)
            scores[nm] = s
            utility += weights[nm] * s
        # Normalised weights can sum to 1 + O(eps); keep utility in [0, 1].
        utility = min(1.0, max(0.0, utility))
        violations = {
            f"{c.metric}:{c.kind}{c.bound}": c.violation(metrics.get(c.metric, math.nan))
            for c in self.constraints
        }
        return GoalEvaluation(utility=utility, scores=scores, violations=violations)

    def utility(self, metrics: Mapping[str, float]) -> float:
        """Scalar utility of a metric vector (constraints ignored)."""
        return self.evaluate(metrics).utility

    def score_vector(self, metrics: Mapping[str, float]) -> Tuple[float, ...]:
        """Normalised per-objective scores as a tuple (for Pareto analysis)."""
        ev = self.evaluate(metrics)
        return tuple(ev.scores[n] for n in self._objectives)

    def describe(self) -> str:
        """Human-readable goal summary for self-explanation."""
        w = self.weights
        parts = [f"{n} (w={w[n]:.2f}, {'max' if o.maximise else 'min'})"
                 for n, o in self._objectives.items()]
        text = f"goal '{self.name}': " + ", ".join(parts)
        if self.constraints:
            cons = "; ".join(f"{c.metric} {c.kind} {c.bound}" for c in self.constraints)
            text += f" subject to [{cons}]"
        return text


# -- Pareto machinery ----------------------------------------------------------

def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether score vector ``a`` Pareto-dominates ``b`` (maximisation).

    ``a`` dominates ``b`` when it is at least as good in every component
    and strictly better in at least one.
    """
    if len(a) != len(b):
        raise ValueError("score vectors must have equal length")
    at_least_as_good = all(x >= y for x, y in zip(a, b))
    strictly_better = any(x > y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def pareto_front(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated points among ``points`` (maximisation).

    O(n^2) sweep -- candidate sets in run-time reasoning are small.
    Duplicate points are all retained (none dominates its copy).
    """
    front: List[int] = []
    for i, p in enumerate(points):
        dominated = False
        for j, q in enumerate(points):
            if i != j and dominates(q, p):
                dominated = True
                break
        if not dominated:
            front.append(i)
    return front


def knee_point(points: Sequence[Sequence[float]]) -> Optional[int]:
    """Index of the front point closest to the ideal corner (1, 1, ..., 1).

    A standard heuristic for picking a balanced trade-off from a Pareto
    front when no weighting is available.
    Returns ``None`` for an empty input.
    """
    if not points:
        return None
    front = pareto_front(points)
    best_idx = None
    best_dist = math.inf
    for i in front:
        dist = math.sqrt(sum((1.0 - x) ** 2 for x in points[i]))
        if dist < best_dist:
            best_dist = dist
            best_idx = i
    return best_idx
