"""Architectural patterns: assembling nodes along the capability ladder.

The framework deliberately supports both "full-stack" and *minimal*
self-awareness (Section IV).  This module encodes that as constructors:
give it a :class:`~repro.core.levels.CapabilityProfile` and it assembles
a :class:`~repro.core.node.SelfAwareNode` whose knowledge flow, self-
model, goal access and reasoner match the profile:

==============  ==============================================================
Level present   Architectural consequence
==============  ==============================================================
STIMULUS        current sensor beliefs reach the reasoner; a context-free
                empirical self-model is learned from experience
INTERACTION     social (entity-tagged) knowledge enters the context and the
                self-model becomes context-conditioned
TIME            window means and trends enter the context; predictions become
                situation-specific rather than global averages
GOAL            the reasoner reads the *live* goal object, so run-time goal
                changes (reweighting, new constraints) take effect; without
                this level the node optimises a frozen design-time snapshot
META            the reasoner becomes a :class:`~repro.core.meta.MetaReasoner`
                over a stable/plastic strategy portfolio with a drift
                detector on the node's own realised utility
==============  ==============================================================

Experiment E1 walks this ladder and measures trade-off management at each
rung.
"""

from __future__ import annotations

from typing import Hashable, Optional

import numpy as np

from ..learning.drift import PageHinkley
from .actuators import ExpressionEngine
from .attention import AttentionPolicy
from .goals import Goal
from .levels import CapabilityProfile, SelfAwarenessLevel
from .meta import MetaReasoner
from .models import ContextualActionModel, EmpiricalActionModel, PredictiveModel
from .node import SelfAwareNode
from .reasoner import Reasoner, StaticPolicy, UtilityReasoner
from .sensors import SensorSuite


def clone_goal(goal: Goal) -> Goal:
    """Snapshot a goal: same structure, but insulated from future changes.

    This is how goal-*unaware* nodes are built: they optimise the goal as
    it stood at design time and never notice stakeholders changing it.
    """
    return Goal(objectives=goal.objectives, weights=goal.weights,
                constraints=list(goal.constraints),
                name=f"{goal.name}@design-time")


def build_model(profile: CapabilityProfile, forgetting: float = 0.9) -> PredictiveModel:
    """Self-model matching the profile's knowledge sophistication."""
    contextual = (profile.has(SelfAwarenessLevel.INTERACTION)
                  or profile.has(SelfAwarenessLevel.TIME))
    if contextual:
        return ContextualActionModel(forgetting=forgetting)
    return EmpiricalActionModel(forgetting=forgetting)


def build_reasoner(
    profile: CapabilityProfile,
    goal: Goal,
    epsilon: float = 0.1,
    forgetting: float = 0.9,
    rng: Optional[np.random.Generator] = None,
) -> Reasoner:
    """Decision engine matching the profile (see module docstring)."""
    rng = rng if rng is not None else np.random.default_rng()
    reasoner_goal = goal if profile.has(SelfAwarenessLevel.GOAL) else clone_goal(goal)

    def make_utility(model_forgetting: float) -> UtilityReasoner:
        return UtilityReasoner(
            goal=reasoner_goal,
            model=build_model(profile, forgetting=model_forgetting),
            epsilon=epsilon,
            rng=np.random.default_rng(rng.integers(2 ** 31)))

    if not profile.has(SelfAwarenessLevel.META):
        return make_utility(forgetting)

    # Meta-self-aware: a stable and a plastic strategy, plus a drift
    # detector watching the node's own realised utility for collapses.
    return MetaReasoner(
        strategies={
            "stable": make_utility(1.0),
            "plastic": make_utility(0.75),
        },
        initial="stable",
        detector_factory=lambda: PageHinkley(
            delta=0.01, threshold=2.0, direction="decrease"),
        probe_interval=12,
        switch_margin=0.03,
        cooldown=15,
    )


def build_node(
    name: str,
    profile: CapabilityProfile,
    sensors: SensorSuite,
    goal: Goal,
    epsilon: float = 0.1,
    forgetting: float = 0.9,
    expression: Optional[ExpressionEngine] = None,
    attention: Optional[AttentionPolicy] = None,
    attention_budget: float = float("inf"),
    rng: Optional[np.random.Generator] = None,
) -> SelfAwareNode:
    """Assemble a self-aware node for ``profile`` over ``sensors``.

    The returned node's reasoner, model and context construction all match
    the profile; the same call with a larger profile yields a strictly
    more aware system, which is what ablation studies compare.
    """
    reasoner = build_reasoner(profile, goal, epsilon=epsilon,
                              forgetting=forgetting, rng=rng)
    return SelfAwareNode(
        name=name, profile=profile, sensors=sensors, reasoner=reasoner,
        expression=expression, attention=attention,
        attention_budget=attention_budget)


def build_static_node(
    name: str,
    sensors: SensorSuite,
    action: Hashable,
    expression: Optional[ExpressionEngine] = None,
) -> SelfAwareNode:
    """The non-self-aware baseline: fixed behaviour chosen at design time.

    It still *has* sensors (real systems log telemetry) but possesses no
    awareness level at all: nothing it observes influences behaviour.
    """
    return SelfAwareNode(
        name=name, profile=CapabilityProfile.of(), sensors=sensors,
        reasoner=StaticPolicy(action), expression=expression)
