"""Self-explanation: reporting the reasons behind action (or inaction).

Schubert and Cox (Section III) identify self-explanation as a benefit of
self-awareness beyond adaptation: a system with internal self-models can
justify itself to humans and to other systems.  The paper's conclusion
repeats the point: "due to the presence of internal self-models, they can
engage in self-explanation, a form of reporting in which the reasons
behind action (or inaction) are made clear."

This module turns the :class:`~repro.core.reasoner.Decision` records that
reasoners already emit into an audit trail and natural-language accounts:

- :class:`ExplanationLog` -- bounded journal of decisions and actuations.
- :func:`narrate` -- render one decision as text.
- :class:`ExplanationReport` -- coverage/quality statistics consumed by
  experiment E11.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Sequence

from ..obs.events import Event as ObsEvent
from ..obs.events import EventBus
from .actuators import ActuationResult
from .reasoner import Decision


@dataclass
class LoggedStep:
    """One journal entry: a decision and what became of it."""

    decision: Decision
    actuation: Optional[ActuationResult] = None
    outcome: Optional[Dict[str, float]] = None
    #: Phase durations (seconds) measured for this step, when telemetry
    #: was enabled -- self-explanation cites the same measurements the
    #: observability layer records.
    telemetry: Optional[Dict[str, float]] = None
    #: Telemetry events attached to this step (e.g. ``meta.switch``).
    events: List["ObsEvent"] = field(default_factory=list)

    @property
    def acted(self) -> bool:
        """Whether the decision resulted in an applied actuation."""
        return self.actuation is not None and self.actuation.applied


def narrate(step: LoggedStep) -> str:
    """Render a logged step as a human-readable explanation.

    The narrative covers: what was chosen, why (including the evidence
    considered), whether it was exploratory, whether a guard vetoed it,
    and -- when known -- how the outcome compared to the prediction.
    """
    d = step.decision
    lines = [f"At t={d.time:g} I chose action {d.action!r} because {d.reason}."]
    if d.explored:
        lines.append("This was an exploratory choice, made to improve my self-model.")
    if d.considered:
        n = len(d.considered)
        margin = d.margin()
        if math.isfinite(margin):
            lines.append(
                f"I considered {n} candidate actions; the chosen one led the "
                f"runner-up by {margin:.3f} utility.")
        else:
            lines.append(f"I considered {n} candidate action(s).")
    if d.goal_version is not None:
        lines.append(f"My goal structure was at version {d.goal_version}.")
    if step.actuation is not None and not step.actuation.applied:
        lines.append(
            f"I did not act: the actuation was vetoed by {step.actuation.vetoed_by}.")
    if step.outcome is not None and d.action in d.considered:
        predicted = d.considered[d.action]
        shared = [m for m in step.outcome if m in predicted]
        if shared:
            err = sum(abs(step.outcome[m] - predicted[m]) for m in shared) / len(shared)
            lines.append(
                f"The observed outcome deviated from my prediction by "
                f"{err:.3f} on average across {len(shared)} metric(s).")
    if step.telemetry:
        spent = ", ".join(f"{phase} {1e6 * seconds:.0f}us"
                          for phase, seconds in step.telemetry.items())
        lines.append(f"Measured phase timings for this step: {spent}.")
    for event in step.events:
        if event.name == "meta.switch":
            lines.append(
                f"During this step I switched my reasoning strategy from "
                f"'{event.get('from_strategy')}' to "
                f"'{event.get('to_strategy')}' because "
                f"{event.get('reason')}.")
    return " ".join(lines)


@dataclass
class ExplanationReport:
    """Aggregate self-explanation quality over a run (experiment E11)."""

    steps: int
    explained: int
    evidence_backed: int
    exploratory: int
    vetoed: int
    mean_candidates: float

    @property
    def coverage(self) -> float:
        """Fraction of steps for which any explanation exists."""
        return self.explained / self.steps if self.steps else 0.0

    @property
    def evidence_rate(self) -> float:
        """Fraction of steps whose explanation cites considered evidence."""
        return self.evidence_backed / self.steps if self.steps else 0.0


class ExplanationLog:
    """Bounded journal of decisions, actuations and outcomes.

    One log per node.  Logging is append-only and cheap (no narration cost
    until :func:`narrate`/:meth:`report` is called), so the overhead
    measured in E11 is the record-keeping itself.
    """

    def __init__(self, maxlen: int = 4096) -> None:
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self._steps: Deque[LoggedStep] = deque(maxlen=maxlen)
        self.total_logged = 0

    def log(self, decision: Decision,
            actuation: Optional[ActuationResult] = None,
            telemetry: Optional[Mapping[str, float]] = None) -> LoggedStep:
        """Append a decision (and optionally its actuation) to the journal.

        ``telemetry`` carries the step's measured phase durations when
        observability is on; :func:`narrate` cites them.
        """
        step = LoggedStep(decision=decision, actuation=actuation,
                          telemetry=dict(telemetry) if telemetry else None)
        self._steps.append(step)
        self.total_logged += 1
        return step

    def attach_outcome(self, outcome: Mapping[str, float]) -> None:
        """Record the observed outcome of the most recent step."""
        if not self._steps:
            raise IndexError("no logged step to attach an outcome to")
        self._steps[-1].outcome = dict(outcome)

    def attach_event(self, event: ObsEvent) -> None:
        """Attach a telemetry event to the most recent step (no-op when
        empty, so a subscriber may start before the first decision)."""
        if self._steps:
            self._steps[-1].events.append(event)

    def consume(self, bus: EventBus,
                names: Sequence[str] = ("meta.switch",)) -> "ExplanationLog":
        """Subscribe this log to ``bus``: matching events attach to the
        current step.

        This is how self-explanation reads the telemetry stream instead
        of relying on callers to hand it context: a node whose log
        consumes the bus automatically narrates, e.g., the strategy
        switches its meta level performed.  Returns ``self``.
        """
        wanted = frozenset(names)

        def _on_event(event: ObsEvent) -> None:
            if event.name in wanted:
                self.attach_event(event)

        bus.subscribe(_on_event)
        return self

    def __len__(self) -> int:
        return len(self._steps)

    def last(self) -> Optional[LoggedStep]:
        """Most recent step, or ``None`` when empty."""
        return self._steps[-1] if self._steps else None

    def steps(self) -> List[LoggedStep]:
        """All retained steps, oldest first."""
        return list(self._steps)

    def explain_last(self) -> str:
        """Narrate the most recent step ("why did you just do that?")."""
        if not self._steps:
            return "I have not made any decisions yet."
        return narrate(self._steps[-1])

    def explain_window(self, n: int = 5) -> List[str]:
        """Narratives for the last ``n`` steps, oldest first."""
        return [narrate(s) for s in list(self._steps)[-n:]]

    def report(self) -> ExplanationReport:
        """Aggregate explanation-quality statistics over retained steps."""
        steps = list(self._steps)
        explained = sum(1 for s in steps if s.decision.reason)
        evidence = sum(1 for s in steps if s.decision.considered)
        exploratory = sum(1 for s in steps if s.decision.explored)
        vetoed = sum(1 for s in steps
                     if s.actuation is not None and not s.actuation.applied)
        mean_candidates = (sum(len(s.decision.considered) for s in steps) / len(steps)
                           if steps else 0.0)
        return ExplanationReport(
            steps=len(steps), explained=explained, evidence_backed=evidence,
            exploratory=exploratory, vetoed=vetoed,
            mean_candidates=mean_candidates)
