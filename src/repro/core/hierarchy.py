"""Hierarchies of self-aware components (paper refs [62], [63]).

Guang et al. propose building self-organising systems from self-aware
building blocks with *hierarchical agent-based adaptation*: a supervisor
agent whose "substrate" is the set of child agents below it.  The
supervisor does not micro-manage decisions -- children stay autonomous --
it monitors their :mod:`self-assessments <repro.core.assessment>` and
realised performance, and intervenes at the *configuration* level when a
child is struggling:

- **exploration jolt**: a child whose realised utility collapsed is
  probably holding a stale self-model; the supervisor temporarily raises
  its exploration rate so it re-learns, then restores it.  Optionally the
  jolt also *resets the child's self-model* (the metacognitive "your
  knowledge is wrong, start over") -- without that, a count-frozen
  empirical model can be immune to any amount of new evidence;
- **escalation**: children that keep collapsing are reported upward (to
  a human, or to the next supervisor in a deeper hierarchy).

This module keeps the mechanism deliberately small; its value is shown
by the recovery-speed test in ``tests/core/test_hierarchy.py`` and the
pattern composes (a supervisor is itself observable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..learning.drift import PageHinkley
from .meta import MetaReasoner
from .node import SelfAwareNode
from .reasoner import UtilityReasoner


@dataclass
class Intervention:
    """One supervisory action taken on a child."""

    time: float
    child: str
    kind: str
    detail: str


def _find_utility_reasoners(node: SelfAwareNode) -> List[UtilityReasoner]:
    """The tunable reasoners inside a node (unwrapping a meta portfolio)."""
    reasoner = node.reasoner
    if isinstance(reasoner, UtilityReasoner):
        return [reasoner]
    if isinstance(reasoner, MetaReasoner):
        return [s for s in reasoner.strategies.values()
                if isinstance(s, UtilityReasoner)]
    return []


class Supervisor:
    """A self-aware agent whose substrate is a set of child nodes.

    Parameters
    ----------
    children:
        The supervised nodes (they keep full decision autonomy).
    jolt_epsilon:
        Exploration rate imposed on a struggling child.
    jolt_duration:
        Steps a jolt lasts before the child's own rate is restored.
    escalate_after:
        Collapses within one child before the supervisor escalates it.
    reset_models:
        Whether a jolt also calls ``reset()`` on the child's self-models
        (discarding all learned state).  A frozen empirical model holding
        hundreds of stale samples barely moves under new evidence; the
        reset is what makes the jolt curative.
    detector_factory:
        Builds the per-child collapse detector on the utility stream
        (default: Page-Hinkley on decreases).
    """

    def __init__(self, children: List[SelfAwareNode],
                 jolt_epsilon: float = 0.5, jolt_duration: int = 40,
                 escalate_after: int = 3, reset_models: bool = True,
                 detector_factory=None) -> None:
        if not children:
            raise ValueError("a supervisor needs at least one child")
        names = [c.name for c in children]
        if len(set(names)) != len(names):
            raise ValueError("child names must be unique")
        if not 0.0 <= jolt_epsilon <= 1.0:
            raise ValueError("jolt_epsilon must be in [0, 1]")
        if jolt_duration < 1:
            raise ValueError("jolt_duration must be at least 1")
        self.children: Dict[str, SelfAwareNode] = {c.name: c for c in children}
        self.jolt_epsilon = jolt_epsilon
        self.jolt_duration = jolt_duration
        self.escalate_after = escalate_after
        # The default detector tolerates occasional exploration dips
        # (one-step utility drops are normal self-aware behaviour) and
        # fires only on a sustained collapse.
        factory = detector_factory if detector_factory is not None else (
            lambda: PageHinkley(delta=0.08, threshold=4.0,
                                direction="decrease", min_samples=15))
        self._detector_factory = factory
        self._detectors: Dict[str, PageHinkley] = {
            name: factory() for name in self.children}
        self._jolt_remaining: Dict[str, int] = {}
        self._saved_epsilon: Dict[str, List[float]] = {}
        self._collapse_counts: Dict[str, int] = {name: 0
                                                 for name in self.children}
        self.reset_models = reset_models
        self.interventions: List[Intervention] = []
        self.escalations: List[str] = []

    # -- monitoring --------------------------------------------------------

    def observe_child(self, name: str, time: float,
                      utility: float) -> Optional[Intervention]:
        """Feed one child's realised utility; maybe intervene.

        Call once per step per child, after the child's outcome is known.
        Returns the intervention taken, if any.
        """
        if name not in self.children:
            raise KeyError(f"unknown child {name!r}")
        self._tick_jolt(name, time)
        if name in self._jolt_remaining:
            return None  # already being treated
        if self._detectors[name].update(utility):
            return self._jolt(name, time)
        return None

    # -- interventions ---------------------------------------------------------

    def _jolt(self, name: str, time: float) -> Intervention:
        """Raise the child's exploration so it re-learns its world."""
        child = self.children[name]
        reasoners = _find_utility_reasoners(child)
        self._saved_epsilon[name] = [r.epsilon for r in reasoners]
        for reasoner in reasoners:
            reasoner.epsilon = self.jolt_epsilon
            if self.reset_models:
                reasoner.model.reset()
        self._jolt_remaining[name] = self.jolt_duration
        self._collapse_counts[name] += 1
        kind = "exploration-jolt"
        detail = (f"utility collapse detected; epsilon -> "
                  f"{self.jolt_epsilon} for {self.jolt_duration} steps"
                  f"{', self-model reset' if self.reset_models else ''} "
                  f"(collapse #{self._collapse_counts[name]})")
        intervention = Intervention(time=time, child=name, kind=kind,
                                    detail=detail)
        self.interventions.append(intervention)
        if self._collapse_counts[name] >= self.escalate_after and \
                name not in self.escalations:
            self.escalations.append(name)
            self.interventions.append(Intervention(
                time=time, child=name, kind="escalation",
                detail=f"{self._collapse_counts[name]} collapses; "
                       "reporting upward"))
        return intervention

    def _tick_jolt(self, name: str, time: float) -> None:
        if name not in self._jolt_remaining:
            return
        self._jolt_remaining[name] -= 1
        if self._jolt_remaining[name] > 0:
            return
        # Restore the child's own exploration rate and reset its detector
        # (the world it re-learned is the new baseline).
        del self._jolt_remaining[name]
        reasoners = _find_utility_reasoners(self.children[name])
        for reasoner, saved in zip(reasoners,
                                   self._saved_epsilon.pop(name, [])):
            reasoner.epsilon = saved
        self._detectors[name] = self._detector_factory()
        self.interventions.append(Intervention(
            time=time, child=name, kind="jolt-end",
            detail="exploration restored"))

    # -- introspection ------------------------------------------------------------

    def is_jolting(self, name: str) -> bool:
        """Whether ``name`` is currently under an exploration jolt."""
        return name in self._jolt_remaining

    def describe(self) -> str:
        """Narrative of the supervisor's own state."""
        jolting = sorted(self._jolt_remaining)
        return (f"supervising {len(self.children)} node(s); "
                f"{len(self.interventions)} intervention(s) so far; "
                f"currently jolting: {jolting if jolting else 'none'}; "
                f"escalated: {self.escalations if self.escalations else 'none'}")
