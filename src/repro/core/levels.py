"""Levels of computational self-awareness.

The paper's second framework concept (Section IV) is that self-awareness is
not monolithic: organisms -- and computing systems -- exhibit *levels* of
self-awareness of increasing sophistication.  Following Lewis et al. the
levels here are a translation of Neisser's levels of human self-knowledge
into capabilities a computing system may or may not possess:

``STIMULUS``
    Awareness of individual environmental and internal stimuli as they
    occur (Neisser's *ecological self*).  A stimulus-aware system can react,
    but holds no model of interactions or history.

``INTERACTION``
    Awareness of interactions with other entities and of the system's role
    within a wider collective (Neisser's *interpersonal self*).

``TIME``
    Awareness of history and of likely futures: the system keeps traces of
    past phenomena and can extrapolate (Neisser's *extended self*).

``GOAL``
    Awareness of the system's own goals, constraints and trade-offs between
    them, including the fact that goals may change at run time (Neisser's
    *private/conceptual self*).

``META``
    Meta-self-awareness: awareness of the system's own awareness -- which
    models it runs, how well they perform, and the ability to reason about
    and change them (Morin's meta-self-awareness).

Levels are partially cumulative in practice ("full-stack" self-awareness
spans all of them), but the framework deliberately permits *minimal*
systems that implement only the levels they need; :class:`CapabilityProfile`
captures an arbitrary subset.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator


class SelfAwarenessLevel(enum.IntEnum):
    """One level of computational self-awareness.

    The integer ordering encodes increasing sophistication and is used by
    ablation experiments (E1) to construct progressively more capable
    controllers.  Ordering does **not** imply strict prerequisite: a system
    may be time-aware without being interaction-aware.
    """

    STIMULUS = 1
    INTERACTION = 2
    TIME = 3
    GOAL = 4
    META = 5

    @property
    def neisser_name(self) -> str:
        """The human-psychology (Neisser/Morin) counterpart of this level."""
        return _NEISSER_NAMES[self]

    def describe(self) -> str:
        """Return a one-line description suitable for self-explanation."""
        return _DESCRIPTIONS[self]


_NEISSER_NAMES = {
    SelfAwarenessLevel.STIMULUS: "ecological self",
    SelfAwarenessLevel.INTERACTION: "interpersonal self",
    SelfAwarenessLevel.TIME: "extended self",
    SelfAwarenessLevel.GOAL: "private/conceptual self",
    SelfAwarenessLevel.META: "meta-self-awareness",
}

_DESCRIPTIONS = {
    SelfAwarenessLevel.STIMULUS: (
        "aware of individual internal and external stimuli as they occur"
    ),
    SelfAwarenessLevel.INTERACTION: (
        "aware of interactions with other entities and its role among them"
    ),
    SelfAwarenessLevel.TIME: (
        "aware of past phenomena and able to anticipate likely futures"
    ),
    SelfAwarenessLevel.GOAL: (
        "aware of its own goals, constraints and the trade-offs between them"
    ),
    SelfAwarenessLevel.META: (
        "aware of its own awareness: which models it runs and how well"
    ),
}

#: All levels, lowest first.
ALL_LEVELS: tuple = tuple(SelfAwarenessLevel)


@dataclass(frozen=True)
class CapabilityProfile:
    """The set of self-awareness levels a system possesses.

    The framework stresses that "full-stack" awareness is not always
    appropriate; a profile names exactly which capabilities are present so
    that architectures can be assembled minimally and compared in
    ablation studies.

    Parameters
    ----------
    levels:
        The levels present.  Stored as a frozenset; iteration order is by
        increasing level.
    """

    levels: FrozenSet[SelfAwarenessLevel] = field(default_factory=frozenset)

    @classmethod
    def of(cls, *levels: SelfAwarenessLevel) -> "CapabilityProfile":
        """Build a profile from explicit levels."""
        return cls(frozenset(levels))

    @classmethod
    def up_to(cls, level: SelfAwarenessLevel) -> "CapabilityProfile":
        """Cumulative profile containing every level up to ``level``.

        Used by the E1 ablation, which grows capability one level at a time.
        """
        return cls(frozenset(lv for lv in SelfAwarenessLevel if lv <= level))

    @classmethod
    def full_stack(cls) -> "CapabilityProfile":
        """Profile with every level (including meta-self-awareness)."""
        return cls(frozenset(SelfAwarenessLevel))

    @classmethod
    def minimal(cls) -> "CapabilityProfile":
        """Stimulus-awareness only: the least self-aware reactive system."""
        return cls(frozenset({SelfAwarenessLevel.STIMULUS}))

    def has(self, level: SelfAwarenessLevel) -> bool:
        """Whether ``level`` is present in this profile."""
        return level in self.levels

    def with_level(self, level: SelfAwarenessLevel) -> "CapabilityProfile":
        """Return a new profile that additionally possesses ``level``."""
        return CapabilityProfile(self.levels | {level})

    def without_level(self, level: SelfAwarenessLevel) -> "CapabilityProfile":
        """Return a new profile lacking ``level`` (for ablations)."""
        return CapabilityProfile(self.levels - {level})

    def is_meta_self_aware(self) -> bool:
        """Whether the profile includes the meta level."""
        return SelfAwarenessLevel.META in self.levels

    def dominates(self, other: "CapabilityProfile") -> bool:
        """Whether this profile is a strict superset of ``other``."""
        return self.levels > other.levels

    def __iter__(self) -> Iterator[SelfAwarenessLevel]:
        return iter(sorted(self.levels))

    def __len__(self) -> int:
        return len(self.levels)

    def __contains__(self, level: object) -> bool:
        return level in self.levels

    def describe(self) -> str:
        """Human-readable summary for self-explanation reports."""
        if not self.levels:
            return "no self-awareness (pre-reflective)"
        names = ", ".join(lv.name.lower() for lv in self)
        return f"self-awareness levels: {names}"


def ladder(up_to_level: SelfAwarenessLevel = SelfAwarenessLevel.META) -> Iterable[CapabilityProfile]:
    """Yield cumulative profiles from minimal to ``up_to_level``.

    ``ladder()`` produces the sequence used by the levels-ablation
    experiment: stimulus; stimulus+interaction; ...; full stack.
    """
    for level in SelfAwarenessLevel:
        if level > up_to_level:
            break
        yield CapabilityProfile.up_to(level)
