"""Attention: directing limited sensing resources among stimuli.

Preden et al. (Section V) highlight the relationship between
self-awareness and attention: a resource-constrained system cannot attend
to everything, and must determine *for itself* how to direct limited
resources across the vast set of things it could attend to.

An :class:`AttentionPolicy` chooses, each step, which sensor scopes to
sample given a budget.  The self-aware policy
(:class:`SalienceAttention`) estimates the value of re-observing each
scope from the node's own knowledge -- how volatile the phenomenon has
been, how stale the current belief is, how relevant the scope is to the
current goal -- and spends the budget on the most salient scopes.
Baselines sample round-robin or uniformly at random.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from .knowledge import KnowledgeBase
from .sensors import SensorSuite
from .spans import Scope


class AttentionPolicy(ABC):
    """Chooses which scopes to attend to (sample) under a budget."""

    @abstractmethod
    def select(self, suite: SensorSuite, kb: KnowledgeBase, now: float,
               budget: float) -> List[Scope]:
        """Scopes to sample now; their summed sensor cost must fit ``budget``."""


def _fit_budget(ordered: Sequence[Scope], suite: SensorSuite, budget: float) -> List[Scope]:
    """Greedily keep the prefix of ``ordered`` whose cost fits ``budget``.

    Zero-cost sensors are always included.
    """
    chosen: List[Scope] = []
    spent = 0.0
    for scope in ordered:
        cost = suite.sensor(scope).cost
        if cost == 0.0 or spent + cost <= budget + 1e-12:
            chosen.append(scope)
            spent += cost
    return chosen


class FullAttention(AttentionPolicy):
    """Sample everything the budget allows, in a fixed order.

    With an unconstrained budget this is the "attend to everything"
    baseline; under constraint it truncates arbitrarily (by scope name),
    which is exactly the failure mode attention is meant to fix.
    """

    def select(self, suite: SensorSuite, kb: KnowledgeBase, now: float,
               budget: float) -> List[Scope]:
        return _fit_budget(suite.scopes(), suite, budget)


class RoundRobinAttention(AttentionPolicy):
    """Cycle through scopes fairly, budget permitting."""

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, suite: SensorSuite, kb: KnowledgeBase, now: float,
               budget: float) -> List[Scope]:
        scopes = suite.scopes()
        if not scopes:
            return []
        rotated = scopes[self._cursor % len(scopes):] + scopes[:self._cursor % len(scopes)]
        chosen = _fit_budget(rotated, suite, budget)
        self._cursor = (self._cursor + max(1, len(chosen))) % len(scopes)
        return chosen


class RandomAttention(AttentionPolicy):
    """Sample a uniformly random ordering each step, budget permitting."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()

    def select(self, suite: SensorSuite, kb: KnowledgeBase, now: float,
               budget: float) -> List[Scope]:
        scopes = suite.scopes()
        self._rng.shuffle(scopes)
        return _fit_budget(scopes, suite, budget)


class SalienceAttention(AttentionPolicy):
    """Self-aware attention: spend the budget where information is worth most.

    Salience of a scope combines three signals drawn from the node's own
    knowledge base:

    - **volatility** -- recent standard deviation of the phenomenon; a
      stable signal need not be re-read often;
    - **staleness** -- age of the newest observation; for a drifting
      phenomenon the expected error grows like volatility times the
      square root of the age, so the staleness term is *unbounded* --
      even a quiet scope eventually becomes worth re-reading (a
      saturating term would starve quiet scopes forever);
    - **relevance** -- optional caller-supplied weight tying scopes to the
      current goal (e.g. the metric currently binding a constraint).

    Scopes are ranked by salience per unit cost and the budget is filled
    greedily.  A ``novelty_bonus`` keeps never-observed scopes from
    starving (their volatility is unknown, not zero).

    Parameters
    ----------
    volatility_window:
        Number of recent observations over which volatility is computed.
    staleness_scale:
        Time unit of the staleness term: salience equals
        ``relevance * volatility`` at ``staleness == staleness_scale``.
    relevance:
        Optional mapping of scope -> goal-relevance weight (default 1).
    novelty_bonus:
        Salience assigned to scopes observed fewer than ``min_history``
        times -- their volatility cannot be estimated yet, so they stay
        maximally interesting until the estimate exists.
    min_history:
        Observations needed before the volatility estimate replaces the
        novelty bonus.
    """

    def __init__(
        self,
        volatility_window: int = 16,
        staleness_scale: float = 5.0,
        relevance: Optional[Mapping[Scope, float]] = None,
        novelty_bonus: float = 1.0,
        min_history: int = 3,
    ) -> None:
        if staleness_scale <= 0:
            raise ValueError("staleness_scale must be positive")
        if min_history < 2:
            raise ValueError("min_history must be at least 2")
        self.volatility_window = volatility_window
        self.staleness_scale = staleness_scale
        self.relevance: Dict[Scope, float] = dict(relevance or {})
        self.novelty_bonus = novelty_bonus
        self.min_history = min_history

    def set_relevance(self, scope: Scope, weight: float) -> None:
        """Update the goal-relevance weight of a scope at run time."""
        self.relevance[scope] = weight

    def salience(self, scope: Scope, suite: SensorSuite, kb: KnowledgeBase,
                 now: float) -> float:
        """Estimated value of re-observing ``scope`` now."""
        rel = self.relevance.get(scope, 1.0)
        if not kb.has(scope):
            return rel * self.novelty_bonus
        history = kb.history(scope)
        if len(history) < self.min_history:
            return rel * self.novelty_bonus
        vol = history.std(self.volatility_window)
        if math.isnan(vol):
            vol = 0.0
        stale = kb.staleness(scope, now)
        if math.isinf(stale):
            return rel * self.novelty_bonus
        # Random-walk drift: expected deviation grows with sqrt(age).
        return rel * (vol + 1e-3) * math.sqrt(stale / self.staleness_scale)

    def select(self, suite: SensorSuite, kb: KnowledgeBase, now: float,
               budget: float) -> List[Scope]:
        scopes = suite.scopes()
        if not scopes:
            return []

        def value_density(scope: Scope) -> float:
            cost = suite.sensor(scope).cost
            sal = self.salience(scope, suite, kb, now)
            return sal / cost if cost > 0 else math.inf

        ordered = sorted(scopes, key=value_density, reverse=True)
        return _fit_budget(ordered, suite, budget)
