"""The execution loop binding a node to an environment.

Self-aware systems "experiment, model, hypothesise and adapt ... on an
ongoing basis" (Section I): concretely, an observe-decide-act-learn loop
executed against a substrate.  This module supplies the generic loop the
experiments share:

- :class:`SimulationClock` -- explicit simulated time.
- :class:`Environment` -- the protocol substrates implement.
- :func:`run_control_loop` -- drive a node against an environment for a
  number of steps, recording a :class:`Trace`.

Substrate packages (:mod:`repro.cloud`, :mod:`repro.multicore`, ...) have
richer, domain-specific loops; this one powers the abstract resource task
of experiment E1 and the examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, Hashable, List, Optional, Protocol,
                    Sequence)

if TYPE_CHECKING:  # imported lazily to keep core free of a faults dependency
    from ..faults.degrade import DegradationMonitor
    from ..faults.injector import FaultInjector

from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..obs.timers import phase_timer
from .goals import Goal
from .node import SelfAwareNode


class SimulationClock:
    """Explicit simulated time with fixed step width."""

    def __init__(self, start: float = 0.0, dt: float = 1.0) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self._now = start
        self.dt = dt
        self.ticks = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def tick(self) -> float:
        """Advance one step; returns the new time."""
        self._now += self.dt
        self.ticks += 1
        return self._now


class Environment(Protocol):
    """What a substrate must offer for the generic control loop.

    The environment owns the ground truth; the node only sees it through
    its sensors (which the substrate constructs over environment state).
    """

    def candidate_actions(self, now: float) -> Sequence[Hashable]:
        """Actions available at ``now`` (may vary over time)."""

    def apply(self, action: Hashable, now: float) -> Dict[str, float]:
        """Enact ``action``, advance the world one step, return raw metrics."""

    # Optional: environments may additionally expose
    # ``peer_reports(now) -> Iterable[(entity, name, value)]`` -- messages
    # other systems send the node.  The loop delivers them before each
    # decision; only interaction-aware nodes surface them in context.


@dataclass(slots=True)
class TraceStep:
    """One recorded loop iteration."""

    time: float
    action: Hashable
    metrics: Dict[str, float]
    utility: float
    explored: bool
    sensing_cost: float


@dataclass
class Trace:
    """A full run: the raw material of every evaluation metric."""

    node_name: str
    steps: List[TraceStep] = field(default_factory=list)

    def append(self, step: TraceStep) -> None:
        self.steps.append(step)

    def __len__(self) -> int:
        return len(self.steps)

    def utilities(self) -> List[float]:
        """Realised utility series."""
        return [s.utility for s in self.steps]

    def mean_utility(self) -> float:
        """Mean realised utility over the run (NaN when empty)."""
        if not self.steps:
            return math.nan
        return sum(s.utility for s in self.steps) / len(self.steps)

    def mean_utility_between(self, t0: float, t1: float) -> float:
        """Mean utility over steps with ``t0 <= time < t1`` (NaN if none)."""
        vals = [s.utility for s in self.steps if t0 <= s.time < t1]
        if not vals:
            return math.nan
        return sum(vals) / len(vals)

    def metric_series(self, name: str) -> List[float]:
        """The raw series of one metric across the run (NaN when missing)."""
        return [s.metrics.get(name, math.nan) for s in self.steps]

    def action_changes(self) -> int:
        """Number of times the applied action differed from the previous one."""
        changes = 0
        for prev, cur in zip(self.steps, self.steps[1:]):
            if cur.action != prev.action:
                changes += 1
        return changes

    def total_sensing_cost(self) -> float:
        """Accumulated sensing cost across the run."""
        return sum(s.sensing_cost for s in self.steps)


def run_control_loop(
    node: SelfAwareNode,
    environment: Environment,
    goal: Goal,
    steps: int,
    clock: Optional[SimulationClock] = None,
    faults: Optional["FaultInjector"] = None,
    degradation: Optional["DegradationMonitor"] = None,
) -> Trace:
    """Drive ``node`` against ``environment`` for ``steps`` iterations.

    Each iteration: the clock ticks; the node perceives, decides and
    (optionally) expresses; the environment applies the chosen action and
    returns the realised raw metrics; the goal scores them; the node
    receives the outcome as learning feedback.  The *goal* used for
    scoring is the experiment's evaluation goal -- a goal-unaware node
    never reads it, which is exactly the ablation E1 exercises.

    ``faults`` attaches a :class:`~repro.faults.injector.FaultInjector`:
    clock skew shifts the *node's* view of time (the world keeps true
    time); a crash window suspends perception and learning while the
    last expressed action keeps being applied; sensor noise and dropout
    corrupt the metrics copy fed back to the node -- the goal always
    scores the true metrics, so faults degrade the node's knowledge,
    never the evaluation.  ``degradation`` attaches a
    :class:`~repro.faults.degrade.DegradationMonitor` that watches
    self-model confidence and applies its fallback policy.  Both default
    to ``None``, leaving this loop exactly the pre-fault code path.
    """
    if steps <= 0:
        raise ValueError("steps must be positive")
    clock = clock if clock is not None else SimulationClock()
    trace = Trace(node_name=node.name)
    if faults is None and degradation is None:
        _run_plain_loop(node, environment, goal, steps, clock, trace)
        return trace
    reports_fn = getattr(environment, "peer_reports", None)
    last_applied: Optional[Hashable] = None
    for _ in range(steps):
        now = clock.tick()
        if faults is not None:
            faults.begin_step(now)
        if obs_events.enabled():
            # Everything this step decides and learns is downstream of
            # the open fault windows, the current degradation episode
            # and the meta level's last strategy switch: stamp them as
            # ambient causes so every event emitted in the step body
            # (loop.step, meta.utility, meta.switch, ...) is traceable
            # back through them (see repro.explain).
            step_causes: list = (list(faults.active_fault_seqs())
                                 if faults is not None else [])
            if degradation is not None:
                step_causes.append(degradation.cause_seq)
            step_causes.append(getattr(node.reasoner, "last_switch_seq", None))
            step_scope = obs_events.causal_scope(*step_causes)
        else:
            step_scope = obs_events.causal_scope()  # shared no-op context
        with step_scope:
            if reports_fn is not None:
                for entity, name, value in reports_fn(now):
                    if faults is not None and faults.dropped(target=entity):
                        continue
                    node.receive_report(entity, name, now, value)
            actions = list(environment.candidate_actions(now))
            if (faults is not None and last_applied is not None
                    and faults.is_crashed("node", ("node",))):
                # Node down: the world advances under the last expressed
                # action, but nothing is perceived and nothing is learned.
                metrics = environment.apply(last_applied, now)
                utility = goal.utility(metrics)
                if obs_events.enabled():
                    obs_metrics.counter("steps", sim="core",
                                        node=node.name).increment()
                    obs_events.emit("loop.step", node=node.name, time=now,
                                    action=last_applied, utility=utility,
                                    explored=False, sensing_cost=0.0,
                                    crashed=True)
                trace.append(TraceStep(
                    time=now, action=last_applied, metrics=dict(metrics),
                    utility=utility, explored=False, sensing_cost=0.0))
                continue
            node_now = (faults.perceived_time(now, target="node")
                        if faults is not None else now)
            result = node.step(node_now, actions)
            applied = result.decision.action
            if result.actuation is not None and not result.actuation.applied:
                # A guard vetoed the choice: the node expresses inaction,
                # which substrates model as repeating the previous action.
                applied = (node.expression.current_action
                           if node.expression is not None
                           and node.expression.current_action is not None
                           else applied)
            if degradation is not None:
                applied = degradation.filter_action(now, node, result.context,
                                                    applied)
            if obs_events.enabled():
                # The environment transition is the loop's own phase: the
                # node timed sense/model/reason/act inside ``step``.
                with phase_timer("environment", node=node.name):
                    metrics = environment.apply(applied, now)
            else:
                metrics = environment.apply(applied, now)
            utility = goal.utility(metrics)
            sensed = metrics
            if faults is not None:
                # Corrupt what the node *learns from*, never what the goal
                # scores: dropped metrics vanish, noisy ones are perturbed.
                sensed = {}
                for key, value in metrics.items():
                    if faults.dropped(target=key):
                        continue
                    sensed[key] = faults.perturb(value, target=key)
            node.feedback(sensed, utility=utility)
            last_applied = applied
            if obs_events.enabled():
                obs_metrics.counter("steps", sim="core",
                                    node=node.name).increment()
                obs_metrics.histogram("loop.utility",
                                      node=node.name).observe(utility)
                obs_events.emit("loop.step", node=node.name, time=now,
                                action=applied, utility=utility,
                                explored=result.decision.explored,
                                sensing_cost=result.sensing_cost)
            trace.append(TraceStep(
                time=now, action=applied, metrics=dict(metrics),
                utility=utility, explored=result.decision.explored,
                sensing_cost=result.sensing_cost))
    return trace


def _run_plain_loop(
    node: SelfAwareNode,
    environment: Environment,
    goal: Goal,
    steps: int,
    clock: SimulationClock,
    trace: Trace,
) -> None:
    """The no-injector specialisation of :func:`run_control_loop`.

    With no injector and no degradation monitor armed, every fault
    branch in the general loop is provably dead and the per-step no-op
    causal scope is pure overhead, so this loop drops them.  The step
    body is otherwise a line-for-line copy of the general loop's under
    ``faults=None, degradation=None`` -- the equivalence test drives
    both (general path via an inert, empty-plan injector) and asserts
    identical traces.
    """
    reports_fn = getattr(environment, "peer_reports", None)
    node_step = node.step
    node_feedback = node.feedback
    goal_utility = goal.utility
    candidate_actions = environment.candidate_actions
    env_apply = environment.apply
    append = trace.append
    for _ in range(steps):
        now = clock.tick()
        if obs_events.enabled():
            with obs_events.causal_scope(
                    getattr(node.reasoner, "last_switch_seq", None)):
                if reports_fn is not None:
                    for entity, name, value in reports_fn(now):
                        node.receive_report(entity, name, now, value)
                result = node_step(now, list(candidate_actions(now)))
                applied = result.decision.action
                if (result.actuation is not None
                        and not result.actuation.applied):
                    applied = (node.expression.current_action
                               if node.expression is not None
                               and node.expression.current_action is not None
                               else applied)
                with phase_timer("environment", node=node.name):
                    metrics = env_apply(applied, now)
                utility = goal_utility(metrics)
                node_feedback(metrics, utility=utility)
                obs_metrics.counter("steps", sim="core",
                                    node=node.name).increment()
                obs_metrics.histogram("loop.utility",
                                      node=node.name).observe(utility)
                obs_events.emit("loop.step", node=node.name, time=now,
                                action=applied, utility=utility,
                                explored=result.decision.explored,
                                sensing_cost=result.sensing_cost)
        else:
            if reports_fn is not None:
                for entity, name, value in reports_fn(now):
                    node.receive_report(entity, name, now, value)
            result = node_step(now, list(candidate_actions(now)))
            applied = result.decision.action
            if result.actuation is not None and not result.actuation.applied:
                applied = (node.expression.current_action
                           if node.expression is not None
                           and node.expression.current_action is not None
                           else applied)
            metrics = env_apply(applied, now)
            utility = goal_utility(metrics)
            node_feedback(metrics, utility=utility)
        append(TraceStep(
            time=now, action=applied, metrics=dict(metrics),
            utility=utility, explored=result.decision.explored,
            sensing_cost=result.sensing_cost))
