"""Reasoners: turning self-knowledge into decisions.

The output side of the awareness loop.  A reasoner chooses among candidate
actions (configurations, routes, mappings...) using whatever knowledge the
node's capability profile grants it:

- :class:`StaticPolicy` -- the design-time classic: one fixed choice.
- :class:`ReactiveRulePolicy` -- stimulus-aware threshold rules.
- :class:`UtilityReasoner` -- goal-aware model-based reasoning: predict
  each action's metric outcomes with a self-model, evaluate against the
  current :class:`~repro.core.goals.Goal`, and pick the best (weighted
  utility, or knee-of-Pareto when weightless).

Every decision returns a :class:`Decision` record carrying the evidence it
was based on, which is what makes *self-explanation* possible downstream
(:mod:`repro.core.explanation`).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Optional, Sequence

import numpy as np

from .goals import Goal, GoalEvaluation, knee_point
from .models import PredictiveModel


@dataclass
class Decision:
    """The outcome of one deliberation, with its supporting evidence.

    ``considered`` maps each candidate action to the predicted raw metrics
    used to judge it; ``evaluations`` maps candidates to their goal
    evaluation.  Both may be empty for non-deliberative policies.
    """

    action: Hashable
    time: float
    reason: str
    explored: bool = False
    considered: Dict[Hashable, Dict[str, float]] = field(default_factory=dict)
    evaluations: Dict[Hashable, GoalEvaluation] = field(default_factory=dict)
    goal_version: Optional[int] = None

    def margin(self) -> float:
        """Utility gap between the chosen action and the runner-up.

        A small margin indicates a close call; explanations report it and
        the meta level can treat persistent near-ties as a sign that the
        action set no longer discriminates.
        Returns ``inf`` when fewer than two candidates were evaluated.
        """
        if len(self.evaluations) < 2:
            return math.inf
        utilities = sorted((ev.utility for ev in self.evaluations.values()), reverse=True)
        return utilities[0] - utilities[1]


class Reasoner(ABC):
    """Chooses one action from a candidate set given a context."""

    @abstractmethod
    def decide(self, time: float, context: Mapping[str, float],
               actions: Sequence[Hashable]) -> Decision:
        """Choose an action at ``time`` given ``context``."""

    def learn(self, context: Mapping[str, float], action: Hashable,
              outcome: Mapping[str, float]) -> None:
        """Feed back the observed outcome of an executed action.

        Default: no learning (static and purely reactive policies).
        """


class StaticPolicy(Reasoner):
    """Always selects the same action: behaviour fixed at design time.

    The canonical baseline throughout the benchmark suite.  If the fixed
    action is absent from the offered candidates the first candidate is
    taken (a real static system would simply fail).
    """

    def __init__(self, action: Hashable) -> None:
        self.action = action

    def decide(self, time: float, context: Mapping[str, float],
               actions: Sequence[Hashable]) -> Decision:
        if not actions:
            raise ValueError("no candidate actions offered")
        chosen = self.action if self.action in actions else actions[0]
        return Decision(action=chosen, time=time,
                        reason="static design-time policy")


@dataclass(frozen=True)
class Rule:
    """One reactive rule: *if metric compares to threshold, take action*.

    ``op`` is ``">"`` or ``"<"``.  Rules fire in priority order (first
    match wins), mirroring how threshold-based autoscalers and governors
    are written in practice.
    """

    metric: str
    op: str
    threshold: float
    action: Hashable

    def __post_init__(self) -> None:
        if self.op not in (">", "<"):
            raise ValueError(f"rule op must be '>' or '<', got {self.op!r}")

    def fires(self, context: Mapping[str, float]) -> bool:
        value = context.get(self.metric)
        if value is None or math.isnan(value):
            return False
        return value > self.threshold if self.op == ">" else value < self.threshold


class ReactiveRulePolicy(Reasoner):
    """Stimulus-aware policy: threshold rules over the current context.

    Reacts to what is happening *now*; holds no history, no model and no
    explicit goals.  ``default`` is chosen when no rule fires.
    """

    def __init__(self, rules: Sequence[Rule], default: Hashable) -> None:
        self.rules = list(rules)
        self.default = default

    def decide(self, time: float, context: Mapping[str, float],
               actions: Sequence[Hashable]) -> Decision:
        for rule in self.rules:
            if rule.fires(context) and rule.action in actions:
                return Decision(
                    action=rule.action, time=time,
                    reason=(f"rule fired: {rule.metric} {rule.op} "
                            f"{rule.threshold} -> {rule.action}"))
        chosen = self.default if self.default in actions else actions[0]
        return Decision(action=chosen, time=time, reason="no rule fired; default")


class UtilityReasoner(Reasoner):
    """Goal-aware, model-based deliberation.

    For each candidate action the reasoner asks its self-model what the
    raw metrics would be, evaluates that prediction against the current
    goal, and picks the feasible candidate with the highest utility
    (falling back to least-total-violation when nothing is feasible).

    Exploration: with probability ``epsilon`` -- further scaled up when
    the model's confidence in the greedy choice is low -- a uniformly
    random candidate is tried instead.  Self-aware systems must *gather*
    the experience their models are built from (Cox's point that awareness
    includes deciding what information to gather next).

    Parameters
    ----------
    goal:
        The (mutable) goal to optimise.  The reasoner reads it afresh on
        every decision, so run-time goal changes take effect immediately.
    model:
        Predictive self-model consulted per candidate.
    epsilon:
        Base exploration rate in ``[0, 1]``.
    confidence_floor:
        Below this model confidence the exploration rate is doubled.
    use_knee:
        When ``True``, selection ignores the goal's weights and picks the
        knee of the Pareto front of predicted score vectors instead
        (ablation knob for DESIGN.md design-choice 1).
    rng:
        Random generator for exploration draws.
    """

    def __init__(
        self,
        goal: Goal,
        model: PredictiveModel,
        epsilon: float = 0.1,
        confidence_floor: float = 0.3,
        use_knee: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.goal = goal
        self.model = model
        self.epsilon = epsilon
        self.confidence_floor = confidence_floor
        self.use_knee = use_knee
        self._rng = rng if rng is not None else np.random.default_rng()

    def decide(self, time: float, context: Mapping[str, float],
               actions: Sequence[Hashable]) -> Decision:
        if not actions:
            raise ValueError("no candidate actions offered")
        considered: Dict[Hashable, Dict[str, float]] = {}
        evaluations: Dict[Hashable, GoalEvaluation] = {}
        for action in actions:
            predicted = self.model.predict(context, action)
            considered[action] = predicted
            evaluations[action] = self.goal.evaluate(predicted)

        greedy, reason = self._select(actions, considered, evaluations)

        explore_rate = self.epsilon
        if self.model.confidence(context, greedy) < self.confidence_floor:
            explore_rate = min(1.0, 2.0 * self.epsilon)
        explored = bool(self._rng.random() < explore_rate) and len(actions) > 1
        if explored:
            others = [a for a in actions if a != greedy]
            chosen = others[int(self._rng.integers(len(others)))]
            reason = (f"exploring (rate {explore_rate:.2f}) to improve the "
                      f"self-model; greedy choice was {greedy}")
        else:
            chosen = greedy

        return Decision(
            action=chosen, time=time, reason=reason, explored=explored,
            considered=considered, evaluations=evaluations,
            goal_version=self.goal.version)

    def _select(
        self,
        actions: Sequence[Hashable],
        considered: Mapping[Hashable, Mapping[str, float]],
        evaluations: Mapping[Hashable, GoalEvaluation],
    ):
        """Greedy choice under the configured aggregation scheme."""
        feasible = [a for a in actions if evaluations[a].feasible]
        pool = feasible if feasible else list(actions)
        if not feasible:
            # Least-bad infeasible option: minimise total violation first.
            pool.sort(key=lambda a: evaluations[a].total_violation)
            worst = evaluations[pool[0]].total_violation
            pool = [a for a in pool
                    if evaluations[a].total_violation <= worst + 1e-12]
            prefix = "all candidates violate constraints; least violation, then "
        else:
            prefix = ""

        if self.use_knee and len(pool) > 1:
            vectors = [self.goal.score_vector(considered[a]) for a in pool]
            idx = knee_point(vectors)
            chosen = pool[idx if idx is not None else 0]
            return chosen, prefix + "knee of predicted Pareto front"

        chosen = max(pool, key=lambda a: evaluations[a].utility)
        return chosen, (prefix +
                        f"highest predicted utility "
                        f"{evaluations[chosen].utility:.3f} under "
                        f"goal '{self.goal.name}' v{self.goal.version}")

    def learn(self, context: Mapping[str, float], action: Hashable,
              outcome: Mapping[str, float]) -> None:
        self.model.update(context, action, outcome)
