"""Self-assessment: a node's structured report on its own condition.

Kounev's *self-reflection* (Section III): a self-aware system holds
models of itself that it can consult -- not only to act, but to report
its own health.  :func:`assess` compiles what a node knows about itself
into a :class:`SelfAssessment`: how complete and fresh its knowledge is,
how much it has been exploring, how stable its behaviour is, and (for
meta-self-aware nodes) how it judges its own strategies.

This is the machine-readable sibling of self-explanation: explanation
narrates single decisions; assessment summarises the system's state for
dashboards, watchdogs, or other systems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from .meta import MetaReasoner
from .node import SelfAwareNode


@dataclass
class SelfAssessment:
    """A node's structured view of its own condition at one instant."""

    node_name: str
    time: float
    levels: List[str]
    #: Fraction of the sensor suite's scopes with at least one observation.
    knowledge_coverage: float
    #: Age of the stalest observed scope (inf when nothing observed).
    worst_staleness: float
    #: Fraction of journalled decisions that were exploratory.
    exploration_rate: float
    #: Fraction of consecutive journalled decisions keeping the action.
    decision_stability: float
    #: Decisions journalled so far.
    decisions: int
    #: Meta level only: the reasoner's own view of its strategies.
    strategy_assessment: Optional[Dict[str, float]] = None
    strategy_switches: Optional[int] = None

    def healthy(self, max_staleness: float = math.inf,
                min_coverage: float = 0.5) -> bool:
        """A crude go/no-go: knowledge fresh and reasonably complete."""
        return (self.knowledge_coverage >= min_coverage
                and self.worst_staleness <= max_staleness)

    def describe(self) -> str:
        """One-paragraph narrative of the assessment."""
        parts = [
            f"node '{self.node_name}' at t={self.time:g}:",
            f"levels [{', '.join(self.levels)}];",
            f"knowledge covers {self.knowledge_coverage:.0%} of its sensors",
        ]
        if math.isfinite(self.worst_staleness):
            parts.append(f"(stalest observation {self.worst_staleness:g} "
                         "time units old);")
        else:
            parts.append("(nothing observed yet);")
        parts.append(f"{self.decisions} decisions made, "
                     f"{self.exploration_rate:.0%} exploratory, "
                     f"stability {self.decision_stability:.0%}.")
        if self.strategy_assessment is not None:
            ranked = ", ".join(
                f"{name}={value:.3f}" if not math.isnan(value) else f"{name}=?"
                for name, value in self.strategy_assessment.items())
            parts.append(f"Strategy self-assessment: {ranked} "
                         f"({self.strategy_switches} switches).")
        return " ".join(parts)


def assess(node: SelfAwareNode, now: float) -> SelfAssessment:
    """Compile ``node``'s self-assessment as of ``now``."""
    expected = node.sensors.scopes()
    coverage = node.knowledge.coverage(expected)
    staleness_values = [node.knowledge.staleness(scope, now)
                        for scope in expected if node.knowledge.has(scope)]
    worst = max(staleness_values) if staleness_values else math.inf

    steps = node.log.steps()
    decisions = len(steps)
    exploratory = sum(1 for s in steps if s.decision.explored)
    changes = sum(1 for a, b in zip(steps, steps[1:])
                  if a.decision.action != b.decision.action)
    stability = 1.0 - changes / (decisions - 1) if decisions > 1 else 1.0

    strategy_assessment = None
    switches = None
    if isinstance(node.reasoner, MetaReasoner):
        strategy_assessment = node.reasoner.self_assessment()
        switches = len(node.reasoner.switches)

    return SelfAssessment(
        node_name=node.name,
        time=now,
        levels=[lv.name.lower() for lv in node.profile],
        knowledge_coverage=coverage,
        worst_staleness=worst,
        exploration_rate=exploratory / decisions if decisions else 0.0,
        decision_stability=stability,
        decisions=decisions,
        strategy_assessment=strategy_assessment,
        strategy_switches=switches)
