"""Self-expression: acting on the world on the basis of self-knowledge.

In the Lewis et al. architecture, *self-expression* is the counterpart of
self-awareness: behaviour -- adaptation, reconfiguration, communication --
enacted because of what the system knows about itself.  An
:class:`Actuator` binds an action name to an effect function; a
:class:`Guard` can veto actuations (Winfield's argument that internal
models should *moderate* action for safety is realised as guarded
actuation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Mapping, Optional


@dataclass
class ActuationResult:
    """What happened when an action was (or was not) applied."""

    action: Hashable
    applied: bool
    vetoed_by: Optional[str] = None
    cost: float = 0.0


class Guard:
    """A safety veto consulted before any actuation.

    ``check`` returns ``None`` to allow the action or a human-readable
    reason string to veto it.  Guards see the node's current context so
    vetoes can depend on state ("do not scale down while the queue is
    growing").
    """

    def __init__(self, name: str,
                 check: Callable[[Hashable, Mapping[str, float]], Optional[str]]) -> None:
        self.name = name
        self._check = check
        self.vetoes_issued = 0

    def evaluate(self, action: Hashable, context: Mapping[str, float]) -> Optional[str]:
        """Reason to veto ``action`` in ``context``, or ``None`` to allow."""
        reason = self._check(action, context)
        if reason is not None:
            self.vetoes_issued += 1
        return reason


class Actuator:
    """One effector the system can use to express itself.

    Parameters
    ----------
    action:
        The action this actuator realises.
    effect:
        Zero-argument callable that enacts the change on the substrate.
    switching_cost:
        Abstract cost charged when the action differs from the previously
        applied one -- reconfiguration is rarely free, and several
        experiments study how self-aware systems amortise it.
    """

    def __init__(self, action: Hashable, effect: Callable[[], None],
                 switching_cost: float = 0.0) -> None:
        self.action = action
        self._effect = effect
        self.switching_cost = switching_cost
        self.invocations = 0

    def apply(self) -> None:
        """Enact the effect on the substrate."""
        self.invocations += 1
        self._effect()


class ExpressionEngine:
    """Dispatches decisions to actuators through the guard chain.

    Tracks the currently expressed action so switching costs accrue only
    on change, and counts vetoes for the self-explanation reports.
    """

    def __init__(self, actuators: Dict[Hashable, Actuator] = None,
                 guards: List[Guard] = None) -> None:
        self._actuators: Dict[Hashable, Actuator] = dict(actuators or {})
        self.guards: List[Guard] = list(guards or [])
        self.current_action: Optional[Hashable] = None
        self.total_switching_cost = 0.0
        self.switches = 0

    def add_actuator(self, actuator: Actuator) -> None:
        """Register an actuator; actions must be unique."""
        if actuator.action in self._actuators:
            raise ValueError(f"duplicate actuator for action {actuator.action!r}")
        self._actuators[actuator.action] = actuator

    def add_guard(self, guard: Guard) -> None:
        """Append a guard to the veto chain."""
        self.guards.append(guard)

    def available_actions(self) -> List[Hashable]:
        """All actions with a registered actuator."""
        return list(self._actuators)

    def express(self, action: Hashable,
                context: Mapping[str, float]) -> ActuationResult:
        """Apply ``action`` unless a guard vetoes it.

        Re-applying the current action is a no-op with zero cost (idempotent
        expression), so controllers may decide every step without thrashing.
        """
        if action not in self._actuators:
            raise KeyError(f"no actuator for action {action!r}")
        for guard in self.guards:
            reason = guard.evaluate(action, context)
            if reason is not None:
                return ActuationResult(action=action, applied=False,
                                       vetoed_by=f"{guard.name}: {reason}")
        actuator = self._actuators[action]
        cost = 0.0
        if self.current_action is not None and action != self.current_action:
            cost = actuator.switching_cost
            self.total_switching_cost += cost
            self.switches += 1
        elif self.current_action == action:
            return ActuationResult(action=action, applied=True, cost=0.0)
        actuator.apply()
        self.current_action = action
        return ActuationResult(action=action, applied=True, cost=cost)
