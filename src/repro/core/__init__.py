"""The computational self-awareness framework (the paper's contribution).

This package translates the psychology-derived concepts of the paper into
an engineering API:

- levels of self-awareness (:mod:`~repro.core.levels`),
- public/private awareness spans (:mod:`~repro.core.spans`),
- self-knowledge (:mod:`~repro.core.knowledge`),
- self-models (:mod:`~repro.core.models`),
- goals and run-time trade-offs (:mod:`~repro.core.goals`),
- reasoners and self-expression (:mod:`~repro.core.reasoner`,
  :mod:`~repro.core.actuators`),
- meta-self-awareness (:mod:`~repro.core.meta`),
- self-explanation (:mod:`~repro.core.explanation`),
- attention (:mod:`~repro.core.attention`),
- collective self-awareness (:mod:`~repro.core.collective`),
- the assembled node and loop (:mod:`~repro.core.node`,
  :mod:`~repro.core.loop`, :mod:`~repro.core.patterns`).
"""

from .actuators import ActuationResult, Actuator, ExpressionEngine, Guard
from .assessment import SelfAssessment, assess
from .attention import (AttentionPolicy, FullAttention, RandomAttention,
                        RoundRobinAttention, SalienceAttention)
from .collective import (AggregationResult, CentralAggregator,
                         CommunicationNetwork, GossipEstimator,
                         HierarchicalAggregator)
from .explanation import ExplanationLog, ExplanationReport, LoggedStep, narrate
from .goals import (Constraint, Goal, GoalEvaluation, Objective, dominates,
                    knee_point, pareto_front)
from .hierarchy import Intervention, Supervisor
from .knowledge import Belief, History, KnowledgeBase, Observation
from .levels import ALL_LEVELS, CapabilityProfile, SelfAwarenessLevel, ladder
from .loop import (Environment, SimulationClock, Trace, TraceStep,
                   run_control_loop)
from .meta import (MetaReasoner, StrategyStats, SwitchEvent, SwitchHistory,
                   switches_from_events)
from .models import (BlendedModel, ContextualActionModel, EmpiricalActionModel,
                     ModelQualityTracker, PredictiveModel, PriorModel)
from .node import SelfAwareNode, StepResult
from .patterns import (build_model, build_node, build_reasoner,
                       build_static_node, clone_goal)
from .reasoner import (Decision, Reasoner, ReactiveRulePolicy, Rule,
                       StaticPolicy, UtilityReasoner)
from .sensors import Sensor, SensorReading, SensorSuite
from .spans import Scope, Span, private, public

__all__ = [
    "ActuationResult", "Actuator", "ExpressionEngine", "Guard",
    "SelfAssessment", "assess",
    "AttentionPolicy", "FullAttention", "RandomAttention",
    "RoundRobinAttention", "SalienceAttention",
    "AggregationResult", "CentralAggregator", "CommunicationNetwork",
    "GossipEstimator", "HierarchicalAggregator",
    "ExplanationLog", "ExplanationReport", "LoggedStep", "narrate",
    "Constraint", "Goal", "GoalEvaluation", "Objective", "dominates",
    "knee_point", "pareto_front",
    "Intervention", "Supervisor",
    "Belief", "History", "KnowledgeBase", "Observation",
    "ALL_LEVELS", "CapabilityProfile", "SelfAwarenessLevel", "ladder",
    "Environment", "SimulationClock", "Trace", "TraceStep", "run_control_loop",
    "MetaReasoner", "StrategyStats", "SwitchEvent", "SwitchHistory",
    "switches_from_events",
    "BlendedModel", "ContextualActionModel", "EmpiricalActionModel",
    "ModelQualityTracker", "PredictiveModel", "PriorModel",
    "SelfAwareNode", "StepResult",
    "build_model", "build_node", "build_reasoner", "build_static_node",
    "clone_goal",
    "Decision", "Reasoner", "ReactiveRulePolicy", "Rule", "StaticPolicy",
    "UtilityReasoner",
    "Sensor", "SensorReading", "SensorSuite",
    "Scope", "Span", "private", "public",
]
