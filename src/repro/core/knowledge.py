"""Self-knowledge representation: observations, histories and beliefs.

Computational self-awareness rests on a system acquiring and maintaining
*knowledge about itself and its experiences* (Section IV).  This module
provides the substrate on which every level of awareness is built:

- :class:`Observation` -- a time-stamped reading of one phenomenon.
- :class:`History` -- a bounded time-indexed trace of observations for one
  scope; the basis of time-awareness.
- :class:`Belief` -- a current estimate with an explicit confidence, so
  that reasoners can weigh knowledge by its quality (and meta-self-aware
  systems can notice when their knowledge is poor).
- :class:`KnowledgeBase` -- the per-node store keyed by :class:`Scope`,
  partitioned into public and private spans.

Design notes
------------
Histories are bounded deques: self-aware systems run forever and the paper
is explicit that attention and memory are limited resources.  Statistics
(mean/std/trend) are computed on demand over the retained window.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from .spans import Scope, Span

#: Default for the O(window) statistics fast path.  The original
#: full-copy implementations are retained (toggle off, or call the
#: ``*_naive`` names) as the reference for equivalence tests and the
#: ``repro.bench`` baseline; both paths produce bit-identical floats
#: because the extracted window and the summation order are unchanged.
USE_FAST_WINDOW_STATS = True


def set_fast_window_stats(enabled: bool) -> None:
    """Toggle the memoised O(window) statistics path module-wide."""
    global USE_FAST_WINDOW_STATS
    USE_FAST_WINDOW_STATS = bool(enabled)


@dataclass(frozen=True, slots=True)
class Observation:
    """A single time-stamped reading of a phenomenon.

    Parameters
    ----------
    time:
        Simulation (or wall) time of the reading.
    value:
        The observed value.  Scalar float for most sensors; substrates that
        observe structured values store floats per sub-scope instead.
    """

    time: float
    value: float


@dataclass(frozen=True, slots=True)
class Belief:
    """A current estimate about a scope, with explicit confidence.

    Confidence lives in ``[0, 1]``; ``0`` means "no basis at all" and ``1``
    means the estimate is a direct, fresh observation.  Reasoners may
    discount utilities by confidence, and the meta level monitors the
    confidence of its own knowledge.
    """

    scope: Scope
    value: float
    confidence: float
    time: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence must be in [0, 1], got {self.confidence}")

    def discounted(self, now: float, half_life: float) -> "Belief":
        """Return the belief with confidence decayed by the age of the estimate.

        Confidence halves every ``half_life`` time units; a belief about a
        fast-changing world grows stale.  ``half_life <= 0`` disables decay.
        """
        if half_life <= 0:
            return self
        age = max(0.0, now - self.time)
        factor = 0.5 ** (age / half_life)
        return Belief(self.scope, self.value, self.confidence * factor, self.time)


class History:
    """Bounded time-indexed trace of observations for a single scope.

    The extended (time-aware) self keeps traces of its experiences.  A
    :class:`History` retains up to ``maxlen`` observations and offers the
    window statistics that predictive self-models consume.
    """

    def __init__(self, scope: Scope, maxlen: int = 512) -> None:
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self.scope = scope
        self.maxlen = maxlen
        self._buffer: Deque[Observation] = deque(maxlen=maxlen)
        self._version = 0
        self._stat_cache: Dict[Tuple[str, Optional[int]],
                               Tuple[int, float]] = {}

    def record(self, time: float, value: float) -> Observation:
        """Append an observation; returns the stored record."""
        if self._buffer and time < self._buffer[-1].time:
            raise ValueError(
                f"observations must be recorded in time order: "
                f"{time} < {self._buffer[-1].time}"
            )
        obs = Observation(time=time, value=value)
        self._buffer.append(obs)
        self._version += 1
        return obs

    def _window(self, window: Optional[int]) -> List[Observation]:
        """Last ``window`` observations in chronological order, O(window).

        ``islice(reversed(deque), window)`` walks only the tail instead
        of copying the whole ``maxlen`` buffer; reversing the extracted
        tail restores the exact list the full-copy slice would produce,
        so every statistic computed from it sums in the original order.
        """
        buf = self._buffer
        if window is None or window >= len(buf):
            return list(buf)
        tail = list(islice(reversed(buf), window))
        tail.reverse()
        return tail

    def _cached(self, kind: str, window: Optional[int]) -> Optional[float]:
        hit = self._stat_cache.get((kind, window))
        if hit is not None and hit[0] == self._version:
            return hit[1]
        return None

    def _store(self, kind: str, window: Optional[int], value: float) -> float:
        self._stat_cache[(kind, window)] = (self._version, value)
        return value

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self._buffer)

    def __bool__(self) -> bool:
        return bool(self._buffer)

    @property
    def latest(self) -> Optional[Observation]:
        """Most recent observation, or ``None`` when empty."""
        return self._buffer[-1] if self._buffer else None

    def values(self, window: Optional[int] = None) -> List[float]:
        """Values of the last ``window`` observations (all when ``None``)."""
        if USE_FAST_WINDOW_STATS:
            return [o.value for o in self._window(window)]
        return self.values_naive(window)

    def values_naive(self, window: Optional[int] = None) -> List[float]:
        """Reference full-copy window extraction."""
        if window is None or window >= len(self._buffer):
            return [o.value for o in self._buffer]
        return [o.value for o in list(self._buffer)[-window:]]

    def mean(self, window: Optional[int] = None) -> float:
        """Mean of the retained (or last-``window``) values; NaN when empty."""
        if not USE_FAST_WINDOW_STATS:
            return self.mean_naive(window)
        cached = self._cached("mean", window)
        if cached is not None:
            return cached
        vals = [o.value for o in self._window(window)]
        if not vals:
            return self._store("mean", window, math.nan)
        return self._store("mean", window, sum(vals) / len(vals))

    def mean_naive(self, window: Optional[int] = None) -> float:
        """Reference mean over a freshly copied window."""
        vals = self.values_naive(window)
        if not vals:
            return math.nan
        return sum(vals) / len(vals)

    def std(self, window: Optional[int] = None) -> float:
        """Population standard deviation of retained values; NaN when empty."""
        if not USE_FAST_WINDOW_STATS:
            return self.std_naive(window)
        cached = self._cached("std", window)
        if cached is not None:
            return cached
        vals = [o.value for o in self._window(window)]
        if not vals:
            return self._store("std", window, math.nan)
        mu = sum(vals) / len(vals)
        return self._store(
            "std", window,
            math.sqrt(sum((v - mu) ** 2 for v in vals) / len(vals)))

    def std_naive(self, window: Optional[int] = None) -> float:
        """Reference standard deviation over a freshly copied window."""
        vals = self.values_naive(window)
        if not vals:
            return math.nan
        mu = sum(vals) / len(vals)
        return math.sqrt(sum((v - mu) ** 2 for v in vals) / len(vals))

    def trend(self, window: Optional[int] = None) -> float:
        """Least-squares slope of value against time over the window.

        Returns ``0.0`` when fewer than two points are retained or when all
        observations share one timestamp.  The slope is the simplest form of
        "awareness of where a phenomenon is heading".
        """
        if not USE_FAST_WINDOW_STATS:
            return self.trend_naive(window)
        cached = self._cached("trend", window)
        if cached is not None:
            return cached
        obs = self._window(window)
        return self._store("trend", window, self._trend_of(obs))

    def trend_naive(self, window: Optional[int] = None) -> float:
        """Reference slope computation over a freshly copied window."""
        obs = list(self._buffer)
        if window is not None and window < len(obs):
            obs = obs[-window:]
        return self._trend_of(obs)

    @staticmethod
    def _trend_of(obs: List[Observation]) -> float:
        if len(obs) < 2:
            return 0.0
        n = len(obs)
        mean_t = sum(o.time for o in obs) / n
        mean_v = sum(o.value for o in obs) / n
        sxx = sum((o.time - mean_t) ** 2 for o in obs)
        if sxx == 0.0:
            return 0.0
        sxy = sum((o.time - mean_t) * (o.value - mean_v) for o in obs)
        return sxy / sxx

    def since(self, time: float) -> List[Observation]:
        """All retained observations with timestamp strictly greater than ``time``."""
        return [o for o in self._buffer if o.time > time]


class KnowledgeBase:
    """Per-node store of histories and beliefs, keyed by :class:`Scope`.

    The knowledge base is deliberately *local*: the framework's third
    concept is that collective self-awareness must not require a global
    store (see :mod:`repro.core.collective`), so each node owns exactly one
    of these.
    """

    def __init__(self, history_maxlen: int = 512) -> None:
        self.history_maxlen = history_maxlen
        self._histories: Dict[Scope, History] = {}
        self._beliefs: Dict[Scope, Belief] = {}

    # -- observations -----------------------------------------------------

    def observe(self, scope: Scope, time: float, value: float) -> Observation:
        """Record an observation and refresh the corresponding belief.

        A fresh observation yields a belief with confidence ``1.0``.
        """
        history = self._histories.get(scope)
        if history is None:
            history = History(scope, maxlen=self.history_maxlen)
            self._histories[scope] = history
        obs = history.record(time, value)
        self._beliefs[scope] = Belief(scope=scope, value=value, confidence=1.0, time=time)
        return obs

    def history(self, scope: Scope) -> History:
        """History for ``scope``; an empty one is created on first access."""
        if scope not in self._histories:
            self._histories[scope] = History(scope, maxlen=self.history_maxlen)
        return self._histories[scope]

    def has(self, scope: Scope) -> bool:
        """Whether any observation has ever been recorded for ``scope``."""
        return scope in self._histories and bool(self._histories[scope])

    # -- beliefs -----------------------------------------------------------

    def believe(self, belief: Belief) -> None:
        """Install a derived belief (e.g. from a model or a neighbour report)."""
        self._beliefs[belief.scope] = belief

    def belief(self, scope: Scope, now: Optional[float] = None,
               half_life: float = 0.0) -> Optional[Belief]:
        """Current belief about ``scope``, optionally age-discounted."""
        b = self._beliefs.get(scope)
        if b is None:
            return None
        if now is not None and half_life > 0:
            return b.discounted(now, half_life)
        return b

    def value(self, scope: Scope, default: float = math.nan) -> float:
        """Convenience: the believed value for ``scope`` or ``default``."""
        b = self._beliefs.get(scope)
        return b.value if b is not None else default

    # -- span-partitioned views ---------------------------------------------

    def scopes(self, span: Optional[Span] = None) -> List[Scope]:
        """All scopes with recorded knowledge, optionally filtered by span."""
        keys: Iterable[Scope] = set(self._histories) | set(self._beliefs)
        if span is None:
            return sorted(keys, key=lambda s: s.qualified_name())
        return sorted((s for s in keys if s.span is span),
                      key=lambda s: s.qualified_name())

    def social_scopes(self) -> List[Scope]:
        """Scopes concerning other entities (interaction-awareness)."""
        return [s for s in self.scopes() if s.is_social()]

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of qualified scope name to believed value (for reports)."""
        return {s.qualified_name(): b.value for s, b in sorted(
            self._beliefs.items(), key=lambda kv: kv[0].qualified_name())}

    # -- introspection used by the meta level -------------------------------

    def staleness(self, scope: Scope, now: float) -> float:
        """Age of the newest observation for ``scope``; ``inf`` if none."""
        h = self._histories.get(scope)
        if h is None or h.latest is None:
            return math.inf
        return max(0.0, now - h.latest.time)

    def coverage(self, expected: Iterable[Scope]) -> float:
        """Fraction of ``expected`` scopes with at least one observation.

        The meta level uses coverage as one signal of the quality of the
        system's own awareness.
        """
        expected = list(expected)
        if not expected:
            return 1.0
        have = sum(1 for s in expected if self.has(s))
        return have / len(expected)
