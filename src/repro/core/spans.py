"""Public and private spans of self-awareness.

The paper's first framework concept (Section IV) distinguishes *public*
from *private* self-awareness processes, following Morin's "me"/"I"
distinction:

- **private** processes concern knowledge based on phenomena *internal* to
  the individual -- its own state, load, temperature, queue lengths,
  confidence, experiences.  These are typically not externally observable.
- **public** processes concern knowledge based on phenomena *external* to
  the individual -- its environment, the other entities it interacts with,
  and its own appearance and impact on the world.

Every observation, belief and sensor in this library is tagged with a
:class:`Span` so that architectures can reason about (and experiments can
ablate) the two classes independently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Span(enum.Enum):
    """Which class of self-awareness process a phenomenon belongs to."""

    PRIVATE = "private"
    PUBLIC = "public"

    @property
    def morin_pronoun(self) -> str:
        """Morin's subject/object pronoun for the span ("I" vs "me")."""
        return "I" if self is Span.PRIVATE else "me"

    def describe(self) -> str:
        """One-line description for self-explanation."""
        if self is Span.PRIVATE:
            return "knowledge of phenomena internal to the system (subjective, 'I')"
        return "knowledge of phenomena external to the system (objective, 'me')"


@dataclass(frozen=True)
class Scope:
    """Identifies *what* a piece of self-knowledge is about.

    A scope names the subject of knowledge (a metric, an entity, a channel)
    together with its :class:`Span`.  Scopes are hashable and act as keys in
    the knowledge base.

    Parameters
    ----------
    name:
        Dotted identifier of the phenomenon, e.g. ``"cpu.utilisation"`` or
        ``"neighbour.3.load"``.
    span:
        Whether the phenomenon is private (internal) or public (external).
    entity:
        Optional identifier of the other entity the knowledge concerns, for
        interaction-awareness (e.g. a neighbour node id).
    """

    name: str
    span: Span = Span.PRIVATE
    entity: Optional[str] = None

    def is_social(self) -> bool:
        """Whether this scope concerns another entity (interaction-awareness)."""
        return self.entity is not None

    def qualified_name(self) -> str:
        """Fully qualified key, unique across spans and entities."""
        parts = [self.span.value, self.name]
        if self.entity is not None:
            parts.append(f"@{self.entity}")
        return ":".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.qualified_name()


def private(name: str) -> Scope:
    """Shorthand for a private scope (internal phenomenon)."""
    return Scope(name=name, span=Span.PRIVATE)


def public(name: str, entity: Optional[str] = None) -> Scope:
    """Shorthand for a public scope (external phenomenon), optionally social."""
    return Scope(name=name, span=Span.PUBLIC, entity=entity)
