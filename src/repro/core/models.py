"""Self-models: descriptive, predictive and empirical models of self.

Kounev's strand of the literature (Section III) centres on systems that
build *models of themselves and their interactions with their environment*
and use them for run-time reasoning: *self-reflection* (descriptive
models), *self-prediction* (what would happen if ...), and
*self-adaptation* (acting on the models).

This module defines the model interfaces the reasoners consume plus
model implementations that learn purely from run-time experience --
the paper's argument that self-awareness reduces the need for a-priori
domain modelling depends on exactly this: models are *acquired*, not
supplied.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Tuple


class PredictiveModel(ABC):
    """Predicts the metric outcomes of taking an action in a context.

    Concrete models map ``(context, action)`` to a predicted raw metric
    vector.  ``confidence`` reports how much experience backs a given
    prediction, which goal reasoners and the meta level both use.
    """

    @abstractmethod
    def predict(self, context: Mapping[str, float], action: Hashable) -> Dict[str, float]:
        """Predicted raw metrics of ``action`` in ``context``."""

    @abstractmethod
    def update(self, context: Mapping[str, float], action: Hashable,
               outcome: Mapping[str, float]) -> None:
        """Learn from one observed ``(context, action, outcome)`` experience."""

    @abstractmethod
    def confidence(self, context: Mapping[str, float], action: Hashable) -> float:
        """How well-founded a prediction is, in ``[0, 1]``."""

    def reset(self) -> None:
        """Discard all learned state (metacognitive "start over").

        Default: no-op, appropriate for models with nothing learned
        (e.g. fixed priors).  Learning models override this; the
        hierarchical supervisor invokes it when it judges a child's
        knowledge to be stale beyond repair.
        """


@dataclass
class _RunningStats:
    """Incremental mean/variance (Welford) for one metric of one action."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def push(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (x - self.mean)

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self.m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


class EmpiricalActionModel(PredictiveModel):
    """Context-free empirical model: per-action running outcome statistics.

    The simplest acquirable self-model: "when I did A, metrics looked like
    this on average".  An exponential forgetting factor lets the model track
    non-stationary worlds (ongoing change, Section II).

    Parameters
    ----------
    forgetting:
        Per-update exponential forgetting in ``(0, 1]``; ``1.0`` keeps the
        plain running mean, smaller values weight recent outcomes more.
    confidence_scale:
        Number of experiences after which confidence saturates near 1.
    """

    def __init__(self, forgetting: float = 1.0, confidence_scale: float = 10.0) -> None:
        if not 0.0 < forgetting <= 1.0:
            raise ValueError("forgetting must be in (0, 1]")
        if confidence_scale <= 0:
            raise ValueError("confidence_scale must be positive")
        self.forgetting = forgetting
        self.confidence_scale = confidence_scale
        self._means: Dict[Hashable, Dict[str, float]] = {}
        self._counts: Dict[Hashable, float] = {}

    def predict(self, context: Mapping[str, float], action: Hashable) -> Dict[str, float]:
        return dict(self._means.get(action, {}))

    def update(self, context: Mapping[str, float], action: Hashable,
               outcome: Mapping[str, float]) -> None:
        means = self._means.setdefault(action, {})
        # Effective count decays under forgetting so the step size stays
        # bounded below and the model remains plastic.
        count = self._counts.get(action, 0.0) * self.forgetting + 1.0
        self._counts[action] = count
        step = 1.0 / count
        for metric, value in outcome.items():
            old = means.get(metric, value)
            means[metric] = old + step * (value - old)

    def confidence(self, context: Mapping[str, float], action: Hashable) -> float:
        count = self._counts.get(action, 0.0)
        return count / (count + self.confidence_scale)

    def known_actions(self) -> List[Hashable]:
        """Actions with at least one recorded experience."""
        return list(self._means)

    def reset(self) -> None:
        """Forget every recorded experience."""
        self._means.clear()
        self._counts.clear()


class ContextualActionModel(PredictiveModel):
    """Empirical model conditioned on a discretised context.

    Contexts are binned by a caller-supplied ``bin_fn`` (default: round each
    context feature to one decimal); within a bin the model behaves like
    :class:`EmpiricalActionModel`.  This lets systems learn that the same
    action has different effects in different situations -- the minimum
    requirement for anticipating environment change rather than merely
    averaging over it.
    """

    def __init__(
        self,
        forgetting: float = 1.0,
        confidence_scale: float = 5.0,
        bin_fn=None,
    ) -> None:
        self._bin_fn = bin_fn if bin_fn is not None else _default_bin
        self.forgetting = forgetting
        self.confidence_scale = confidence_scale
        self._bins: Dict[Hashable, EmpiricalActionModel] = {}

    def _bin_model(self, context: Mapping[str, float]) -> EmpiricalActionModel:
        key = self._bin_fn(context)
        model = self._bins.get(key)
        if model is None:
            model = EmpiricalActionModel(
                forgetting=self.forgetting, confidence_scale=self.confidence_scale)
            self._bins[key] = model
        return model

    def predict(self, context: Mapping[str, float], action: Hashable) -> Dict[str, float]:
        local = self._bin_model(context).predict(context, action)
        if local:
            return local
        # Fall back to the pooled estimate across bins when the local bin
        # has no experience for this action yet.
        pooled: Dict[str, List[float]] = {}
        for model in self._bins.values():
            for metric, value in model.predict(context, action).items():
                pooled.setdefault(metric, []).append(value)
        return {m: sum(vs) / len(vs) for m, vs in pooled.items()}

    def update(self, context: Mapping[str, float], action: Hashable,
               outcome: Mapping[str, float]) -> None:
        self._bin_model(context).update(context, action, outcome)

    def confidence(self, context: Mapping[str, float], action: Hashable) -> float:
        return self._bin_model(context).confidence(context, action)

    def bin_count(self) -> int:
        """Number of distinct context bins with any experience."""
        return len(self._bins)

    def reset(self) -> None:
        """Forget every bin."""
        self._bins.clear()


def _default_bin(context: Mapping[str, float]) -> Tuple[Tuple[str, float], ...]:
    """Quantise every context feature to 0.25 steps to form a bin key.

    Coarse bins trade precision for sample efficiency: a run-time learner
    sees each situation only a handful of times, and fine-grained context
    keys would leave every bin starved (the knowledge-representation
    trade-off the framework literature calls out).
    """
    return tuple(sorted((k, round(4.0 * float(v)) / 4.0)
                        for k, v in context.items()))


class PriorModel(PredictiveModel):
    """A fixed, design-time model (never learns).

    Baseline for the design-time-knowledge experiment (E10): the classic
    approach encodes the designer's beliefs about action outcomes before
    deployment.  If those beliefs are wrong -- or the world changes -- the
    model stays wrong, which is precisely the failure mode self-awareness
    addresses.

    Parameters
    ----------
    table:
        Mapping of action to predicted raw metric vector.
    stated_confidence:
        The (possibly unwarranted) confidence the designer assigned.
    """

    def __init__(self, table: Mapping[Hashable, Mapping[str, float]],
                 stated_confidence: float = 1.0) -> None:
        self._table = {a: dict(m) for a, m in table.items()}
        self.stated_confidence = stated_confidence

    def predict(self, context: Mapping[str, float], action: Hashable) -> Dict[str, float]:
        return dict(self._table.get(action, {}))

    def update(self, context: Mapping[str, float], action: Hashable,
               outcome: Mapping[str, float]) -> None:
        """A design-time model ignores run-time evidence by definition."""

    def confidence(self, context: Mapping[str, float], action: Hashable) -> float:
        return self.stated_confidence if action in self._table else 0.0


class BlendedModel(PredictiveModel):
    """Prior knowledge blended with run-time experience.

    Predictions interpolate between a :class:`PriorModel` and a learned
    model, weighted by the learned model's confidence: with no experience
    the prior dominates; as evidence accumulates the learned model takes
    over.  This realises the paper's "reduce -- not eliminate -- a-priori
    modelling" framing and is ablated in E10.
    """

    def __init__(self, prior: PredictiveModel, learned: PredictiveModel) -> None:
        self.prior = prior
        self.learned = learned

    def predict(self, context: Mapping[str, float], action: Hashable) -> Dict[str, float]:
        w = self.learned.confidence(context, action)
        learned_pred = self.learned.predict(context, action)
        prior_pred = self.prior.predict(context, action)
        metrics = set(learned_pred) | set(prior_pred)
        blended: Dict[str, float] = {}
        for m in metrics:
            lp = learned_pred.get(m)
            pp = prior_pred.get(m)
            if lp is None:
                blended[m] = pp  # type: ignore[assignment]
            elif pp is None:
                blended[m] = lp
            else:
                blended[m] = w * lp + (1.0 - w) * pp
        return blended

    def update(self, context: Mapping[str, float], action: Hashable,
               outcome: Mapping[str, float]) -> None:
        self.learned.update(context, action, outcome)

    def confidence(self, context: Mapping[str, float], action: Hashable) -> float:
        return max(self.learned.confidence(context, action),
                   self.prior.confidence(context, action) * 0.5)

    def reset(self) -> None:
        """Forget the learned component; the prior is design-time state."""
        self.learned.reset()


class ModelQualityTracker:
    """Tracks a predictive model's own accuracy: the meta level's raw data.

    Records the absolute prediction error each time an outcome arrives and
    maintains an exponentially weighted error per metric.  Meta-self-aware
    systems read this to decide whether their model of self is still fit
    for purpose (e.g. after concept drift).
    """

    def __init__(self, alpha: float = 0.1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._ewma_error: Dict[str, float] = {}
        self.observations = 0

    def record(self, predicted: Mapping[str, float], actual: Mapping[str, float]) -> float:
        """Record one prediction/outcome pair; returns the mean abs error."""
        self.observations += 1
        errors = []
        for metric, actual_value in actual.items():
            if metric not in predicted:
                continue
            err = abs(predicted[metric] - actual_value)
            errors.append(err)
            old = self._ewma_error.get(metric, err)
            self._ewma_error[metric] = old + self.alpha * (err - old)
        return sum(errors) / len(errors) if errors else math.nan

    def error(self, metric: str) -> float:
        """Current smoothed absolute error for ``metric`` (NaN if unseen)."""
        return self._ewma_error.get(metric, math.nan)

    def mean_error(self) -> float:
        """Mean smoothed error across all tracked metrics (NaN if none)."""
        if not self._ewma_error:
            return math.nan
        return sum(self._ewma_error.values()) / len(self._ewma_error)
