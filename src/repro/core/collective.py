"""Collective self-awareness without a global component.

The framework's third concept (Section IV): self-awareness can be a
property of a collective even when *no single component* holds global
knowledge of the whole system (Mitchell 2005).  This module provides the
machinery the collective experiments use:

- :class:`CommunicationNetwork` -- who can talk to whom, with message
  accounting and unreliable delivery.
- :class:`GossipEstimator` -- fully decentralised awareness of a global
  property (here: the mean of a per-node quantity) via push-pull gossip
  averaging; every node ends up *approximately* aware of the collective
  state, yet none is special.
- :class:`CentralAggregator` -- the classic alternative: one hub gathers
  every value, computes the exact answer and broadcasts it.  Exact, but a
  single point of failure and a message hot-spot.
- :class:`HierarchicalAggregator` -- the middle ground from the
  hierarchical self-aware building-block literature: a tree of
  aggregators.

Experiment E9 compares the three on accuracy, message cost, and
robustness to the loss of nodes (including the hub).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np


class CommunicationNetwork:
    """An undirected communication topology with message accounting.

    Parameters
    ----------
    graph:
        ``networkx`` graph whose nodes are entity names.
    loss_rate:
        Probability that any single message is lost in transit.
    rng:
        Random generator for loss draws.
    """

    def __init__(self, graph: nx.Graph, loss_rate: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError("loss_rate must be in [0, 1]")
        self.graph = graph
        self.loss_rate = loss_rate
        self._rng = rng if rng is not None else np.random.default_rng()
        self.messages_sent = 0
        self.messages_delivered = 0
        self._down: set = set()

    @classmethod
    def ring(cls, names: Sequence[str], **kwargs) -> "CommunicationNetwork":
        """Ring topology over ``names``."""
        g = nx.cycle_graph(len(names))
        return cls(nx.relabel_nodes(g, dict(enumerate(names))), **kwargs)

    @classmethod
    def random_geometric(cls, names: Sequence[str], radius: float = 0.35,
                         seed: int = 0, **kwargs) -> "CommunicationNetwork":
        """Connected random geometric topology (retries radius upward)."""
        n = len(names)
        r = radius
        for _ in range(20):
            g = nx.random_geometric_graph(n, r, seed=seed)
            if n <= 1 or nx.is_connected(g):
                break
            r *= 1.25
        return cls(nx.relabel_nodes(g, dict(enumerate(names))), **kwargs)

    @classmethod
    def star(cls, hub: str, leaves: Sequence[str], **kwargs) -> "CommunicationNetwork":
        """Star topology: every leaf talks only to ``hub``."""
        g = nx.Graph()
        g.add_node(hub)
        for leaf in leaves:
            g.add_edge(hub, leaf)
        return cls(g, **kwargs)

    def fail_node(self, name: str) -> None:
        """Mark a node as failed: it neither sends nor receives."""
        self._down.add(name)

    def restore_node(self, name: str) -> None:
        """Bring a failed node back."""
        self._down.discard(name)

    def is_up(self, name: str) -> bool:
        """Whether ``name`` is currently operational."""
        return name not in self._down

    def neighbours(self, name: str) -> List[str]:
        """Operational neighbours of ``name`` (empty if it is down)."""
        if name in self._down or name not in self.graph:
            return []
        return [n for n in self.graph.neighbors(name) if n not in self._down]

    def transmit(self, sender: str, receiver: str) -> bool:
        """Attempt one message; returns whether it was delivered."""
        self.messages_sent += 1
        if sender in self._down or receiver in self._down:
            return False
        if not self.graph.has_edge(sender, receiver):
            return False
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            return False
        self.messages_delivered += 1
        return True


@dataclass
class AggregationResult:
    """Outcome of one aggregation round/protocol run."""

    estimates: Dict[str, float]
    truth: float
    messages: int
    rounds: int

    def errors(self) -> Dict[str, float]:
        """Absolute estimation error per participating node."""
        return {n: abs(v - self.truth) for n, v in self.estimates.items()}

    @property
    def max_error(self) -> float:
        """Worst error across nodes (NaN when nobody has an estimate)."""
        errs = self.errors()
        return max(errs.values()) if errs else math.nan

    @property
    def mean_error(self) -> float:
        """Mean error across nodes (NaN when nobody has an estimate)."""
        errs = self.errors()
        return sum(errs.values()) / len(errs) if errs else math.nan

    @property
    def aware_fraction(self) -> float:
        """Fraction of participating nodes holding *some* estimate."""
        return 1.0 if self.estimates else 0.0


def _live_truth(values: Mapping[str, float], network: CommunicationNetwork) -> float:
    live = [v for n, v in values.items() if network.is_up(n)]
    return sum(live) / len(live) if live else math.nan


class GossipEstimator:
    """Push-pull gossip averaging: decentralised collective awareness.

    Every node starts from its own local value.  Each round every live
    node exchanges estimates with one random live neighbour and both adopt
    the pairwise mean.  Estimates provably converge to the mean of the
    live nodes' initial values on a connected topology; no node is
    privileged and the protocol survives any single failure.
    """

    def __init__(self, network: CommunicationNetwork,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.network = network
        self._rng = rng if rng is not None else np.random.default_rng()

    def run(self, values: Mapping[str, float], rounds: int = 20) -> AggregationResult:
        """Run ``rounds`` of gossip from local ``values``."""
        start_messages = self.network.messages_sent
        estimates = {n: float(v) for n, v in values.items()
                     if self.network.is_up(n)}
        truth = _live_truth(values, self.network)
        for _ in range(rounds):
            order = list(estimates)
            self._rng.shuffle(order)
            for name in order:
                if not self.network.is_up(name):
                    continue
                neigh = [n for n in self.network.neighbours(name) if n in estimates]
                if not neigh:
                    continue
                partner = neigh[int(self._rng.integers(len(neigh)))]
                # Push-pull: two messages per exchange, both must arrive
                # for the symmetric update (a lost leg aborts the swap).
                ok_fwd = self.network.transmit(name, partner)
                ok_bwd = self.network.transmit(partner, name)
                if ok_fwd and ok_bwd:
                    mean = 0.5 * (estimates[name] + estimates[partner])
                    estimates[name] = mean
                    estimates[partner] = mean
        return AggregationResult(
            estimates=estimates, truth=truth,
            messages=self.network.messages_sent - start_messages,
            rounds=rounds)

    def rounds_to_converge(self, values: Mapping[str, float], tolerance: float = 0.05,
                           max_rounds: int = 200) -> int:
        """Rounds until every estimate is within ``tolerance`` of the mean.

        Returns ``max_rounds`` when the tolerance is never met.
        """
        estimates = {n: float(v) for n, v in values.items()
                     if self.network.is_up(n)}
        truth = _live_truth(values, self.network)
        for rnd in range(1, max_rounds + 1):
            order = list(estimates)
            self._rng.shuffle(order)
            for name in order:
                neigh = [n for n in self.network.neighbours(name) if n in estimates]
                if not neigh:
                    continue
                partner = neigh[int(self._rng.integers(len(neigh)))]
                if self.network.transmit(name, partner) and \
                        self.network.transmit(partner, name):
                    mean = 0.5 * (estimates[name] + estimates[partner])
                    estimates[name] = mean
                    estimates[partner] = mean
            if estimates and all(abs(v - truth) <= tolerance for v in estimates.values()):
                return rnd
        return max_rounds


class CentralAggregator:
    """One hub collects every value, computes exactly, broadcasts back.

    The "global component" the framework says is *not* required.  Exact
    and cheap in rounds, but: 2(N-1) messages through one node per round,
    and when the hub fails, *nobody* has any awareness at all.
    """

    def __init__(self, network: CommunicationNetwork, hub: str) -> None:
        self.network = network
        self.hub = hub

    def run(self, values: Mapping[str, float], rounds: int = 1) -> AggregationResult:
        """Collect-and-broadcast; extra ``rounds`` just repeat the exchange."""
        start_messages = self.network.messages_sent
        truth = _live_truth(values, self.network)
        estimates: Dict[str, float] = {}
        for _ in range(rounds):
            if not self.network.is_up(self.hub):
                estimates = {}
                continue
            received = {}
            for name, value in values.items():
                if name == self.hub:
                    if self.network.is_up(name):
                        received[name] = value
                    continue
                if self.network.transmit(name, self.hub):
                    received[name] = value
            if not received:
                estimates = {}
                continue
            answer = sum(received.values()) / len(received)
            estimates = {self.hub: answer}
            for name in values:
                if name != self.hub and self.network.transmit(self.hub, name):
                    estimates[name] = answer
        return AggregationResult(
            estimates=estimates, truth=truth,
            messages=self.network.messages_sent - start_messages, rounds=rounds)


class HierarchicalAggregator:
    """Tree aggregation: hierarchy of self-aware building blocks.

    Values flow up a balanced ``fanout``-ary tree of the participating
    nodes; each internal node holds awareness of its subtree; the root's
    (exact, for the live subtree) answer flows back down.  Message cost is
    2(N-1) like the central scheme, but no single node handles more than
    ``fanout`` + 1 messages, and a failure only blinds its subtree.
    """

    def __init__(self, network: CommunicationNetwork, members: Sequence[str],
                 fanout: int = 2) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.network = network
        self.members = list(members)
        self.fanout = fanout

    def _children(self, index: int) -> List[int]:
        base = index * self.fanout
        return [base + k for k in range(1, self.fanout + 1)
                if base + k < len(self.members)]

    def run(self, values: Mapping[str, float], rounds: int = 1) -> AggregationResult:
        """Aggregate up the implicit tree and broadcast the root's answer."""
        start_messages = self.network.messages_sent
        truth = _live_truth(values, self.network)
        estimates: Dict[str, float] = {}
        for _ in range(rounds):
            sums: Dict[int, Tuple[float, int]] = {}

            def collect(index: int) -> Optional[Tuple[float, int]]:
                name = self.members[index]
                if not self.network.is_up(name):
                    return None
                total, count = float(values.get(name, 0.0)), 1
                for child in self._children(index):
                    child_result = collect(child)
                    if child_result is None:
                        continue
                    # Tree links are logical: charge one message per hop.
                    self.network.messages_sent += 1
                    self.network.messages_delivered += 1
                    total += child_result[0]
                    count += child_result[1]
                sums[index] = (total, count)
                return total, count

            root_result = collect(0)
            if root_result is None or root_result[1] == 0:
                estimates = {}
                continue
            answer = root_result[0] / root_result[1]
            estimates = {}

            def broadcast(index: int) -> None:
                name = self.members[index]
                if not self.network.is_up(name):
                    return
                estimates[name] = answer
                for child in self._children(index):
                    if self.network.is_up(self.members[child]):
                        self.network.messages_sent += 1
                        self.network.messages_delivered += 1
                        broadcast(child)

            broadcast(0)
        return AggregationResult(
            estimates=estimates, truth=truth,
            messages=self.network.messages_sent - start_messages, rounds=rounds)
