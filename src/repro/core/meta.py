"""Meta-self-awareness: being aware of one's own awareness.

Morin's highest level (Section IV): advanced organisms are aware *that*
they are self-aware -- in computational terms, a system that monitors the
quality of its own models and reasoning processes and can change them.
Cox's metacognitive loop (Section III) is the engineering reading: learn
and reason about, and therefore act on, one's own reasoning.

:class:`MetaReasoner` wraps a portfolio of sub-reasoners (strategies).
It delegates decisions to the active strategy while monitoring each
strategy's *realised* utility; when the active strategy underperforms --
detected either by a pluggable drift detector on the utility stream or by
sliding-window comparison against the portfolio -- it switches.  The
switching trigger is an explicit design-choice knob (DESIGN.md choice 3,
ablated in E8).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, List, Mapping, Optional, Protocol, Sequence

from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from .reasoner import Decision, Reasoner


class DriftDetector(Protocol):
    """Anything that consumes a numeric stream and flags change points."""

    def update(self, value: float) -> bool:
        """Feed one value; return ``True`` when a change is detected."""


@dataclass
class StrategyStats:
    """Per-strategy bookkeeping the meta level maintains about itself."""

    decisions: int = 0
    active_steps: int = 0
    window: Deque[float] = field(default_factory=lambda: deque(maxlen=64))

    def record(self, utility: float) -> None:
        self.decisions += 1
        self.window.append(utility)

    @property
    def recent_utility(self) -> float:
        """Mean realised utility over the recent window (NaN when empty)."""
        if not self.window:
            return math.nan
        return sum(self.window) / len(self.window)


@dataclass
class SwitchEvent:
    """A recorded strategy switch, for self-explanation."""

    time: float
    from_strategy: str
    to_strategy: str
    reason: str


class MetaReasoner(Reasoner):
    """A reasoner about reasoners: monitors and switches its own strategy.

    Parameters
    ----------
    strategies:
        Named portfolio of sub-reasoners.  All of them receive ``learn``
        feedback (so dormant strategies stay warm); only the active one
        decides.
    initial:
        Name of the initially active strategy (default: first).
    detector_factory:
        Zero-argument callable building a fresh drift detector for the
        active strategy's utility stream; ``None`` disables drift-based
        switching.
    probe_interval:
        Every ``probe_interval`` decisions, one decision is delegated to a
        non-active strategy chosen round-robin, so the meta level keeps
        fresh evidence about alternatives.  ``0`` disables probing.
    switch_margin:
        A rival must beat the active strategy's recent utility by this
        margin before a window-comparison switch fires (hysteresis against
        thrashing).
    cooldown:
        Minimum number of decisions between switches.
    """

    def __init__(
        self,
        strategies: Mapping[str, Reasoner],
        initial: Optional[str] = None,
        detector_factory=None,
        probe_interval: int = 10,
        switch_margin: float = 0.05,
        cooldown: int = 20,
    ) -> None:
        if not strategies:
            raise ValueError("need at least one strategy")
        self.strategies: Dict[str, Reasoner] = dict(strategies)
        self.active = initial if initial is not None else next(iter(self.strategies))
        if self.active not in self.strategies:
            raise ValueError(f"unknown initial strategy {self.active!r}")
        self._detector_factory = detector_factory
        self._detector = detector_factory() if detector_factory else None
        self.probe_interval = probe_interval
        self.switch_margin = switch_margin
        self.cooldown = cooldown
        self.stats: Dict[str, StrategyStats] = {
            name: StrategyStats() for name in self.strategies}
        self.switches: List[SwitchEvent] = []
        self._decision_count = 0
        self._since_switch = 0
        self._probe_cursor = 0
        self._last_delegate: Optional[str] = None
        # Provenance: seq ids of the recent ``meta.utility`` events --
        # the evidence a switch decision is based on.  ``meta.switch``
        # events cite them as causes, and the core loop cites the last
        # switch itself (see ``last_switch_seq``).
        self._utility_seqs: Deque[int] = deque(maxlen=8)
        self.last_switch_seq: Optional[int] = None

    # -- awareness of own awareness ---------------------------------------

    def self_assessment(self) -> Dict[str, float]:
        """The meta level's current view of its own strategies' quality."""
        return {name: st.recent_utility for name, st in self.stats.items()}

    def describe(self) -> str:
        """Narrative of the meta level's state, for self-explanation."""
        assessment = ", ".join(
            f"{n}={u:.3f}" if not math.isnan(u) else f"{n}=?"
            for n, u in self.self_assessment().items())
        return (f"active strategy '{self.active}' after "
                f"{len(self.switches)} switch(es); recent utilities: {assessment}")

    # -- Reasoner interface -------------------------------------------------

    def decide(self, time: float, context: Mapping[str, float],
               actions: Sequence[Hashable]) -> Decision:
        self._decision_count += 1
        self._since_switch += 1
        delegate_name = self.active
        probing = False
        if (self.probe_interval > 0 and len(self.strategies) > 1
                and self._decision_count % self.probe_interval == 0):
            others = [n for n in self.strategies if n != self.active]
            delegate_name = others[self._probe_cursor % len(others)]
            self._probe_cursor += 1
            probing = True
        self._last_delegate = delegate_name
        decision = self.strategies[delegate_name].decide(time, context, actions)
        self.stats[delegate_name].active_steps += 1
        suffix = (f" [meta: probing strategy '{delegate_name}']" if probing
                  else f" [meta: strategy '{delegate_name}']")
        decision.reason = decision.reason + suffix
        return decision

    def learn(self, context: Mapping[str, float], action: Hashable,
              outcome: Mapping[str, float]) -> None:
        for strategy in self.strategies.values():
            strategy.learn(context, action, outcome)

    # -- the metacognitive loop -------------------------------------------

    def observe_utility(self, time: float, utility: float) -> Optional[SwitchEvent]:
        """Feed the realised utility of the last decision; maybe switch.

        Call once per step after the outcome is known.  Returns the switch
        event when one occurred.
        """
        credited = self._last_delegate if self._last_delegate is not None else self.active
        self.stats[credited].record(utility)
        if obs_events.enabled():
            # The meta level measures its own reasoners through the same
            # telemetry substrate everything else uses: one event per
            # observed utility, plus a per-strategy utility histogram.
            observed = obs_events.emit(
                "meta.utility", time=time, strategy=credited,
                active=self.active, utility=utility)
            if observed is not None:
                self._utility_seqs.append(observed.seq)
            obs_metrics.histogram("meta.strategy_utility",
                                  strategy=credited).observe(utility)

        if len(self.strategies) < 2 or self._since_switch < self.cooldown:
            return None

        # Trigger A: drift detector on the active strategy's utility stream.
        if self._detector is not None and credited == self.active:
            if self._detector.update(utility):
                return self._switch(time, reason="drift detected in own utility stream")

        # Trigger B: a rival's recent utility beats the active one's by margin.
        active_u = self.stats[self.active].recent_utility
        if not math.isnan(active_u):
            best_name, best_u = self.active, active_u
            for name, st in self.stats.items():
                u = st.recent_utility
                if name != self.active and not math.isnan(u) and u > best_u:
                    best_name, best_u = name, u
            if best_name != self.active and best_u - active_u > self.switch_margin:
                return self._switch(
                    time, to=best_name,
                    reason=(f"strategy '{best_name}' recently outperforms "
                            f"'{self.active}' by {best_u - active_u:.3f}"))
        return None

    def _switch(self, time: float, to: Optional[str] = None,
                reason: str = "") -> SwitchEvent:
        """Change the active strategy (to ``to``, or the best-looking rival)."""
        if to is None:
            candidates = {n: st.recent_utility for n, st in self.stats.items()
                          if n != self.active and not math.isnan(st.recent_utility)}
            if candidates:
                to = max(candidates, key=candidates.get)
            else:
                others = [n for n in self.strategies if n != self.active]
                to = others[0]
        event = SwitchEvent(time=time, from_strategy=self.active,
                            to_strategy=to, reason=reason)
        self.switches.append(event)
        self.active = to
        self._since_switch = 0
        if self._detector_factory is not None:
            self._detector = self._detector_factory()
        if obs_events.enabled():
            # The switch decision cites the utility observations it was
            # based on -- the causal chain the explanation store resolves.
            emitted = obs_events.emit(
                "meta.switch", time=time,
                from_strategy=event.from_strategy,
                to_strategy=event.to_strategy,
                reason=event.reason,
                causes=tuple(self._utility_seqs))
            if emitted is not None:
                self.last_switch_seq = emitted.seq
            obs_metrics.counter("meta.switches").increment()
        return event


class SwitchHistory(List[SwitchEvent]):
    """A switch sequence that knows whether its source stream was complete.

    Behaves exactly like the list :func:`switches_from_events` used to
    return, plus a ``truncated`` flag: ``True`` when the stream showed
    seq gaps (ring-buffer overflow, partial trace) or the caller passed
    a non-zero drop count -- the reconstruction may then be missing
    switches and must not be presented as the full history.
    """

    def __init__(self, switches: Sequence[SwitchEvent] = (),
                 truncated: bool = False) -> None:
        super().__init__(switches)
        self.truncated = truncated


def switches_from_events(events, dropped: int = 0) -> SwitchHistory:
    """Reconstruct the switch history from a telemetry event stream.

    Accepts any iterable of :class:`repro.obs.events.Event` (e.g.
    ``bus.events()`` or a parsed JSONL trace's event dicts) and returns
    the :class:`SwitchHistory` it encodes -- the meta level's decisions
    are reproducible from telemetry alone, with no access to the
    reasoner object.

    Pass the *full* stream (``bus.events()`` with no name filter, or
    every trace record): seq discontinuities are how a lossy stream is
    detected, and any gap -- or a non-zero ``dropped`` count, e.g.
    ``bus.dropped`` -- sets the result's ``truncated`` flag instead of
    returning a silently incomplete history.
    """
    switches = SwitchHistory(truncated=bool(dropped))
    next_seq: Optional[int] = None
    for event in events:
        if isinstance(event, Mapping):
            name, fields = event.get("event"), event
            seq = event.get("seq")
        else:
            name, fields, seq = event.name, event.fields, event.seq
        if seq is not None:
            seq = int(seq)
            if next_seq is not None and seq != next_seq:
                switches.truncated = True
            next_seq = seq + 1
        if name != "meta.switch":
            continue
        switches.append(SwitchEvent(
            time=fields["time"], from_strategy=fields["from_strategy"],
            to_strategy=fields["to_strategy"], reason=fields["reason"]))
    return switches
