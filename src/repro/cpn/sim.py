"""The packet-forwarding simulation for the CPN substrate."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from ..faults.injector import FaultInjector

import numpy as np

from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from .routing import CPNRouter, QoSClass, Router
from .topology import CPNetwork


@dataclass(frozen=True)
class Flow:
    """One persistent traffic demand.

    ``qos`` is the flow's own quality-of-service goal (CPN routes each
    class differently over the same measurements); ``None`` uses the
    router's default weighting.
    """

    source: int
    dest: int
    packets_per_step: int = 1
    qos: Optional[QoSClass] = None

    def __post_init__(self) -> None:
        if self.source == self.dest:
            raise ValueError("source and dest must differ")
        if self.packets_per_step < 1:
            raise ValueError("packets_per_step must be at least 1")


@dataclass(slots=True)
class PacketOutcome:
    """Fate of one forwarded packet."""

    delivered: bool
    delay: float
    hops: int


@dataclass(slots=True)
class RoutingStepRecord:
    """Per-step aggregates."""

    time: float
    sent: int
    delivered: int
    mean_delay: float
    attack_active: bool


@dataclass
class RoutingResult:
    """Outcome of a routing run."""

    records: List[RoutingStepRecord]

    def delivery_rate(self, t0: float = -math.inf, t1: float = math.inf) -> float:
        """Fraction of packets delivered within ``[t0, t1)``."""
        sent = sum(r.sent for r in self.records if t0 <= r.time < t1)
        delivered = sum(r.delivered for r in self.records if t0 <= r.time < t1)
        return delivered / sent if sent else math.nan

    def mean_delay(self, t0: float = -math.inf, t1: float = math.inf) -> float:
        """Mean delivered-packet delay within ``[t0, t1)``."""
        delays, weights = [], []
        for r in self.records:
            if t0 <= r.time < t1 and r.delivered > 0:
                delays.append(r.mean_delay)
                weights.append(r.delivered)
        if not delays:
            return math.nan
        return float(np.average(delays, weights=weights))

    def attack_window(self) -> Tuple[float, float]:
        """The (start, end) of the attack period seen in the records."""
        active = [r.time for r in self.records if r.attack_active]
        if not active:
            return (math.nan, math.nan)
        return (min(active), max(active) + 1.0)


def forward_packet(network: CPNetwork, router: Router, source: int, dest: int,
                   t: float, max_hops: Optional[int] = None,
                   explore: bool = False,
                   qos: Optional[QoSClass] = None,
                   faults: Optional["FaultInjector"] = None) -> PacketOutcome:
    """Forward one packet hop-by-hop; returns its fate.

    Lost packets and TTL-expired packets count as undelivered.  The
    router's ``observe_hop``/``observe_loss`` hooks fire along the way,
    which is how self-aware routers measure the QoS of their choices.
    ``explore=True`` routes via :meth:`CPNRouter.explore_hop` -- a smart
    packet gathering knowledge rather than carrying payload.

    Active ``link_degrade`` faults scale every hop delay and force extra
    packet losses; both are *observed* through the usual hooks, so
    measuring routers adapt to injected degradation like any other
    disturbance.
    """
    max_hops = max_hops if max_hops is not None else 4 * len(network.nodes())
    node = source
    previous: Optional[int] = None
    total_delay = 0.0
    hops = 0
    exploring = explore and isinstance(router, CPNRouter)
    while node != dest:
        if hops >= max_hops:
            return PacketOutcome(delivered=False, delay=total_delay, hops=hops)
        if exploring:
            nxt = router.explore_hop(node, dest, t, qos=qos, avoid=previous)
        else:
            nxt = router.next_hop(node, dest, t, qos=qos, avoid=previous)
        if nxt is None:
            return PacketOutcome(delivered=False, delay=total_delay, hops=hops)
        hop_delay = network.current_delay(node, nxt, t)
        if faults is not None:
            hop_delay *= faults.link_factor()
        if network.sample_loss(node, nxt, t) or (
                faults is not None and faults.link_lost()):
            if isinstance(router, CPNRouter):
                router.observe_loss(node, nxt, dest, t)
            return PacketOutcome(delivered=False,
                                 delay=total_delay + hop_delay, hops=hops + 1)
        total_delay += hop_delay
        router.observe_hop(node, nxt, dest, hop_delay, t)
        previous = node
        node = nxt
        hops += 1
    return PacketOutcome(delivered=True, delay=total_delay, hops=hops)


def routing_step(network: CPNetwork, router: Router, flows: Sequence[Flow],
                 t: float,
                 smart_packets_per_flow: int = 2,
                 faults: Optional["FaultInjector"] = None) -> RoutingStepRecord:
    """One simulation step: smart packets, payload packets, aggregates.

    Extracted from :func:`run_routing` so that ``repro.bench`` can time
    the per-step routing kernel directly; the loop in ``run_routing``
    calls this verbatim.
    """
    if faults is not None:
        faults.begin_step(t)
    router.new_step(t)
    if isinstance(router, CPNRouter):
        for flow in flows:
            for _ in range(smart_packets_per_flow):
                forward_packet(network, router, flow.source, flow.dest,
                               t, explore=True, qos=flow.qos, faults=faults)
    sent = delivered = 0
    delay_sum = 0.0
    traced = obs_events.enabled()
    for flow in flows:
        for _ in range(flow.packets_per_step):
            sent += 1
            outcome = forward_packet(network, router, flow.source,
                                     flow.dest, t, qos=flow.qos,
                                     faults=faults)
            if outcome.delivered:
                delivered += 1
                delay_sum += outcome.delay
                if traced:
                    obs_metrics.histogram("cpn.packet_delay").observe(
                        outcome.delay)
    if traced:
        obs_metrics.counter("steps", sim="cpn").increment()
        obs_metrics.counter("cpn.packets_sent").increment(sent)
        obs_metrics.counter("cpn.packets_delivered").increment(delivered)
        obs_events.emit("cpn.step", time=t, sent=sent,
                        delivered=delivered,
                        attack_active=network.attack_active(t))
    return RoutingStepRecord(
        time=t, sent=sent, delivered=delivered,
        mean_delay=delay_sum / delivered if delivered else math.nan,
        attack_active=network.attack_active(t))


def run_routing(network: CPNetwork, router: Router, flows: Sequence[Flow],
                steps: int = 500,
                smart_packets_per_flow: int = 2,
                faults: Optional["FaultInjector"] = None) -> RoutingResult:
    """Drive ``flows`` through ``network`` under ``router`` for ``steps``.

    For a :class:`CPNRouter`, each flow additionally emits
    ``smart_packets_per_flow`` exploring packets per step; they refresh the
    router's knowledge but do not count toward the QoS statistics (they
    carry no payload).

    Deprecated shim: use :class:`repro.api.CPNSimulator` instead.
    """
    import warnings
    warnings.warn(
        "run_routing is deprecated; use repro.api.CPNSimulator",
        DeprecationWarning, stacklevel=2)
    if not flows:
        raise ValueError("need at least one flow")
    from ..api.adapters import CPNSimulator
    from ..api.configs import CPNConfig
    return CPNSimulator(
        CPNConfig(steps=steps, smart_packets_per_flow=smart_packets_per_flow),
        network=network, router=router, flows=list(flows),
        faults=faults).run()


def default_flows(network: CPNetwork, n_flows: int = 6,
                  seed: int = 0) -> List[Flow]:
    """Random distinct source/destination pairs."""
    rng = np.random.default_rng(seed)
    nodes = network.nodes()
    flows: List[Flow] = []
    while len(flows) < n_flows:
        s, d = rng.choice(nodes, size=2, replace=False)
        flows.append(Flow(source=int(s), dest=int(d)))
    return flows
