"""Cognitive packet network substrate (paper refs [38], [39]).

A hop-by-hop packet-forwarding simulator on dynamic topologies.  The
self-aware router (Q-routing with smart-packet exploration) continuously
monitors the delay and loss its choices achieve and re-routes around
degradation and denial-of-service attacks; baselines are design-time
static shortest paths and an omniscient oracle.  Experiment E6.
"""

from .routing import (CPNRouter, DEFAULT_QOS, DELAY_SENSITIVE,
                      LOSS_SENSITIVE, OracleRouter, QoSClass, Router,
                      StaticRouter)
from .sim import (Flow, PacketOutcome, RoutingResult, RoutingStepRecord,
                  default_flows, forward_packet, run_routing)
from .topology import CPNetwork, LinkDisturbance

__all__ = [
    "CPNRouter", "DEFAULT_QOS", "DELAY_SENSITIVE", "LOSS_SENSITIVE",
    "OracleRouter", "QoSClass", "Router", "StaticRouter",
    "Flow", "PacketOutcome", "RoutingResult", "RoutingStepRecord",
    "default_flows", "forward_packet", "run_routing",
    "CPNetwork", "LinkDisturbance",
]
