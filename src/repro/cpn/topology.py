"""Network topology with time-varying link quality and attack injection.

The cognitive packet network substrate (paper refs [38], [39]).  Links
carry a base propagation delay and a loss probability; both can be
degraded at run time, either by scheduled *degradation events* (link
quality wandering, maintenance, congestion) or by a *denial-of-service
attack* centred on a victim node, which inflates delay and loss on every
link in the victim's neighbourhood -- the scenario of Gelenbe & Loukas'
self-aware DoS defence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

Edge = Tuple[int, int]


def _canonical(u: int, v: int) -> Edge:
    return (u, v) if u <= v else (v, u)


@dataclass
class LinkDisturbance:
    """A time-bounded multiplier on one link's delay and loss."""

    edge: Edge
    start: float
    duration: float
    delay_factor: float = 10.0
    loss_add: float = 0.0

    def active(self, t: float) -> bool:
        return self.start <= t < self.start + self.duration


class CPNetwork:
    """A communication graph with dynamic per-link delay and loss.

    Parameters
    ----------
    graph:
        Undirected connected graph; edges get ``delay`` (base propagation
        delay) and ``loss`` (base loss probability) attributes if absent.
    rng:
        Random generator for construction and loss sampling.
    """

    def __init__(self, graph: nx.Graph,
                 rng: Optional[np.random.Generator] = None) -> None:
        if graph.number_of_nodes() < 2:
            raise ValueError("need at least 2 nodes")
        if not nx.is_connected(graph):
            raise ValueError("graph must be connected")
        self.graph = graph
        self._rng = rng if rng is not None else np.random.default_rng()
        for u, v, data in graph.edges(data=True):
            data.setdefault("delay", 1.0)
            data.setdefault("loss", 0.005)
        self.disturbances: List[LinkDisturbance] = []
        self._attacked_node: Optional[int] = None
        self._attack_window: Tuple[float, float] = (math.inf, math.inf)
        self._attack_delay_factor = 5.0
        self._attack_loss_add = 0.3
        self._active_cache: Tuple[float, List[LinkDisturbance]] = (math.nan, [])

    @classmethod
    def random_geometric(cls, n: int = 30, radius: float = 0.3,
                         seed: int = 0, delay_scale: float = 4.0) -> "CPNetwork":
        """Connected random geometric network; delay proportional to length."""
        rng = np.random.default_rng(seed)
        r = radius
        for _ in range(30):
            g = nx.random_geometric_graph(n, r, seed=seed)
            if nx.is_connected(g):
                break
            r *= 1.2
        pos = nx.get_node_attributes(g, "pos")
        for u, v in g.edges:
            dist = math.hypot(pos[u][0] - pos[v][0], pos[u][1] - pos[v][1])
            g[u][v]["delay"] = 0.5 + delay_scale * dist
            g[u][v]["loss"] = 0.002 + 0.01 * float(rng.random())
        return cls(g, rng=rng)

    @classmethod
    def grid(cls, rows: int = 4, cols: int = 5, seed: int = 0) -> "CPNetwork":
        """Grid network with unit-ish delays."""
        g = nx.grid_2d_graph(rows, cols)
        g = nx.convert_node_labels_to_integers(g)
        rng = np.random.default_rng(seed)
        for u, v in g.edges:
            g[u][v]["delay"] = 1.0 + 0.2 * float(rng.random())
            g[u][v]["loss"] = 0.003
        return cls(g, rng=rng)

    # -- dynamics -------------------------------------------------------------

    def add_disturbance(self, disturbance: LinkDisturbance) -> None:
        """Schedule a link degradation event."""
        edge = _canonical(*disturbance.edge)
        if not self.graph.has_edge(*edge):
            raise ValueError(f"no such edge: {edge}")
        self.disturbances.append(disturbance)
        self._active_cache = (math.nan, [])

    def schedule_random_disturbances(self, horizon: float, count: int,
                                     duration: float = 80.0,
                                     delay_factor: float = 8.0) -> None:
        """Scatter ``count`` degradation events over ``[0, horizon)``."""
        edges = list(self.graph.edges)
        for _ in range(count):
            edge = edges[int(self._rng.integers(len(edges)))]
            start = float(self._rng.uniform(0.0, horizon))
            self.add_disturbance(LinkDisturbance(
                edge=_canonical(*edge), start=start, duration=duration,
                delay_factor=delay_factor))

    def launch_attack(self, victim: int, start: float, duration: float,
                      delay_factor: float = 5.0, loss_add: float = 0.3) -> None:
        """Schedule a DoS attack flooding the victim's neighbourhood."""
        if victim not in self.graph:
            raise ValueError(f"no such node: {victim}")
        self._attacked_node = victim
        self._attack_window = (start, start + duration)
        self._attack_delay_factor = delay_factor
        self._attack_loss_add = loss_add

    def attack_active(self, t: float) -> bool:
        """Whether the scheduled DoS attack is in progress at ``t``."""
        return self._attack_window[0] <= t < self._attack_window[1]

    def _edge_touches_victim(self, u: int, v: int) -> bool:
        return self._attacked_node is not None and \
            self._attacked_node in (u, v)

    # -- queries ----------------------------------------------------------------

    def _active_disturbances(self, t: float) -> List[LinkDisturbance]:
        """Disturbances active at ``t``, cached per distinct time.

        Packets forwarded within one step all query the same ``t``;
        filtering the schedule once per step (in schedule order, so the
        multiplier application order is unchanged) instead of once per
        hop removes the dominant per-hop cost on disturbed networks.
        """
        cached_t, cached = self._active_cache
        if cached_t != t:
            cached = [d for d in self.disturbances if d.active(t)]
            self._active_cache = (t, cached)
        return cached

    def base_delay(self, u: int, v: int) -> float:
        """Design-time delay of the link (what static routing was built on)."""
        return float(self.graph[u][v]["delay"])

    def current_delay(self, u: int, v: int, t: float) -> float:
        """True delay of the link at time ``t``, with all dynamics applied."""
        delay = self.base_delay(u, v)
        active = self._active_disturbances(t)
        if active:
            edge = _canonical(u, v)
            for d in active:
                if d.edge == edge:
                    delay *= d.delay_factor
        if self.attack_active(t) and self._edge_touches_victim(u, v):
            delay *= self._attack_delay_factor
        return delay

    def current_loss(self, u: int, v: int, t: float) -> float:
        """True loss probability of the link at time ``t``."""
        loss = float(self.graph[u][v]["loss"])
        active = self._active_disturbances(t)
        if active:
            edge = _canonical(u, v)
            for d in active:
                if d.edge == edge:
                    loss = min(1.0, loss + d.loss_add)
        if self.attack_active(t) and self._edge_touches_victim(u, v):
            loss = min(1.0, loss + self._attack_loss_add)
        return loss

    def dynamics_signature(self, t: float) -> Tuple:
        """Hashable signature of everything link state depends on at ``t``.

        Two times with equal signatures have identical ``current_delay``
        and ``current_loss`` on every link; gated consumers (the oracle
        router) may reuse anything derived from link state while the
        signature is unchanged.
        """
        active = tuple(i for i, d in enumerate(self.disturbances)
                       if d.active(t))
        attack = ((self._attacked_node, self._attack_delay_factor,
                   self._attack_loss_add)
                  if self.attack_active(t) else None)
        return (active, attack)

    def sample_loss(self, u: int, v: int, t: float) -> bool:
        """Whether a packet crossing ``(u, v)`` at ``t`` is lost."""
        return bool(self._rng.random() < self.current_loss(u, v, t))

    def neighbours(self, node: int) -> List[int]:
        """Adjacent nodes (sorted, deterministic)."""
        return sorted(self.graph.neighbors(node))

    def nodes(self) -> List[int]:
        """All node ids, sorted."""
        return sorted(self.graph.nodes)

    def static_shortest_paths(self, dest: int) -> Dict[int, int]:
        """Design-time next-hop table toward ``dest`` on base delays."""
        paths = nx.shortest_path(self.graph, target=dest, weight="delay")
        return {node: path[1] for node, path in paths.items() if len(path) > 1}

    def oracle_shortest_paths(self, dest: int, t: float) -> Dict[int, int]:
        """Next-hop table on *current* true delays (omniscient baseline)."""
        g = nx.Graph()
        for u, v in self.graph.edges:
            g.add_edge(u, v, delay=self.current_delay(u, v, t))
        paths = nx.shortest_path(g, target=dest, weight="delay")
        return {node: path[1] for node, path in paths.items() if len(path) > 1}
