"""Routers: static, oracle, and the CPN self-aware router.

The cognitive packet network's defining feature is a per-node
self-awareness loop: nodes monitor the quality of service their routing
decisions achieve and adapt route choice continuously using a simple
learning scheme.  :class:`CPNRouter` realises it as Q-routing (each node
learns the expected remaining delay to each destination via each
neighbour, updated from its neighbours' own estimates -- a collective,
fully decentralised self-model of the network), with smart-packet
exploration keeping estimates fresh.

Baselines: :class:`StaticRouter` (design-time shortest paths, never
updated) and :class:`OracleRouter` (omniscient recomputation every step
-- an upper bound no real decentralised system can reach).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .topology import CPNetwork


@dataclass(frozen=True)
class QoSClass:
    """A per-flow quality-of-service goal.

    CPN's defining feature is that packets carry their own QoS goals and
    the network adapts routes per goal.  ``loss_equivalent_delay`` is the
    delay (in the network's delay units) one unit of loss probability is
    worth to this traffic: delay-sensitive traffic sets it low (take the
    fast route, losses be damned), loss-sensitive traffic sets it high
    (detour around anything unreliable).
    """

    name: str
    loss_equivalent_delay: float = 20.0

    def __post_init__(self) -> None:
        if self.loss_equivalent_delay < 0:
            raise ValueError("loss_equivalent_delay must be non-negative")


#: Ready-made classes for the experiments.
DELAY_SENSITIVE = QoSClass(name="delay-sensitive", loss_equivalent_delay=2.0)
LOSS_SENSITIVE = QoSClass(name="loss-sensitive", loss_equivalent_delay=300.0)
DEFAULT_QOS = QoSClass(name="default", loss_equivalent_delay=20.0)


class Router(ABC):
    """Hop-by-hop forwarding policy."""

    @abstractmethod
    def next_hop(self, node: int, dest: int, t: float,
                 qos: Optional[QoSClass] = None,
                 avoid: Optional[int] = None) -> Optional[int]:
        """Neighbour to forward to (None when no route is known).

        ``avoid`` names the node the packet just came from; routers that
        can should prefer not to send it straight back (ping-pong loops
        waste the TTL), but may when no alternative exists.
        """

    def observe_hop(self, u: int, v: int, dest: int, delay: float,
                    t: float) -> None:
        """Telemetry from a traversed hop (default: ignored)."""

    def new_step(self, t: float) -> None:
        """Called once per simulation step (default: no-op)."""


class StaticRouter(Router):
    """Shortest paths on design-time delays, frozen forever."""

    def __init__(self, network: CPNetwork) -> None:
        self._tables: Dict[int, Dict[int, int]] = {}
        for dest in network.nodes():
            self._tables[dest] = network.static_shortest_paths(dest)

    def next_hop(self, node: int, dest: int, t: float,
                 qos: Optional[QoSClass] = None,
                 avoid: Optional[int] = None) -> Optional[int]:
        return self._tables.get(dest, {}).get(node)


class OracleRouter(Router):
    """Recomputes true shortest paths when link state changes.

    Still the omniscient upper bound: routes are always shortest paths
    on the *current* true delays.  With ``gated=True`` (the default) the
    Dijkstra tables are recomputed only when the network's
    :meth:`~repro.cpn.topology.CPNetwork.dynamics_signature` actually
    changed -- between change points the true delays are constant, so
    the cached tables are exactly what a fresh recomputation would
    produce.  ``gated=False`` restores the recompute-every-step
    reference behaviour (used by the equivalence tests and the
    ``repro.bench`` baseline).
    """

    def __init__(self, network: CPNetwork, gated: bool = True) -> None:
        self._network = network
        self._gated = gated
        self._tables: Dict[int, Dict[int, int]] = {}
        self._tables_time = -1.0
        self._signature: Optional[Tuple] = None

    def new_step(self, t: float) -> None:
        if self._gated:
            signature = self._network.dynamics_signature(t)
            if signature == self._signature and self._tables_time >= 0.0:
                self._tables_time = t
                return
            self._signature = signature
        self._tables = {}
        self._tables_time = t

    def next_hop(self, node: int, dest: int, t: float,
                 qos: Optional[QoSClass] = None,
                 avoid: Optional[int] = None) -> Optional[int]:
        if dest not in self._tables:
            self._tables[dest] = self._network.oracle_shortest_paths(dest, t)
        return self._tables[dest].get(node)


class CPNRouter(Router):
    """Q-routing with smart-packet exploration: the self-aware router.

    Per (node, destination, neighbour) the router keeps an estimate of
    the remaining delivery delay.  When a packet hops ``u -> v`` toward
    ``dest``, the estimate updates toward
    ``hop_delay + min_w Q[v][dest][w]`` (zero at the destination) -- each
    node's knowledge is built from its own measurements plus its
    neighbours' self-knowledge: collective self-awareness with no global
    table anywhere.

    Parameters
    ----------
    network:
        Topology (used only for the neighbour lists and initial
        optimistic estimates -- *not* for true delays).
    learning_rate:
        Q update step size.
    epsilon:
        Smart-packet exploration rate: probability an exploring hop picks
        a random neighbour instead of the greedy one.
    loss_penalty:
        Weight converting the learned per-entry loss rate into equivalent
        delay for route scoring (the DoS-defence mechanism: lossy regions
        become expensive and are routed around).
    loss_alpha:
        EWMA factor of the per-entry loss-rate estimate.
    """

    def __init__(self, network: CPNetwork, learning_rate: float = 0.3,
                 epsilon: float = 0.05, loss_penalty: float = 20.0,
                 loss_alpha: float = 0.1,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if not 0.0 < loss_alpha <= 1.0:
            raise ValueError("loss_alpha must be in (0, 1]")
        self._network = network
        self.learning_rate = learning_rate
        self.epsilon = epsilon
        self.loss_penalty = loss_penalty
        self.loss_alpha = loss_alpha
        self._rng = rng if rng is not None else np.random.default_rng()
        # Optimistic initial estimates (base delay of the first hop) make
        # unexplored routes attractive, driving early exploration.
        self._q: Dict[Tuple[int, int], Dict[int, float]] = {}
        self._loss: Dict[Tuple[int, int], Dict[int, float]] = {}
        for node in network.nodes():
            for dest in network.nodes():
                if node == dest:
                    continue
                self._q[(node, dest)] = {
                    nb: network.base_delay(node, nb)
                    for nb in network.neighbours(node)}
                self._loss[(node, dest)] = {
                    nb: 0.0 for nb in network.neighbours(node)}

    def q_value(self, node: int, dest: int, neighbour: int) -> float:
        """Current estimated remaining delay from ``node`` via ``neighbour``."""
        return self._q[(node, dest)][neighbour]

    def loss_estimate(self, node: int, dest: int, neighbour: int) -> float:
        """Learned loss rate of forwarding via ``neighbour``."""
        return self._loss[(node, dest)][neighbour]

    def _score(self, node: int, dest: int, neighbour: int,
               qos: Optional[QoSClass] = None) -> float:
        """Route cost: estimated delay plus QoS-weighted loss penalty.

        The delay and loss estimates are physical, shared across traffic
        classes; only the *weighting* is per-class -- exactly how CPN
        lets each packet carry its own goal over one set of measurements.
        """
        weight = qos.loss_equivalent_delay if qos is not None else self.loss_penalty
        return (self._q[(node, dest)][neighbour]
                + weight * self._loss[(node, dest)][neighbour])

    def best_remaining(self, node: int, dest: int,
                       qos: Optional[QoSClass] = None) -> float:
        """Node's own estimate of its best remaining cost to ``dest``."""
        if node == dest:
            return 0.0
        return min(self._score(node, dest, nb, qos)
                   for nb in self._q[(node, dest)])

    def _candidates(self, node: int, dest: int,
                    avoid: Optional[int]) -> Optional[List[int]]:
        table = self._q.get((node, dest))
        if not table:
            return None
        options = [nb for nb in table if nb != avoid]
        return options if options else list(table)

    def next_hop(self, node: int, dest: int, t: float,
                 qos: Optional[QoSClass] = None,
                 avoid: Optional[int] = None) -> Optional[int]:
        """Greedy forwarding: payload ("dumb") packets take the best-known
        route *for their QoS class*; exploration is the job of smart
        packets (:meth:`explore_hop`), exactly as in the CPN architecture.
        The previous node is avoided unless it is the only way out."""
        options = self._candidates(node, dest, avoid)
        if options is None:
            return None
        return min(options,
                   key=lambda nb: (self._score(node, dest, nb, qos), nb))

    def explore_hop(self, node: int, dest: int, t: float,
                    qos: Optional[QoSClass] = None,
                    avoid: Optional[int] = None) -> Optional[int]:
        """Smart-packet forwarding: ε-greedy, refreshing route knowledge."""
        options = self._candidates(node, dest, avoid)
        if options is None:
            return None
        if self._rng.random() < self.epsilon:
            return options[int(self._rng.integers(len(options)))]
        return min(options,
                   key=lambda nb: (self._score(node, dest, nb, qos), nb))

    def observe_hop(self, u: int, v: int, dest: int, delay: float,
                    t: float) -> None:
        """Q-routing backup from one successfully traversed hop."""
        remaining = self.best_remaining(v, dest) if v != dest else 0.0
        target = delay + remaining
        table = self._q[(u, dest)]
        table[v] += self.learning_rate * (target - table[v])
        loss_table = self._loss[(u, dest)]
        loss_table[v] += self.loss_alpha * (0.0 - loss_table[v])

    def observe_loss(self, u: int, v: int, dest: int, t: float) -> None:
        """Record a loss event on the entry that forwarded the packet."""
        loss_table = self._loss[(u, dest)]
        loss_table[v] += self.loss_alpha * (1.0 - loss_table[v])
