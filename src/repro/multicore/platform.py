"""Heterogeneous multi-core platform model (paper refs [8], [47]).

A big.LITTLE-style platform: core *types* differ in peak performance and
power; each core has discrete DVFS levels; temperature follows a
first-order RC thermal model driven by dissipated power; and a hardware
thermal-protection mechanism throttles any core that crosses the critical
temperature to its lowest frequency.

Throttling is the mechanism that punishes thermally ignorant governors:
a design-time "run everything at maximum frequency" policy overheats,
throttles, and loses the throughput it was chasing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..envgen.workloads import Task


@dataclass(frozen=True)
class CoreType:
    """A class of core: performance and power characteristics.

    Parameters
    ----------
    name:
        e.g. ``"big"`` or ``"little"``.
    perf:
        Work units processed per step at frequency 1.0.
    p_static:
        Leakage power (always dissipated).
    p_dynamic:
        Dynamic power at frequency 1.0 while busy; scales with f^3.
    thermal_resistance:
        Kelvin per watt in the RC model.
    """

    name: str
    perf: float
    p_static: float
    p_dynamic: float
    thermal_resistance: float = 8.0

    def __post_init__(self) -> None:
        if self.perf <= 0:
            raise ValueError("perf must be positive")
        if self.p_static < 0 or self.p_dynamic < 0:
            raise ValueError("power terms must be non-negative")


#: The default platform's core types: fast/hungry vs. slow/frugal.  A big
#: core running flat out sits at a steady-state temperature *above* the
#: 85C critical threshold (40 + 14 * 3.6 = 90.4), so sustained maximum
#: frequency is thermally unsustainable -- exactly the regime where
#: design-time "just run at max" policies fail; at 0.75 it is safe.
BIG = CoreType(name="big", perf=8.0, p_static=0.6, p_dynamic=3.0,
               thermal_resistance=14.0)
LITTLE = CoreType(name="little", perf=3.0, p_static=0.2, p_dynamic=0.8,
                  thermal_resistance=6.0)

#: Discrete DVFS levels available on every core.
DVFS_LEVELS: Tuple[float, ...] = (0.5, 0.75, 1.0)


class Core:
    """One core: type, DVFS setting, current task, temperature."""

    def __init__(self, core_id: int, core_type: CoreType,
                 ambient: float = 40.0, thermal_alpha: float = 0.2,
                 critical_temp: float = 85.0) -> None:
        if not 0.0 < thermal_alpha <= 1.0:
            raise ValueError("thermal_alpha must be in (0, 1]")
        self.core_id = core_id
        self.core_type = core_type
        self.frequency = min(DVFS_LEVELS)
        self.ambient = ambient
        self.thermal_alpha = thermal_alpha
        self.critical_temp = critical_temp
        self.temperature = ambient
        self.task: Optional[Task] = None
        self.remaining_work = 0.0
        self.throttled = False
        self.throttle_events = 0
        self.completed_tasks = 0
        self.busy_steps = 0

    @property
    def idle(self) -> bool:
        """Whether the core has no task assigned."""
        return self.task is None

    def set_frequency(self, frequency: float) -> None:
        """Request a DVFS level (must be one of :data:`DVFS_LEVELS`)."""
        if frequency not in DVFS_LEVELS:
            raise ValueError(f"frequency {frequency} not in {DVFS_LEVELS}")
        self.frequency = frequency

    def assign(self, task: Task, speedup: float = 1.0) -> None:
        """Start ``task`` on this core; ``speedup`` is the kind affinity."""
        if self.task is not None:
            raise RuntimeError(f"core {self.core_id} is busy")
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        self.task = task
        self._affinity = speedup
        self.remaining_work = task.work

    def effective_frequency(self) -> float:
        """The frequency actually applied, after thermal throttling."""
        return min(DVFS_LEVELS) if self.throttled else self.frequency

    def power(self) -> float:
        """Power dissipated this step at the current state."""
        freq = self.effective_frequency()
        if self.task is not None:
            return self.core_type.p_static + self.core_type.p_dynamic * freq ** 3
        return self.core_type.p_static + 0.05 * self.core_type.p_dynamic

    def step(self) -> Tuple[float, Optional[Task]]:
        """Advance one step: execute, heat up, maybe throttle.

        Returns ``(work_done, completed_task_or_None)``.
        """
        freq = self.effective_frequency()
        work_done = 0.0
        completed: Optional[Task] = None
        if self.task is not None:
            self.busy_steps += 1
            rate = self.core_type.perf * freq * self._affinity
            work_done = min(self.remaining_work, rate)
            self.remaining_work -= work_done
            if self.remaining_work <= 1e-9:
                completed = self.task
                self.task = None
                self.completed_tasks += 1

        # RC thermal model toward the power-dependent steady state.
        power = self.power()
        steady = self.ambient + self.core_type.thermal_resistance * power
        self.temperature += self.thermal_alpha * (steady - self.temperature)

        # Hardware thermal protection with hysteresis.
        if self.temperature >= self.critical_temp and not self.throttled:
            self.throttled = True
            self.throttle_events += 1
        elif self.throttled and self.temperature < self.critical_temp - 5.0:
            self.throttled = False
        return work_done, completed


@dataclass(slots=True)
class PlatformMetrics:
    """Telemetry for one platform step."""

    time: float
    throughput: float
    completed: int
    queue_length: int
    energy: float
    max_temperature: float
    throttled_cores: int

    def as_dict(self) -> Dict[str, float]:
        """Raw metric vector for goal evaluation."""
        return {
            "throughput": self.throughput,
            "completed": float(self.completed),
            "queue": float(self.queue_length),
            "energy": self.energy,
            "max_temp": self.max_temperature,
            "throttled": float(self.throttled_cores),
        }


class Platform:
    """The full platform: cores plus a shared ready queue.

    Parameters
    ----------
    n_big, n_little:
        Core counts per type.
    affinity:
        ``affinity[kind][type_name]`` multiplies execution rate; models
        workload classes suiting particular core types.  Unknown kinds
        default to 1.0 everywhere.
    """

    def __init__(self, n_big: int = 2, n_little: int = 4,
                 affinity: Optional[Mapping[str, Mapping[str, float]]] = None,
                 critical_temp: float = 85.0) -> None:
        if n_big < 0 or n_little < 0 or n_big + n_little == 0:
            raise ValueError("need at least one core")
        self.cores: List[Core] = []
        for i in range(n_big):
            self.cores.append(Core(i, BIG, critical_temp=critical_temp))
        for i in range(n_little):
            self.cores.append(Core(n_big + i, LITTLE,
                                   critical_temp=critical_temp))
        self.affinity = {k: dict(v) for k, v in (affinity or {}).items()}
        self.queue: List[Task] = []
        self.total_energy = 0.0
        self.total_completed = 0
        #: Per-step execution trace:
        #: (core_id, type_name, kind, work, freq, completed).
        #: Self-aware governors read this to learn kind/core-type affinity
        #: from observation instead of trusting a design-time table; the
        #: ``completed`` flag marks partial-step executions whose work
        #: understates the true rate.
        self.last_execution: List[Tuple[int, str, str, float, float, bool]] = []

    def speedup(self, kind: str, core_type: CoreType) -> float:
        """Affinity multiplier of task ``kind`` on ``core_type``."""
        return self.affinity.get(kind, {}).get(core_type.name, 1.0)

    def submit(self, tasks: Sequence[Task]) -> None:
        """Enqueue newly arrived tasks."""
        self.queue.extend(tasks)

    def idle_cores(self) -> List[Core]:
        """Cores currently without a task."""
        return [c for c in self.cores if c.idle]

    def assign(self, core: Core, task: Task) -> None:
        """Dispatch a queued task to an idle core."""
        self.queue.remove(task)
        core.assign(task, speedup=self.speedup(task.kind, core.core_type))

    def step(self, time: float) -> PlatformMetrics:
        """Execute one step on every core."""
        throughput = 0.0
        completed = 0
        energy = 0.0
        self.last_execution = []
        for core in self.cores:
            energy += core.power()
            kind = core.task.kind if core.task is not None else None
            freq = core.effective_frequency()
            work, done = core.step()
            throughput += work
            if kind is not None and work > 0:
                self.last_execution.append(
                    (core.core_id, core.core_type.name, kind, work, freq,
                     done is not None))
            if done is not None:
                completed += 1
        self.total_energy += energy
        self.total_completed += completed
        return PlatformMetrics(
            time=time, throughput=throughput, completed=completed,
            queue_length=len(self.queue), energy=energy,
            max_temperature=max(c.temperature for c in self.cores),
            throttled_cores=sum(1 for c in self.cores if c.throttled))
