"""Heterogeneous multi-core substrate (paper refs [8], [16], [47]).

A big.LITTLE platform model with DVFS, an RC thermal model and hardware
throttling, plus governors from design-time-static through reactive to
self-aware (learned affinity mapping + goal-driven frequency selection
under a thermal constraint).  Experiment E5 reproduces the on-the-fly
computing claim: run-time mapping beats design-time-fixed configuration
on the throughput/energy/temperature trade-off.
"""

from .governor import (FREQ_ACTIONS, Governor, OndemandGovernor,
                       SelfAwareGovernor, StaticGovernor, dispatch_fifo,
                       make_multicore_goal)
from .platform import (BIG, DVFS_LEVELS, LITTLE, Core, CoreType, Platform,
                       PlatformMetrics)
from .sim import (DEFAULT_AFFINITY, DEFAULT_CLASSES, GovernorRunResult,
                  make_platform, make_workload, run_governor)

__all__ = [
    "FREQ_ACTIONS", "Governor", "OndemandGovernor", "SelfAwareGovernor",
    "StaticGovernor", "dispatch_fifo", "make_multicore_goal",
    "BIG", "DVFS_LEVELS", "LITTLE", "Core", "CoreType", "Platform",
    "PlatformMetrics",
    "DEFAULT_AFFINITY", "DEFAULT_CLASSES", "GovernorRunResult",
    "make_platform", "make_workload", "run_governor",
]
