"""The multi-core simulation loop and default workload."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:
    from ..faults.injector import FaultInjector

import numpy as np

from ..core.goals import Goal
from ..envgen.workloads import TaskClass, TaskStreamWorkload
from .governor import Governor
from .platform import Platform, PlatformMetrics

#: Default workload classes with opposing core-type affinities.  Sized so
#: that even a vector-heavy phase is servable at thermally sustainable
#: frequencies *if* tasks are mapped to their preferred core type -- the
#: regime where run-time awareness can win without breaking the thermal
#: constraint.
DEFAULT_CLASSES = (
    TaskClass("vector", mean_work=13.0),
    TaskClass("background", mean_work=6.0),
)

#: Ground-truth affinity: vector code loves big cores, background tasks
#: run disproportionately well on little ones.  Governors never see this
#: table; self-aware ones must discover it from observed rates.
DEFAULT_AFFINITY: Dict[str, Dict[str, float]] = {
    "vector": {"big": 1.2, "little": 0.4},
    "background": {"big": 0.7, "little": 1.3},
}


def make_platform(n_big: int = 2, n_little: int = 4,
                  critical_temp: float = 85.0) -> Platform:
    """The standard experiment platform."""
    return Platform(n_big=n_big, n_little=n_little,
                    affinity=DEFAULT_AFFINITY, critical_temp=critical_temp)


def make_workload(rate: float = 1.2, phase_length: int = 250,
                  seed: int = 0) -> TaskStreamWorkload:
    """The standard phase-changing task stream."""
    return TaskStreamWorkload(list(DEFAULT_CLASSES), phase_length=phase_length,
                              rate=rate, rng=np.random.default_rng(seed))


@dataclass
class GovernorRunResult:
    """Outcome of driving one governor over a workload."""

    history: List[PlatformMetrics]
    platform: Platform

    def mean_utility(self, goal: Goal) -> float:
        """Time-averaged goal utility over the run."""
        if not self.history:
            return math.nan
        return sum(goal.utility(m.as_dict()) for m in self.history) / len(self.history)

    def mean_throughput(self) -> float:
        """Average work completed per step."""
        return sum(m.throughput for m in self.history) / max(1, len(self.history))

    def mean_energy(self) -> float:
        """Average power per step."""
        return sum(m.energy for m in self.history) / max(1, len(self.history))

    def throttle_fraction(self) -> float:
        """Fraction of steps with at least one throttled core."""
        if not self.history:
            return math.nan
        return sum(1 for m in self.history if m.throttled_cores > 0) / len(self.history)

    def thermal_violation_rate(self, cap: float) -> float:
        """Fraction of steps whose max temperature exceeds ``cap``."""
        if not self.history:
            return math.nan
        return sum(1 for m in self.history
                   if m.max_temperature > cap) / len(self.history)

    def mean_queue(self) -> float:
        """Average ready-queue length (latency proxy)."""
        return sum(m.queue_length for m in self.history) / max(1, len(self.history))


def run_governor(governor: Governor, steps: int = 600,
                 workload: Optional[TaskStreamWorkload] = None,
                 platform: Optional[Platform] = None,
                 on_step: Optional[Callable[[float], None]] = None,
                 faults: Optional["FaultInjector"] = None) -> GovernorRunResult:
    """Drive ``governor`` for ``steps`` over the (default) workload.

    ``on_step(t)`` runs before each step -- experiments use it to change
    the goal at run time.

    Deprecated shim: the submit/manage/step/feedback loop (and its
    fault hooks) now lives in :class:`repro.api.MulticoreSimulator`;
    use that instead.
    """
    import warnings
    warnings.warn(
        "run_governor is deprecated; use repro.api.MulticoreSimulator",
        DeprecationWarning, stacklevel=2)
    from ..api.adapters import MulticoreSimulator
    from ..api.configs import MulticoreConfig
    return MulticoreSimulator(MulticoreConfig(steps=steps),
                              governor=governor, workload=workload,
                              platform=platform, on_step=on_step,
                              faults=faults).run()
