"""Governors: run-time managers of the heterogeneous platform.

The on-the-fly computing strand of the paper (Agarwal's self-aware
computing, Platzner's self-aware multicores) argues for moving mapping
and frequency decisions from design time to run time.  Three governors:

- :class:`StaticGovernor` -- design-time: fixed frequencies, first-idle-
  core mapping (knows nothing about task kinds or temperature);
- :class:`OndemandGovernor` -- reactive DVFS in the style of the Linux
  ondemand policy: raise frequency when the queue grows, drop it when
  idle; mapping stays naive;
- :class:`SelfAwareGovernor` -- learns kind/core-type affinity from
  observed execution rates (a self-model acquired at run time), maps each
  task to the core type that actually executes it best, and chooses the
  frequency pair by goal-aware utility reasoning with a learned outcome
  model, under a thermal constraint.

All governors share ``manage(time, platform, last_metrics)`` which sets
DVFS levels and dispatches queued tasks, and ``feedback(metrics)``.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..core.goals import Constraint, Goal, Objective
from ..core.models import ContextualActionModel
from ..core.reasoner import UtilityReasoner
from .platform import DVFS_LEVELS, Platform, PlatformMetrics

#: Candidate actions: one frequency per core type.
FREQ_ACTIONS: Tuple[Tuple[float, float], ...] = tuple(
    itertools.product(DVFS_LEVELS, DVFS_LEVELS))


def make_multicore_goal(throughput_weight: float = 0.45,
                        energy_weight: float = 0.25,
                        queue_weight: float = 0.3,
                        max_throughput: float = 20.0,
                        max_energy: float = 12.0,
                        max_queue: float = 40.0,
                        temp_cap: float = 82.0) -> Goal:
    """Throughput/energy/latency goal with a thermal constraint.

    The queue objective is the latency proxy: a governor that saves
    energy by letting the ready queue diverge is not managing the
    trade-off, it is abandoning one objective.
    """
    return Goal(
        objectives=[
            Objective("throughput", maximise=True, lo=0.0, hi=max_throughput),
            Objective("energy", maximise=False, lo=0.0, hi=max_energy),
            Objective("queue", maximise=False, lo=0.0, hi=max_queue),
        ],
        weights={"throughput": throughput_weight, "energy": energy_weight,
                 "queue": queue_weight},
        constraints=[Constraint("max_temp", "max", temp_cap)],
        name="multicore")


class Governor(ABC):
    """Sets frequencies and dispatches tasks each step."""

    @abstractmethod
    def manage(self, time: float, platform: Platform,
               last_metrics: Optional[PlatformMetrics]) -> None:
        """Configure DVFS and assign queued tasks to idle cores."""

    def feedback(self, metrics: PlatformMetrics) -> None:
        """Observe the realised step outcome (default: ignored)."""


def dispatch_fifo(platform: Platform) -> None:
    """Naive mapping: first queued task to first idle core, in id order."""
    for core in platform.idle_cores():
        if not platform.queue:
            break
        platform.assign(core, platform.queue[0])


class StaticGovernor(Governor):
    """Design-time configuration: fixed frequencies, naive mapping."""

    def __init__(self, freq_big: float = 1.0, freq_little: float = 1.0) -> None:
        self.freq_big = freq_big
        self.freq_little = freq_little

    def manage(self, time: float, platform: Platform,
               last_metrics: Optional[PlatformMetrics]) -> None:
        for core in platform.cores:
            freq = self.freq_big if core.core_type.name == "big" else self.freq_little
            core.set_frequency(freq)
        dispatch_fifo(platform)


class OndemandGovernor(Governor):
    """Reactive DVFS: frequency follows the queue, mapping stays naive.

    Raises both types one DVFS step when the queue exceeds ``high``;
    lowers when the queue is empty and every core idle.  Stimulus-aware
    (reacts to load) but blind to temperature, energy, task kinds and the
    goal structure.
    """

    def __init__(self, high: int = 4) -> None:
        if high < 1:
            raise ValueError("high must be at least 1")
        self.high = high
        self._level_index = len(DVFS_LEVELS) - 1  # start at max, like ondemand

    def manage(self, time: float, platform: Platform,
               last_metrics: Optional[PlatformMetrics]) -> None:
        queue = len(platform.queue)
        if queue > self.high:
            self._level_index = min(self._level_index + 1, len(DVFS_LEVELS) - 1)
        elif queue == 0 and all(c.idle for c in platform.cores):
            self._level_index = max(self._level_index - 1, 0)
        freq = DVFS_LEVELS[self._level_index]
        for core in platform.cores:
            core.set_frequency(freq)
        dispatch_fifo(platform)


class _PlannerModel:
    """Self-prediction model for the self-aware governor.

    Implements the :class:`~repro.core.models.PredictiveModel` protocol by
    combining two sources, mirroring Kounev's self-reflection +
    self-prediction split:

    - **analytic flow balance** for throughput and queue: the governor
      knows (from its learned affinity/capacity estimates and its arrival
      estimate) how much work each frequency pair can serve, so the
      queue consequence of an action is *computed*, not rediscovered --
      this is what makes the governor non-myopic about latency;
    - **learned outcome statistics** for energy and temperature, which
      depend on platform physics the governor does not know a priori.
    """

    def __init__(self, governor: "SelfAwareGovernor") -> None:
        self._gov = governor
        self.learned = ContextualActionModel(forgetting=0.9,
                                             confidence_scale=3.0)

    def predict(self, context: Mapping[str, float], action) -> Dict[str, float]:
        predicted = dict(self.learned.predict(context, action))
        queue = self._gov.current_queue_work
        arrivals = self._gov.arrival_estimate
        capacity = self._gov.capacity(action)
        horizon = self._gov.horizon
        # Project the flow balance over a short horizon rather than one
        # step: backlog accumulates (or drains) step after step, and a
        # one-step view underprices slow capacity (myopia).
        offered = queue + horizon * arrivals
        predicted["throughput"] = min(offered, horizon * capacity) / horizon
        # The goal's queue objective is a task count; convert the work
        # balance through the learned mean work per task.
        remaining_work = max(0.0, offered - horizon * capacity)
        predicted["queue"] = remaining_work / self._gov.mean_task_work
        return predicted

    def update(self, context: Mapping[str, float], action,
               outcome: Mapping[str, float]) -> None:
        learnable = {k: v for k, v in outcome.items()
                     if k in ("energy", "max_temp")}
        self.learned.update(context, action, learnable)

    def confidence(self, context: Mapping[str, float], action) -> float:
        return self.learned.confidence(context, action)


class SelfAwareGovernor(Governor):
    """Run-time learning governor: learned mapping + goal-aware DVFS.

    Self-models acquired during operation:

    - **affinity model**: EWMA of observed execution rate per
      (task kind, core type), normalised by frequency -- discovers which
      kinds run well where without a design-time table, and doubles as
      the capacity model behind queue prediction;
    - **arrival model**: EWMA of offered work per step;
    - **energy/thermal model**: contextual outcome statistics per
      frequency pair, with the live goal's thermal constraint keeping the
      platform out of hardware throttling.

    Decisions run through a :class:`~repro.core.reasoner.UtilityReasoner`
    against the live goal, so run-time goal changes (e.g. "energy now
    matters more") shift behaviour immediately.
    """

    def __init__(self, goal: Goal, epsilon: float = 0.08, horizon: int = 10,
                 rng: Optional[np.random.Generator] = None) -> None:
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        self.goal = goal
        self.horizon = horizon
        self._rng = rng if rng is not None else np.random.default_rng()
        self._model = _PlannerModel(self)
        self.reasoner = UtilityReasoner(
            goal=goal, model=self._model, epsilon=epsilon, rng=self._rng)
        self._rate_estimates: Dict[Tuple[str, str], float] = {}
        self._type_counts: Dict[str, int] = {}
        self._mix: Dict[str, float] = {}
        self.arrival_estimate = 0.0
        self.current_queue_work = 0.0
        self.mean_task_work = 10.0
        self._last_context: Dict[str, float] = {}
        self._last_action: Optional[Tuple[float, float]] = None
        self._last_queue_work = 0.0

    # -- learned affinity / capacity ----------------------------------------

    def learned_rate(self, kind: str, type_name: str, perf: float) -> float:
        """Expected rate (at frequency 1.0) of ``kind`` on ``type_name``.

        Falls back to the spec-sheet ``perf`` (affinity 1.0) before any
        observation -- a design-time prior the learner then corrects.
        """
        return self._rate_estimates.get((kind, type_name), perf)

    def _update_affinity(self, platform: Platform) -> None:
        for _core_id, type_name, kind, work, freq, completed in \
                platform.last_execution:
            if freq <= 0 or completed:
                # A completing step only executed the task's remainder;
                # its work understates the achievable rate.
                continue
            normalised = work / freq  # rate at frequency 1.0
            key = (kind, type_name)
            old = self._rate_estimates.get(key, normalised)
            self._rate_estimates[key] = old + 0.2 * (normalised - old)

    def capacity(self, action: Tuple[float, float]) -> float:
        """Predicted serviceable work per step under a frequency pair.

        Mix-weighted learned rates per core type, assuming the mapper
        routes kinds to their better type where possible (approximated by
        weighting each type by the kinds it serves best).
        """
        freq_by_type = {"big": action[0], "little": action[1]}
        total = 0.0
        mix = self._mix if self._mix else {"_any": 1.0}
        for type_name, count in self._type_counts.items():
            per_core = 0.0
            for kind, share in mix.items():
                perf_default = 8.0 if type_name == "big" else 3.0
                per_core += share * self.learned_rate(kind, type_name,
                                                      perf_default)
            total += count * per_core * freq_by_type.get(type_name, 1.0)
        return total

    # -- the control step ------------------------------------------------------

    def _observe(self, platform: Platform,
                 last_metrics: Optional[PlatformMetrics]) -> None:
        self._type_counts = {}
        for core in platform.cores:
            name = core.core_type.name
            self._type_counts[name] = self._type_counts.get(name, 0) + 1
        queue_work = sum(t.work for t in platform.queue) + sum(
            c.remaining_work for c in platform.cores if c.task is not None)
        arrived = max(0.0, queue_work - self._last_queue_work
                      + (last_metrics.throughput if last_metrics else 0.0))
        self.arrival_estimate += 0.25 * (arrived - self.arrival_estimate)
        self.current_queue_work = queue_work
        kind_work: Dict[str, float] = {}
        for task in platform.queue:
            kind_work[task.kind] = kind_work.get(task.kind, 0.0) + task.work
        total = sum(kind_work.values())
        if total > 0:
            self._mix = {k: w / total for k, w in kind_work.items()}
        if platform.queue:
            observed_mean = total / len(platform.queue)
            self.mean_task_work += 0.1 * (observed_mean - self.mean_task_work)

    def _context(self, platform: Platform,
                 last_metrics: Optional[PlatformMetrics]) -> Dict[str, float]:
        temp = (last_metrics.max_temperature if last_metrics is not None
                else platform.cores[0].ambient)
        return {"temp": round(min(1.0, temp / 100.0), 1)}

    def manage(self, time: float, platform: Platform,
               last_metrics: Optional[PlatformMetrics]) -> None:
        self._update_affinity(platform)
        self._observe(platform, last_metrics)
        self._last_context = self._context(platform, last_metrics)
        decision = self.reasoner.decide(time, self._last_context,
                                        list(FREQ_ACTIONS))
        freq_big, freq_little = decision.action
        self._last_action = decision.action
        for core in platform.cores:
            freq = freq_big if core.core_type.name == "big" else freq_little
            core.set_frequency(freq)

        # Affinity-aware mapping: each queued task (FIFO) goes to the idle
        # core with the best learned effective rate for its kind.
        idle = platform.idle_cores()
        for task in list(platform.queue):
            if not idle:
                break
            best = max(idle, key=lambda c: self.learned_rate(
                task.kind, c.core_type.name, c.core_type.perf)
                * c.frequency)
            platform.assign(best, task)
            idle.remove(best)
        self._last_queue_work = sum(t.work for t in platform.queue) + sum(
            c.remaining_work for c in platform.cores if c.task is not None)

    def feedback(self, metrics: PlatformMetrics) -> None:
        if self._last_action is None:
            return
        outcome = {"energy": metrics.energy,
                   "max_temp": metrics.max_temperature}
        self.reasoner.learn(self._last_context, self._last_action, outcome)
