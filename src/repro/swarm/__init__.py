"""Collective-robotics swarm substrate (paper ref [34]).

A swarm keeps an arena covered so that events are witnessed; hotspots
shift and robots die mid-mission.  The self-aware controller recognises
these situations from local knowledge (witnessed events, gossiped
beliefs, silent peers) and intentionally re-forms the swarm's structure;
baselines hold a design-time formation or patrol at random.
Experiment E12.
"""

from .arena import Arena, Event, Hotspot
from .robots import (RandomPatrol, Robot, SelfAwareSwarm, StaticFormation,
                     SwarmController, make_swarm)
from .sim import (SwarmMission, SwarmMissionConfig, SwarmRunResult,
                  SwarmStepRecord, run_mission)
from .soa import EventTable, IndexMemory, RobotArrays

__all__ = [
    "Arena", "Event", "Hotspot",
    "EventTable", "IndexMemory", "RobotArrays",
    "RandomPatrol", "Robot", "SelfAwareSwarm", "StaticFormation",
    "SwarmController", "make_swarm",
    "SwarmMission", "SwarmMissionConfig", "SwarmRunResult",
    "SwarmStepRecord", "run_mission",
]
