"""Struct-of-arrays working set for the swarm substrate.

The swarm hot loop used to walk Python object graphs: every robot a
dataclass, every remembered event an ``Event`` instance, every distance
a ``math.hypot`` call.  This module holds the same state in flat
columns so the per-step kernels (witness scan, gossip neighbourhoods,
Voronoi attribution) can run as a handful of array operations:

- :class:`EventTable` -- the append-only store of event coordinates
  (``times`` / ``xs`` / ``ys`` columns); robots remember *indices* into
  it instead of object references, and a window ``trim`` keeps storage
  bounded by the live memory horizon.
- :class:`IndexMemory` -- one robot's event memory: a flat index buffer
  with a head pointer, so pruning the expired prefix is pointer
  arithmetic and the retained window is a zero-copy slice.
- :class:`RobotArrays` -- per-step position / radius / liveness columns
  refreshed from the ``Robot`` objects (which remain the mutable API
  surface for controllers, fault hooks and tests).
- :func:`nearest_two` -- the attribution memo: per event, the two
  smallest snapshot distances and the first minimiser, in one batched
  computation.

Backends: numpy when importable, else the stdlib ``array`` module --
the package keeps zero hard dependencies beyond what the repo already
ships, and every consumer falls back to scalar loops over the same
flat buffers when ``HAVE_NUMPY`` is false.

Byte-identity discipline: array math never *decides* anything on its
own.  Batched distances are used only (a) inside tolerance brackets
whose ambiguity band absorbs both robot movement and float-evaluation
differences (``sqrt(dx*dx+dy*dy)`` vs ``math.hypot``), or (b) as
conservative candidate prefilters whose hits are re-checked with the
exact scalar predicate.  The accepted sets, their order, and every
downstream float operation match the naive reference paths exactly.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Sequence, Tuple

# The tolerance bands and the numpy gate are shared by every SoA core
# (swarm, smart-camera, sensornet); re-exported here because this module
# defined them first and downstream code imports them from both places.
from ..geom.exact import (EXACT_REL, HAVE_NUMPY,  # noqa: F401
                          PREFILTER_SLACK, prefilter_limit_sq)
from ..geom.exact import _np
from .arena import Event

#: Shared empty index window, matching :meth:`IndexMemory.view`'s dtype.
EMPTY_INDICES = _np.empty(0, dtype=_np.intp) if HAVE_NUMPY else array("q")


class EventTable:
    """Append-only SoA store of event coordinates.

    Rows are addressed by a *global* index that never changes;
    :meth:`trim` drops physical storage below the live window without
    renumbering, so :class:`IndexMemory` contents stay valid.
    """

    __slots__ = ("size", "_base", "_times", "_xs", "_ys")

    def __init__(self) -> None:
        self.size = 0          # next global index
        self._base = 0         # global index of physical row 0
        if HAVE_NUMPY:
            self._times = _np.empty(256, dtype=_np.float64)
            self._xs = _np.empty(256, dtype=_np.float64)
            self._ys = _np.empty(256, dtype=_np.float64)
        else:
            self._times = array("d")
            self._xs = array("d")
            self._ys = array("d")

    def __len__(self) -> int:
        return self.size

    @property
    def base(self) -> int:
        """Smallest global index still physically stored."""
        return self._base

    def add(self, time: float, x: float, y: float) -> int:
        """Append one event; returns its global index."""
        index = self.size
        row = index - self._base
        if HAVE_NUMPY:
            if row >= len(self._times):
                grow = max(256, 2 * len(self._times))
                for name in ("_times", "_xs", "_ys"):
                    old = getattr(self, name)
                    new = _np.empty(grow, dtype=_np.float64)
                    new[:row] = old[:row]
                    setattr(self, name, new)
            self._times[row] = time
            self._xs[row] = x
            self._ys[row] = y
        else:
            self._times.append(time)
            self._xs.append(x)
            self._ys.append(y)
        self.size = index + 1
        return index

    def add_event(self, event: Event) -> int:
        """Append an :class:`Event`'s coordinates."""
        return self.add(event.time, event.x, event.y)

    def time_at(self, index: int) -> float:
        return float(self._times[index - self._base])

    def x_at(self, index: int) -> float:
        return float(self._xs[index - self._base])

    def y_at(self, index: int) -> float:
        return float(self._ys[index - self._base])

    def event(self, index: int) -> Event:
        """Materialise the row as an :class:`Event` (value-equal to the
        original; the fast path does not retain object identity)."""
        row = index - self._base
        return Event(time=float(self._times[row]), x=float(self._xs[row]),
                     y=float(self._ys[row]))

    def columns(self, lo: int, hi: int):
        """``(xs, ys)`` for global rows ``[lo, hi)`` -- zero-copy numpy
        views, or ``array`` slices under the fallback backend."""
        a, b = lo - self._base, hi - self._base
        return self._xs[a:b], self._ys[a:b]

    def xs_list(self, indices) -> List[float]:
        """Gather x coordinates for ``indices`` as Python floats."""
        if HAVE_NUMPY:
            return self._xs[_np.asarray(indices) - self._base].tolist()
        base = self._base
        return [float(self._xs[i - base]) for i in indices]

    def ys_list(self, indices) -> List[float]:
        """Gather y coordinates for ``indices`` as Python floats."""
        if HAVE_NUMPY:
            return self._ys[_np.asarray(indices) - self._base].tolist()
        base = self._base
        return [float(self._ys[i - base]) for i in indices]

    def trim(self, lo: int) -> None:
        """Drop physical storage for rows below ``lo`` (global indices
        are untouched; accessing a trimmed row is undefined)."""
        if lo <= self._base:
            return
        lo = min(lo, self.size)
        keep = self.size - lo
        shift = lo - self._base
        if HAVE_NUMPY:
            for name in ("_times", "_xs", "_ys"):
                buf = getattr(self, name)
                buf[:keep] = buf[shift:shift + keep]
        else:
            del self._times[:shift]
            del self._xs[:shift]
            del self._ys[:shift]
        self._base = lo


class IndexMemory:
    """One robot's event memory: global table indices, oldest first.

    Indices are appended in non-decreasing event-time order, so expiry
    removes a prefix; :meth:`prune_before` advances a head pointer and
    compacts lazily.
    """

    __slots__ = ("_buf", "_head", "_tail")

    def __init__(self) -> None:
        if HAVE_NUMPY:
            self._buf = _np.empty(64, dtype=_np.intp)
        else:
            self._buf = array("q", bytes(8 * 64))
        self._head = 0
        self._tail = 0

    def __len__(self) -> int:
        return self._tail - self._head

    def __bool__(self) -> bool:
        return self._tail > self._head

    def append(self, index: int) -> None:
        if self._tail >= len(self._buf):
            self._compact_or_grow()
        self._buf[self._tail] = index
        self._tail += 1

    def _compact_or_grow(self) -> None:
        live = self._tail - self._head
        # Enough dead prefix to slide down in place; otherwise double.
        capacity = (len(self._buf) if self._head >= max(64, live)
                    else max(64, 2 * len(self._buf)))
        if HAVE_NUMPY:
            if capacity == len(self._buf):
                self._buf[:live] = self._buf[self._head:self._tail]
            else:
                new = _np.empty(capacity, dtype=_np.intp)
                new[:live] = self._buf[self._head:self._tail]
                self._buf = new
        else:
            new = array("q", self._buf[self._head:self._tail])
            new.extend([0] * (capacity - live))
            self._buf = new
        self._tail = live
        self._head = 0

    def first(self) -> int:
        """Oldest retained index (undefined when empty)."""
        return int(self._buf[self._head])

    def indices(self) -> Iterator[int]:
        """Iterate the retained indices oldest-first, without copying."""
        buf = self._buf
        for k in range(self._head, self._tail):
            yield int(buf[k])

    def view(self):
        """The retained window -- a zero-copy numpy view (numpy backend
        only; fallback callers iterate :meth:`indices`)."""
        return self._buf[self._head:self._tail]

    def tolist(self) -> List[int]:
        return [int(self._buf[k]) for k in range(self._head, self._tail)]

    def prune_before(self, cutoff: float, table: EventTable) -> None:
        """Advance past every index whose event time is ``< cutoff``."""
        buf = self._buf
        head, tail = self._head, self._tail
        times = table._times
        base = table._base
        while head < tail and times[buf[head] - base] < cutoff:
            head += 1
        self._head = head
        if head == tail:
            self._head = self._tail = 0


class RobotArrays:
    """Flat per-robot columns, refreshed from the ``Robot`` objects.

    ``Robot`` stays the mutable unit of the public API (controllers,
    fault hooks and tests flip ``alive`` and move robots one at a
    time); these columns are the batched read path.  ``refresh`` reuses
    the allocated buffers whenever the population size is unchanged.
    """

    __slots__ = ("n", "x", "y", "radius", "alive")

    def __init__(self) -> None:
        self.n = 0
        self.x = self.y = self.radius = self.alive = None

    def refresh(self, robots: Sequence) -> None:
        n = len(robots)
        self.n = n
        if HAVE_NUMPY:
            self.x = _np.fromiter((r.x for r in robots), _np.float64, n)
            self.y = _np.fromiter((r.y for r in robots), _np.float64, n)
            self.radius = _np.fromiter((r.sensing_radius for r in robots),
                                       _np.float64, n)
            self.alive = _np.fromiter((r.alive for r in robots), bool, n)
        else:
            self.x = array("d", [r.x for r in robots])
            self.y = array("d", [r.y for r in robots])
            self.radius = array("d", [r.sensing_radius for r in robots])
            self.alive = [r.alive for r in robots]


def nearest_two(px, py, exs, eys) -> Tuple:
    """Per event: the two smallest distances to the ``(px, py)`` points
    and the index of the first minimiser.

    Ties follow the scalar reference exactly: the first strict minimum
    wins ``idx1``, and a duplicated minimum value also supplies
    ``best2`` (``argmin`` / ``partition`` have the same convention).
    Distances are ``sqrt(dx*dx + dy*dy)``; callers may only use them
    inside tolerance brackets wide enough to absorb the few-ulp
    disagreement with ``math.hypot``.
    """
    if HAVE_NUMPY:
        dx = px[:, None] - exs[None, :]
        dy = py[:, None] - eys[None, :]
        d = _np.sqrt(dx * dx + dy * dy)
        idx1 = d.argmin(axis=0)
        if d.shape[0] >= 2:
            part = _np.partition(d, 1, axis=0)
            best1, best2 = part[0], part[1]
        else:
            best1 = d[0]
            best2 = _np.full(d.shape[1], _np.inf)
        return best1, idx1, best2
    import math
    m = len(exs)
    best1 = array("d", bytes(8 * m))
    best2 = array("d", bytes(8 * m))
    idx1 = array("q", bytes(8 * m))
    for j in range(m):
        ex, ey = exs[j], eys[j]
        b1 = b2 = math.inf
        i1 = -1
        for i in range(len(px)):
            d = math.hypot(px[i] - ex, py[i] - ey)
            if d < b1:
                b2 = b1
                b1 = d
                i1 = i
            elif d < b2:
                b2 = d
        best1[j] = b1
        best2[j] = b2
        idx1[j] = i1
    return best1, idx1, best2
