"""The swarm's arena: a unit square producing events to be witnessed.

Models the collective-robotics setting of paper ref [34]: a swarm must
keep the arena covered so that events (intrusions, detections, tasks)
are witnessed by some robot.  Events cluster around *hotspots* whose
locations shift during the mission -- the "situation requiring
self-adaptive action" the self-aware swarm is supposed to recognise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Event:
    """One point event; witnessed if a robot is within sensing range."""

    time: float
    x: float
    y: float


@dataclass
class Hotspot:
    """A cluster centre for event generation."""

    x: float
    y: float
    spread: float = 0.08

    def sample(self, rng: np.random.Generator) -> Tuple[float, float]:
        """One event location around this hotspot, clipped to the arena."""
        ex = float(np.clip(self.x + rng.normal(0.0, self.spread), 0.0, 1.0))
        ey = float(np.clip(self.y + rng.normal(0.0, self.spread), 0.0, 1.0))
        return ex, ey


class Arena:
    """Event generator over the unit square.

    Parameters
    ----------
    hotspots:
        Current cluster centres.
    hotspot_fraction:
        Probability an event comes from a hotspot (rest uniform).
    events_per_step:
        Poisson mean of events per step.
    shift_times:
        Times at which every hotspot jumps to a fresh random location --
        the mission-level change the swarm must adapt its structure to.
    """

    def __init__(self, hotspots: Sequence[Hotspot],
                 hotspot_fraction: float = 0.7,
                 events_per_step: float = 3.0,
                 shift_times: Sequence[float] = (),
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        if events_per_step <= 0:
            raise ValueError("events_per_step must be positive")
        self.hotspots: List[Hotspot] = list(hotspots)
        self.hotspot_fraction = hotspot_fraction
        self.events_per_step = events_per_step
        self.shift_times = sorted(shift_times)
        self._shifted = 0
        self._rng = rng if rng is not None else np.random.default_rng()
        self.shifts_applied: List[float] = []

    @classmethod
    def with_random_hotspots(cls, n_hotspots: int = 2, seed: int = 0,
                             **kwargs) -> "Arena":
        """Arena with uniformly placed hotspots."""
        rng = np.random.default_rng(seed)
        hotspots = [Hotspot(x=float(rng.uniform(0.15, 0.85)),
                            y=float(rng.uniform(0.15, 0.85)))
                    for _ in range(n_hotspots)]
        return cls(hotspots, rng=rng, **kwargs)

    def _maybe_shift(self, now: float) -> None:
        while (self._shifted < len(self.shift_times)
               and now >= self.shift_times[self._shifted]):
            for hotspot in self.hotspots:
                hotspot.x = float(self._rng.uniform(0.15, 0.85))
                hotspot.y = float(self._rng.uniform(0.15, 0.85))
            self.shifts_applied.append(self.shift_times[self._shifted])
            self._shifted += 1

    def step(self, now: float) -> List[Event]:
        """Generate this step's events (after applying due hotspot shifts)."""
        self._maybe_shift(now)
        count = int(self._rng.poisson(self.events_per_step))
        events: List[Event] = []
        for _ in range(count):
            use_hotspot = (self.hotspots
                           and self._rng.random() < self.hotspot_fraction)
            if use_hotspot:
                hotspot = self.hotspots[
                    int(self._rng.integers(len(self.hotspots)))]
                x, y = hotspot.sample(self._rng)
            else:
                x, y = (float(self._rng.uniform(0, 1)),
                        float(self._rng.uniform(0, 1)))
            events.append(Event(time=now, x=x, y=y))
        return events
