"""The swarm's arena: a unit square producing events to be witnessed.

Models the collective-robotics setting of paper ref [34]: a swarm must
keep the arena covered so that events (intrusions, detections, tasks)
are witnessed by some robot.  Events cluster around *hotspots* whose
locations shift during the mission -- the "situation requiring
self-adaptive action" the self-aware swarm is supposed to recognise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True, slots=True)
class Event:
    """One point event; witnessed if a robot is within sensing range."""

    time: float
    x: float
    y: float


@dataclass(slots=True)
class Hotspot:
    """A cluster centre for event generation."""

    x: float
    y: float
    spread: float = 0.08

    def sample(self, rng: np.random.Generator) -> Tuple[float, float]:
        """One event location around this hotspot, clipped to the arena.

        The two offsets are drawn as one batched ``normal`` call, which
        consumes the generator's bitstream exactly like two successive
        scalar draws (numpy fills the array sequentially), and min/max
        clamping equals ``np.clip`` for finite floats -- so the sampled
        stream is bit-identical to the original scalar implementation
        at a fraction of the call overhead.
        """
        dx, dy = rng.normal(0.0, self.spread, 2)
        ex = min(1.0, max(0.0, self.x + float(dx)))
        ey = min(1.0, max(0.0, self.y + float(dy)))
        return ex, ey


class Arena:
    """Event generator over the unit square.

    Parameters
    ----------
    hotspots:
        Current cluster centres.
    hotspot_fraction:
        Probability an event comes from a hotspot (rest uniform).
    events_per_step:
        Poisson mean of events per step.
    shift_times:
        Times at which every hotspot jumps to a fresh random location --
        the mission-level change the swarm must adapt its structure to.
    """

    def __init__(self, hotspots: Sequence[Hotspot],
                 hotspot_fraction: float = 0.7,
                 events_per_step: float = 3.0,
                 shift_times: Sequence[float] = (),
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        if events_per_step <= 0:
            raise ValueError("events_per_step must be positive")
        self.hotspots: List[Hotspot] = list(hotspots)
        self.hotspot_fraction = hotspot_fraction
        self.events_per_step = events_per_step
        self.shift_times = sorted(shift_times)
        self._shifted = 0
        self._rng = rng if rng is not None else np.random.default_rng()
        self.shifts_applied: List[float] = []

    @classmethod
    def with_random_hotspots(cls, n_hotspots: int = 2, seed: int = 0,
                             **kwargs) -> "Arena":
        """Arena with uniformly placed hotspots."""
        rng = np.random.default_rng(seed)
        hotspots = [Hotspot(x=float(rng.uniform(0.15, 0.85)),
                            y=float(rng.uniform(0.15, 0.85)))
                    for _ in range(n_hotspots)]
        return cls(hotspots, rng=rng, **kwargs)

    def _maybe_shift(self, now: float) -> None:
        while (self._shifted < len(self.shift_times)
               and now >= self.shift_times[self._shifted]):
            for hotspot in self.hotspots:
                hotspot.x = float(self._rng.uniform(0.15, 0.85))
                hotspot.y = float(self._rng.uniform(0.15, 0.85))
            self.shifts_applied.append(self.shift_times[self._shifted])
            self._shifted += 1

    def step(self, now: float) -> List[Event]:
        """Generate this step's events (after applying due hotspot shifts).

        Draw order (and hence the generator bitstream) is identical to
        the original per-scalar implementation: background events batch
        their two uniforms into one call, which numpy fills from the
        same stream positions as two successive scalar draws.
        """
        self._maybe_shift(now)
        rng = self._rng
        hotspots = self.hotspots
        n_hotspots = len(hotspots)
        fraction = self.hotspot_fraction
        count = int(rng.poisson(self.events_per_step))
        events: List[Event] = []
        append = events.append
        for _ in range(count):
            if hotspots and rng.random() < fraction:
                hotspot = hotspots[int(rng.integers(n_hotspots))]
                x, y = hotspot.sample(rng)
            else:
                u, v = rng.uniform(0, 1, 2)
                x, y = float(u), float(v)
            append(Event(time=now, x=x, y=y))
        return events
