"""Robots and swarm structure controllers.

Paper ref [34] (Zambonelli et al.): self-awareness in ensembles should
recognise, during operation, situations that require self-adaptive
actions -- in particular *intentionally modifying the structure of the
swarm*.  Three structure controllers:

- :class:`StaticFormation` -- design-time posts on a grid; robots hold
  them no matter what happens (including the deaths of their peers);
- :class:`RandomPatrol` -- structureless random walking (the floor);
- :class:`SelfAwareSwarm` -- each robot learns where events actually
  occur (an EWMA centroid of its own witnessed events), shares it with
  neighbours (interaction awareness), and moves under an
  attraction/repulsion law: toward where events are, away from where
  peers already are.  Nothing is centralised; peer death is *noticed*
  (missed heartbeats) and the survivors' repulsion equilibrium re-forms
  the structure around the hole.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .arena import Event


@dataclass
class Robot:
    """One swarm member."""

    robot_id: int
    x: float
    y: float
    speed: float = 0.03
    sensing_radius: float = 0.14
    alive: bool = True

    def distance_to(self, x: float, y: float) -> float:
        """Euclidean distance from the robot to a point."""
        return math.hypot(self.x - x, self.y - y)

    def witnesses(self, event: Event) -> bool:
        """Whether the robot (if alive) senses the event."""
        return self.alive and self.distance_to(event.x, event.y) <= \
            self.sensing_radius

    def move_toward(self, tx: float, ty: float) -> None:
        """Move up to ``speed`` toward the target, staying in the arena."""
        if not self.alive:
            return
        dx, dy = tx - self.x, ty - self.y
        dist = math.hypot(dx, dy)
        if dist > self.speed:
            dx, dy = dx / dist * self.speed, dy / dist * self.speed
        self.x = float(np.clip(self.x + dx, 0.0, 1.0))
        self.y = float(np.clip(self.y + dy, 0.0, 1.0))


def make_swarm(n_robots: int, speed: float = 0.03,
               sensing_radius: float = 0.14,
               seed: int = 0) -> List[Robot]:
    """Robots initially scattered uniformly."""
    rng = np.random.default_rng(seed)
    return [Robot(robot_id=i, x=float(rng.uniform(0, 1)),
                  y=float(rng.uniform(0, 1)), speed=speed,
                  sensing_radius=sensing_radius)
            for i in range(n_robots)]


class SwarmController(ABC):
    """Decides each robot's movement target every step."""

    @abstractmethod
    def step(self, now: float, robots: Sequence[Robot],
             witnessed: Sequence[Tuple[int, Event]]) -> None:
        """Move the (alive) robots; ``witnessed`` = (robot_id, event) pairs."""


class StaticFormation(SwarmController):
    """Design-time structure: hold grid posts forever.

    The posts are computed once for the *initial* swarm size; when
    robots die their posts simply go unmanned, and nobody reacts to
    where events actually occur.
    """

    def __init__(self, n_robots: int) -> None:
        cols = int(math.ceil(math.sqrt(n_robots)))
        rows = int(math.ceil(n_robots / cols))
        self.posts: Dict[int, Tuple[float, float]] = {}
        for i in range(n_robots):
            r, c = divmod(i, cols)
            self.posts[i] = ((c + 0.5) / cols, (r + 0.5) / rows)

    def step(self, now: float, robots: Sequence[Robot],
             witnessed: Sequence[Tuple[int, Event]]) -> None:
        for robot in robots:
            post = self.posts.get(robot.robot_id)
            if post is not None:
                robot.move_toward(*post)


class RandomPatrol(SwarmController):
    """Structureless floor: every robot random-walks."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()
        self._targets: Dict[int, Tuple[float, float]] = {}

    def step(self, now: float, robots: Sequence[Robot],
             witnessed: Sequence[Tuple[int, Event]]) -> None:
        for robot in robots:
            if not robot.alive:
                continue
            target = self._targets.get(robot.robot_id)
            if target is None or robot.distance_to(*target) < robot.speed:
                target = (float(self._rng.uniform(0, 1)),
                          float(self._rng.uniform(0, 1)))
                self._targets[robot.robot_id] = target
            robot.move_toward(*target)


class SelfAwareSwarm(SwarmController):
    """Decentralised adaptive structure from local awareness.

    Per robot:

    - **event memory**: positions of events the robot witnessed, plus
      events heard from communication-range neighbours (gossip) -- a
      sliding window, so shifted hotspots age out;
    - **event attribution**: of the remembered events, a robot pursues
      only those it is *nearest live robot* to (a decentralised Lloyd /
      Voronoi split, preventing the whole swarm from piling onto one
      hotspot);
    - **patrol fallback**: a robot whose memory attributes it nothing
      random-walks -- exploration both keeps the uniform background
      covered and rediscovers regions a dead peer used to watch;
    - **separation**: only short-range (inside roughly one sensing
      diameter) and only from *live* peers, so dead robots stop
      reserving space and the survivors flow into the hole.

    Parameters
    ----------
    comm_radius:
        Gossip range for sharing witnessed events.
    memory:
        Steps an event is remembered (staleness bound on the structure).
    min_separation:
        Distance below which live peers push apart.
    """

    def __init__(self, comm_radius: float = 0.35, memory: int = 120,
                 min_separation: float = 0.2,
                 rng: Optional[np.random.Generator] = None) -> None:
        if memory < 1:
            raise ValueError("memory must be at least 1")
        self.comm_radius = comm_radius
        self.memory = memory
        self.min_separation = min_separation
        self._rng = rng if rng is not None else np.random.default_rng()
        self._events: Dict[int, List[Event]] = {}
        self._patrol: Dict[int, Tuple[float, float]] = {}

    def known_events(self, robot_id: int) -> List[Event]:
        """The robot's current (pruned) event memory."""
        return list(self._events.get(robot_id, []))

    def _share(self, robots: Sequence[Robot],
               witnessed: Sequence[Tuple[int, Event]]) -> None:
        by_robot = {r.robot_id: r for r in robots}
        for robot_id, event in witnessed:
            witness = by_robot[robot_id]
            self._events.setdefault(robot_id, []).append(event)
            for peer in robots:
                if (peer.alive and peer.robot_id != robot_id
                        and witness.distance_to(peer.x, peer.y)
                        <= self.comm_radius):
                    self._events.setdefault(peer.robot_id, []).append(event)

    def _prune(self, now: float) -> None:
        cutoff = now - self.memory
        for robot_id, events in self._events.items():
            self._events[robot_id] = [e for e in events if e.time >= cutoff]

    def _attributed(self, robot: Robot,
                    alive: Sequence[Robot]) -> List[Event]:
        """Remembered events for which this robot is the nearest live one."""
        mine = []
        for event in self._events.get(robot.robot_id, []):
            d_self = robot.distance_to(event.x, event.y)
            closer = any(
                peer.robot_id != robot.robot_id
                and peer.distance_to(event.x, event.y) < d_self
                for peer in alive)
            if not closer:
                mine.append(event)
        return mine

    def step(self, now: float, robots: Sequence[Robot],
             witnessed: Sequence[Tuple[int, Event]]) -> None:
        self._share(robots, witnessed)
        self._prune(now)
        alive = [r for r in robots if r.alive]
        for robot in alive:
            mine = self._attributed(robot, alive)
            if mine:
                tx = sum(e.x for e in mine) / len(mine)
                ty = sum(e.y for e in mine) / len(mine)
                self._patrol.pop(robot.robot_id, None)
            else:
                target = self._patrol.get(robot.robot_id)
                if target is None or robot.distance_to(*target) < robot.speed:
                    target = (float(self._rng.uniform(0, 1)),
                              float(self._rng.uniform(0, 1)))
                    self._patrol[robot.robot_id] = target
                tx, ty = target
            # Short-range separation from live peers only.
            sx = sy = 0.0
            for peer in alive:
                if peer.robot_id == robot.robot_id:
                    continue
                dist = robot.distance_to(peer.x, peer.y)
                if dist < self.min_separation:
                    push = (self.min_separation - dist) / self.min_separation
                    dx = robot.x - peer.x
                    dy = robot.y - peer.y
                    norm = max(dist, 1e-6)
                    sx += push * dx / norm * robot.speed
                    sy += push * dy / norm * robot.speed
            robot.move_toward(tx + sx, ty + sy)
