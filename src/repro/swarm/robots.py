"""Robots and swarm structure controllers.

Paper ref [34] (Zambonelli et al.): self-awareness in ensembles should
recognise, during operation, situations that require self-adaptive
actions -- in particular *intentionally modifying the structure of the
swarm*.  Three structure controllers:

- :class:`StaticFormation` -- design-time posts on a grid; robots hold
  them no matter what happens (including the deaths of their peers);
- :class:`RandomPatrol` -- structureless random walking (the floor);
- :class:`SelfAwareSwarm` -- each robot learns where events actually
  occur (an EWMA centroid of its own witnessed events), shares it with
  neighbours (interaction awareness), and moves under an
  attraction/repulsion law: toward where events are, away from where
  peers already are.  Nothing is centralised; peer death is *noticed*
  (missed heartbeats) and the survivors' repulsion equilibrium re-forms
  the structure around the hole.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .arena import Event


@dataclass(slots=True)
class Robot:
    """One swarm member."""

    robot_id: int
    x: float
    y: float
    speed: float = 0.03
    sensing_radius: float = 0.14
    alive: bool = True

    def distance_to(self, x: float, y: float) -> float:
        """Euclidean distance from the robot to a point."""
        return math.hypot(self.x - x, self.y - y)

    def witnesses(self, event: Event) -> bool:
        """Whether the robot (if alive) senses the event."""
        return self.alive and self.distance_to(event.x, event.y) <= \
            self.sensing_radius

    def move_toward(self, tx: float, ty: float) -> None:
        """Move up to ``speed`` toward the target, staying in the arena."""
        if not self.alive:
            return
        dx, dy = tx - self.x, ty - self.y
        dist = math.hypot(dx, dy)
        if dist > self.speed:
            dx, dy = dx / dist * self.speed, dy / dist * self.speed
        # min/max clamping is bit-identical to np.clip for finite floats
        # and avoids two numpy scalar round-trips on the hottest call in
        # the swarm step.
        self.x = min(1.0, max(0.0, self.x + dx))
        self.y = min(1.0, max(0.0, self.y + dy))


def make_swarm(n_robots: int, speed: float = 0.03,
               sensing_radius: float = 0.14,
               seed: int = 0) -> List[Robot]:
    """Robots initially scattered uniformly."""
    rng = np.random.default_rng(seed)
    return [Robot(robot_id=i, x=float(rng.uniform(0, 1)),
                  y=float(rng.uniform(0, 1)), speed=speed,
                  sensing_radius=sensing_radius)
            for i in range(n_robots)]


class SwarmController(ABC):
    """Decides each robot's movement target every step."""

    @abstractmethod
    def step(self, now: float, robots: Sequence[Robot],
             witnessed: Sequence[Tuple[int, Event]]) -> None:
        """Move the (alive) robots; ``witnessed`` = (robot_id, event) pairs."""


class StaticFormation(SwarmController):
    """Design-time structure: hold grid posts forever.

    The posts are computed once for the *initial* swarm size; when
    robots die their posts simply go unmanned, and nobody reacts to
    where events actually occur.
    """

    def __init__(self, n_robots: int) -> None:
        cols = int(math.ceil(math.sqrt(n_robots)))
        rows = int(math.ceil(n_robots / cols))
        self.posts: Dict[int, Tuple[float, float]] = {}
        for i in range(n_robots):
            r, c = divmod(i, cols)
            self.posts[i] = ((c + 0.5) / cols, (r + 0.5) / rows)

    def step(self, now: float, robots: Sequence[Robot],
             witnessed: Sequence[Tuple[int, Event]]) -> None:
        for robot in robots:
            post = self.posts.get(robot.robot_id)
            if post is not None:
                robot.move_toward(*post)


class RandomPatrol(SwarmController):
    """Structureless floor: every robot random-walks."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()
        self._targets: Dict[int, Tuple[float, float]] = {}

    def step(self, now: float, robots: Sequence[Robot],
             witnessed: Sequence[Tuple[int, Event]]) -> None:
        for robot in robots:
            if not robot.alive:
                continue
            target = self._targets.get(robot.robot_id)
            if target is None or robot.distance_to(*target) < robot.speed:
                target = (float(self._rng.uniform(0, 1)),
                          float(self._rng.uniform(0, 1)))
                self._targets[robot.robot_id] = target
            robot.move_toward(*target)


class SelfAwareSwarm(SwarmController):
    """Decentralised adaptive structure from local awareness.

    Per robot:

    - **event memory**: positions of events the robot witnessed, plus
      events heard from communication-range neighbours (gossip) -- a
      sliding window, so shifted hotspots age out;
    - **event attribution**: of the remembered events, a robot pursues
      only those it is *nearest live robot* to (a decentralised Lloyd /
      Voronoi split, preventing the whole swarm from piling onto one
      hotspot);
    - **patrol fallback**: a robot whose memory attributes it nothing
      random-walks -- exploration both keeps the uniform background
      covered and rediscovers regions a dead peer used to watch;
    - **separation**: only short-range (inside roughly one sensing
      diameter) and only from *live* peers, so dead robots stop
      reserving space and the survivors flow into the hole.

    Parameters
    ----------
    comm_radius:
        Gossip range for sharing witnessed events.
    memory:
        Steps an event is remembered (staleness bound on the structure).
    min_separation:
        Distance below which live peers push apart.
    fast:
        Use the optimised step internals (per-step nearest-robot memo,
        gossip-neighbourhood caching, prefix pruning).  The naive
        reference paths are retained under ``fast=False`` for the
        equivalence tests and the ``repro.bench`` baselines; both
        produce identical robot trajectories and memories.
    """

    def __init__(self, comm_radius: float = 0.35, memory: int = 120,
                 min_separation: float = 0.2,
                 rng: Optional[np.random.Generator] = None,
                 fast: bool = True) -> None:
        if memory < 1:
            raise ValueError("memory must be at least 1")
        self.comm_radius = comm_radius
        self.memory = memory
        self.min_separation = min_separation
        self.fast = fast
        self._rng = rng if rng is not None else np.random.default_rng()
        self._events: Dict[int, List[Event]] = {}
        self._patrol: Dict[int, Tuple[float, float]] = {}

    def known_events(self, robot_id: int) -> List[Event]:
        """The robot's current (pruned) event memory."""
        return list(self._events.get(robot_id, []))

    def _share(self, robots: Sequence[Robot],
               witnessed: Sequence[Tuple[int, Event]]) -> None:
        """Naive gossip: every pair re-measured per witnessed event."""
        by_robot = {r.robot_id: r for r in robots}
        for robot_id, event in witnessed:
            witness = by_robot[robot_id]
            self._events.setdefault(robot_id, []).append(event)
            for peer in robots:
                if (peer.alive and peer.robot_id != robot_id
                        and witness.distance_to(peer.x, peer.y)
                        <= self.comm_radius):
                    self._events.setdefault(peer.robot_id, []).append(event)

    def _share_fast(self, robots: Sequence[Robot],
                    witnessed: Sequence[Tuple[int, Event]]) -> None:
        """Gossip with the witness's neighbourhood computed once.

        Positions do not change while sharing, so a robot witnessing
        several events this step reuses one in-range peer list; appends
        happen in the same (witnessed-order, robots-order) sequence as
        the naive path, so every memory list is identical.
        """
        by_robot = {r.robot_id: r for r in robots}
        events = self._events
        in_range: Dict[int, List[int]] = {}
        for robot_id, event in witnessed:
            peers = in_range.get(robot_id)
            if peers is None:
                witness = by_robot[robot_id]
                comm = self.comm_radius
                peers = [peer.robot_id for peer in robots
                         if (peer.alive and peer.robot_id != robot_id
                             and witness.distance_to(peer.x, peer.y) <= comm)]
                in_range[robot_id] = peers
            events.setdefault(robot_id, []).append(event)
            for peer_id in peers:
                events.setdefault(peer_id, []).append(event)

    def _prune(self, now: float) -> None:
        cutoff = now - self.memory
        for robot_id, events in self._events.items():
            self._events[robot_id] = [e for e in events if e.time >= cutoff]

    def _prune_fast(self, now: float) -> None:
        """Drop the expired prefix only.

        Events are appended with non-decreasing timestamps, so expiry
        removes a prefix; scanning just that prefix is O(expired) per
        step instead of O(retained) and leaves the identical list.
        """
        cutoff = now - self.memory
        events_by_robot = self._events
        for robot_id, events in events_by_robot.items():
            drop = 0
            for event in events:
                if event.time >= cutoff:
                    break
                drop += 1
            if drop:
                events_by_robot[robot_id] = events[drop:]

    def _attributed(self, robot: Robot,
                    alive: Sequence[Robot]) -> List[Event]:
        """Remembered events for which this robot is the nearest live one."""
        mine = []
        for event in self._events.get(robot.robot_id, []):
            d_self = robot.distance_to(event.x, event.y)
            closer = any(
                peer.robot_id != robot.robot_id
                and peer.distance_to(event.x, event.y) < d_self
                for peer in alive)
            if not closer:
                mine.append(event)
        return mine

    def _attributed_fast(self, robot: Robot, index: int,
                         alive: Sequence[Robot],
                         nearest: Dict[int, Tuple[float, int, float]],
                         snapshot: Sequence[Tuple[float, float]],
                         band: float) -> List[Event]:
        """Attribution pruned by a shared per-step nearest-distance memo.

        Robots move *during* the attribution loop, so peer distances
        drift as the loop proceeds -- but by at most one ``speed`` per
        robot per step.  Per event object we memoise the two smallest
        distances over the start-of-loop ``snapshot`` positions (and the
        minimiser's index); each live *peer* distance then lies within
        ``band`` of its snapshot value, so the smallest snapshot
        distance among this robot's peers -- the runner-up when the
        robot is itself the minimiser -- brackets the live peer minimum:

        - ``d_self`` above the bracket: some peer is certainly strictly
          closer -- not attributed;
        - ``d_self`` below it: every peer is certainly farther --
          attributed;
        - inside the narrow ambiguity band (a genuine near-tie between
          two robots): fall back to the exact naive scan over the
          *current* positions.

        The answer matches :meth:`_attributed` exactly.
        """
        hypot = math.hypot
        mine = []
        for event in self._events.get(robot.robot_id, []):
            ex, ey = event.x, event.y
            d_self = robot.distance_to(ex, ey)
            key = id(event)
            memo = nearest.get(key)
            if memo is None:
                best1 = best2 = math.inf
                idx1 = -1
                for i, (sx, sy) in enumerate(snapshot):
                    d = hypot(sx - ex, sy - ey)
                    if d < best1:
                        best2 = best1
                        best1 = d
                        idx1 = i
                    elif d < best2:
                        best2 = d
                memo = (best1, idx1, best2)
                nearest[key] = memo
            best1, idx1, best2 = memo
            peer_min0 = best2 if idx1 == index else best1
            if d_self > peer_min0 + band:
                continue
            if d_self < peer_min0 - band:
                mine.append(event)
                continue
            closer = any(
                peer.robot_id != robot.robot_id
                and peer.distance_to(ex, ey) < d_self
                for peer in alive)
            if not closer:
                mine.append(event)
        return mine

    def step(self, now: float, robots: Sequence[Robot],
             witnessed: Sequence[Tuple[int, Event]]) -> None:
        fast = self.fast
        if fast:
            self._share_fast(robots, witnessed)
            self._prune_fast(now)
        else:
            self._share(robots, witnessed)
            self._prune(now)
        alive = [r for r in robots if r.alive]
        if fast:
            nearest: Dict[int, Tuple[float, int, float]] = {}
            snapshot = [(r.x, r.y) for r in alive]
            # Upper bound on any robot's displacement within this step,
            # inflated to absorb float rounding in move_toward.
            band = (max(r.speed for r in alive) * 1.01 + 1e-12
                    if alive else 0.0)
        for index, robot in enumerate(alive):
            if fast:
                mine = self._attributed_fast(robot, index, alive, nearest,
                                             snapshot, band)
            else:
                mine = self._attributed(robot, alive)
            if mine:
                tx = sum(e.x for e in mine) / len(mine)
                ty = sum(e.y for e in mine) / len(mine)
                self._patrol.pop(robot.robot_id, None)
            else:
                target = self._patrol.get(robot.robot_id)
                if target is None or robot.distance_to(*target) < robot.speed:
                    target = (float(self._rng.uniform(0, 1)),
                              float(self._rng.uniform(0, 1)))
                    self._patrol[robot.robot_id] = target
                tx, ty = target
            # Short-range separation from live peers only.
            sx = sy = 0.0
            for peer in alive:
                if peer.robot_id == robot.robot_id:
                    continue
                dist = robot.distance_to(peer.x, peer.y)
                if dist < self.min_separation:
                    push = (self.min_separation - dist) / self.min_separation
                    dx = robot.x - peer.x
                    dy = robot.y - peer.y
                    norm = max(dist, 1e-6)
                    sx += push * dx / norm * robot.speed
                    sy += push * dy / norm * robot.speed
            robot.move_toward(tx + sx, ty + sy)
