"""Robots and swarm structure controllers.

Paper ref [34] (Zambonelli et al.): self-awareness in ensembles should
recognise, during operation, situations that require self-adaptive
actions -- in particular *intentionally modifying the structure of the
swarm*.  Three structure controllers:

- :class:`StaticFormation` -- design-time posts on a grid; robots hold
  them no matter what happens (including the deaths of their peers);
- :class:`RandomPatrol` -- structureless random walking (the floor);
- :class:`SelfAwareSwarm` -- each robot learns where events actually
  occur (an EWMA centroid of its own witnessed events), shares it with
  neighbours (interaction awareness), and moves under an
  attraction/repulsion law: toward where events are, away from where
  peers already are.  Nothing is centralised; peer death is *noticed*
  (missed heartbeats) and the survivors' repulsion equilibrium re-forms
  the structure around the hole.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import soa
from .arena import Event

#: Default for :class:`SelfAwareSwarm`'s ``fast`` parameter: run on the
#: struct-of-arrays memory (vectorised when numpy is importable).  The
#: naive object-graph reference path is retained under ``fast=False``
#: as the byte-identity baseline; CI's ``perf-equivalence`` job flips
#: this flag to prove the experiment tables match under both defaults.
USE_FAST_SWARM = True


@dataclass(slots=True)
class Robot:
    """One swarm member."""

    robot_id: int
    x: float
    y: float
    speed: float = 0.03
    sensing_radius: float = 0.14
    alive: bool = True

    def distance_to(self, x: float, y: float) -> float:
        """Euclidean distance from the robot to a point."""
        return math.hypot(self.x - x, self.y - y)

    def witnesses(self, event: Event) -> bool:
        """Whether the robot (if alive) senses the event."""
        return self.alive and self.distance_to(event.x, event.y) <= \
            self.sensing_radius

    def move_toward(self, tx: float, ty: float) -> None:
        """Move up to ``speed`` toward the target, staying in the arena."""
        if not self.alive:
            return
        dx, dy = tx - self.x, ty - self.y
        dist = math.hypot(dx, dy)
        if dist > self.speed:
            dx, dy = dx / dist * self.speed, dy / dist * self.speed
        # min/max clamping is bit-identical to np.clip for finite floats
        # and avoids two numpy scalar round-trips on the hottest call in
        # the swarm step.
        self.x = min(1.0, max(0.0, self.x + dx))
        self.y = min(1.0, max(0.0, self.y + dy))


def make_swarm(n_robots: int, speed: float = 0.03,
               sensing_radius: float = 0.14,
               seed: int = 0) -> List[Robot]:
    """Robots initially scattered uniformly."""
    rng = np.random.default_rng(seed)
    return [Robot(robot_id=i, x=float(rng.uniform(0, 1)),
                  y=float(rng.uniform(0, 1)), speed=speed,
                  sensing_radius=sensing_radius)
            for i in range(n_robots)]


class SwarmController(ABC):
    """Decides each robot's movement target every step."""

    @abstractmethod
    def step(self, now: float, robots: Sequence[Robot],
             witnessed: Sequence[Tuple[int, Event]]) -> None:
        """Move the (alive) robots; ``witnessed`` = (robot_id, event) pairs."""


class StaticFormation(SwarmController):
    """Design-time structure: hold grid posts forever.

    The posts are computed once for the *initial* swarm size; when
    robots die their posts simply go unmanned, and nobody reacts to
    where events actually occur.
    """

    def __init__(self, n_robots: int) -> None:
        cols = int(math.ceil(math.sqrt(n_robots)))
        rows = int(math.ceil(n_robots / cols))
        self.posts: Dict[int, Tuple[float, float]] = {}
        for i in range(n_robots):
            r, c = divmod(i, cols)
            self.posts[i] = ((c + 0.5) / cols, (r + 0.5) / rows)

    def step(self, now: float, robots: Sequence[Robot],
             witnessed: Sequence[Tuple[int, Event]]) -> None:
        for robot in robots:
            post = self.posts.get(robot.robot_id)
            if post is not None:
                robot.move_toward(*post)


class RandomPatrol(SwarmController):
    """Structureless floor: every robot random-walks."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()
        self._targets: Dict[int, Tuple[float, float]] = {}

    def step(self, now: float, robots: Sequence[Robot],
             witnessed: Sequence[Tuple[int, Event]]) -> None:
        for robot in robots:
            if not robot.alive:
                continue
            target = self._targets.get(robot.robot_id)
            if target is None or robot.distance_to(*target) < robot.speed:
                target = (float(self._rng.uniform(0, 1)),
                          float(self._rng.uniform(0, 1)))
                self._targets[robot.robot_id] = target
            robot.move_toward(*target)


class SelfAwareSwarm(SwarmController):
    """Decentralised adaptive structure from local awareness.

    Per robot:

    - **event memory**: positions of events the robot witnessed, plus
      events heard from communication-range neighbours (gossip) -- a
      sliding window, so shifted hotspots age out;
    - **event attribution**: of the remembered events, a robot pursues
      only those it is *nearest live robot* to (a decentralised Lloyd /
      Voronoi split, preventing the whole swarm from piling onto one
      hotspot);
    - **patrol fallback**: a robot whose memory attributes it nothing
      random-walks -- exploration both keeps the uniform background
      covered and rediscovers regions a dead peer used to watch;
    - **separation**: only short-range (inside roughly one sensing
      diameter) and only from *live* peers, so dead robots stop
      reserving space and the survivors flow into the hole.

    Parameters
    ----------
    comm_radius:
        Gossip range for sharing witnessed events.
    memory:
        Steps an event is remembered (staleness bound on the structure).
    min_separation:
        Distance below which live peers push apart.
    fast:
        Run on the struct-of-arrays memory (:mod:`repro.swarm.soa`):
        event coordinates in flat columns, per-robot memories as index
        buffers, batched distance math behind conservative brackets
        with exact scalar fallbacks.  Defaults to the module flag
        :data:`USE_FAST_SWARM`.  The naive object-graph reference path
        is retained under ``fast=False`` for the equivalence tests and
        the ``repro.bench`` baselines; both produce identical robot
        trajectories and memories.
    vectorized:
        Within the fast path, use numpy batch kernels (default: numpy
        availability).  ``vectorized=False`` forces the pure-python
        scalar loops over the same flat buffers -- the zero-dependency
        fallback, equally byte-identical.
    """

    def __init__(self, comm_radius: float = 0.35, memory: int = 120,
                 min_separation: float = 0.2,
                 rng: Optional[np.random.Generator] = None,
                 fast: Optional[bool] = None,
                 vectorized: Optional[bool] = None) -> None:
        if memory < 1:
            raise ValueError("memory must be at least 1")
        self.comm_radius = comm_radius
        self.memory = memory
        self.min_separation = min_separation
        self.fast = USE_FAST_SWARM if fast is None else fast
        self.vectorized = (soa.HAVE_NUMPY if vectorized is None
                           else bool(vectorized) and soa.HAVE_NUMPY)
        self._rng = rng if rng is not None else np.random.default_rng()
        # Naive-path memory: per robot, lists of Event objects.
        self._events: Dict[int, List[Event]] = {}
        # Fast-path memory: one SoA table of event coordinates shared by
        # all robots, plus per-robot index buffers into it.
        self._table = soa.EventTable()
        self._mem: Dict[int, soa.IndexMemory] = {}
        self._arrays = soa.RobotArrays()
        self._patrol: Dict[int, Tuple[float, float]] = {}

    def known_events(self, robot_id: int) -> List[Event]:
        """The robot's current (pruned) event memory."""
        if self.fast:
            memory = self._mem.get(robot_id)
            if memory is None:
                return []
            table = self._table
            return [table.event(i) for i in memory.indices()]
        return list(self._events.get(robot_id, []))

    # -- shared movement law (identical arithmetic on every path) ----------

    def _patrol_target(self, robot: Robot) -> Tuple[float, float]:
        target = self._patrol.get(robot.robot_id)
        if target is None or robot.distance_to(*target) < robot.speed:
            target = (float(self._rng.uniform(0, 1)),
                      float(self._rng.uniform(0, 1)))
            self._patrol[robot.robot_id] = target
        return target

    def _separation(self, robot: Robot,
                    alive: Sequence[Robot]) -> Tuple[float, float]:
        """Short-range separation from live peers only (reference scan)."""
        sx = sy = 0.0
        min_separation = self.min_separation
        for peer in alive:
            if peer.robot_id == robot.robot_id:
                continue
            dist = robot.distance_to(peer.x, peer.y)
            if dist < min_separation:
                push = (min_separation - dist) / min_separation
                dx = robot.x - peer.x
                dy = robot.y - peer.y
                norm = max(dist, 1e-6)
                sx += push * dx / norm * robot.speed
                sy += push * dy / norm * robot.speed
        return sx, sy

    def _separation_candidates(self, alive: Sequence[Robot],
                               px, py) -> List[List[int]]:
        """Per-robot separation candidates from start-of-step positions.

        Any peer currently within ``min_separation`` of a robot was,
        at the start of the step, within ``min_separation`` plus two
        maximal moves (both endpoints move at most ``speed``; the arena
        clamp only shortens a move).  One inflated squared-distance
        matrix over the start positions therefore yields a guaranteed
        superset of every exact hit for the whole step, in (robot,
        ascending-peer) order -- the order the reference scan visits.
        """
        np_ = soa._np
        smax = max(r.speed for r in alive)
        limit = soa.prefilter_limit_sq(self.min_separation + 2.0 * smax)
        dx = px[:, None] - px[None, :]
        dy = py[:, None] - py[None, :]
        dx *= dx
        dy *= dy
        dx += dy
        rows, cols = np_.nonzero(dx <= limit)
        cols_list = cols.tolist()
        starts = np_.searchsorted(rows, np_.arange(len(alive) + 1)).tolist()
        return [cols_list[starts[i]:starts[i + 1]]
                for i in range(len(alive))]

    def _separation_from(self, robot: Robot, alive: Sequence[Robot],
                         candidates: List[int]) -> Tuple[float, float]:
        """The reference separation scan, restricted to candidates."""
        sx = sy = 0.0
        min_separation = self.min_separation
        for j in candidates:
            peer = alive[j]
            if peer.robot_id == robot.robot_id:
                continue
            dist = robot.distance_to(peer.x, peer.y)
            if dist < min_separation:
                push = (min_separation - dist) / min_separation
                dxs = robot.x - peer.x
                dys = robot.y - peer.y
                norm = max(dist, 1e-6)
                sx += push * dxs / norm * robot.speed
                sy += push * dys / norm * robot.speed
        return sx, sy

    def _move_one(self, robot: Robot, index: int, alive: Sequence[Robot],
                  n_mine: int, sum_x: float, sum_y: float,
                  sep_candidates: Optional[List[List[int]]] = None) -> None:
        """Target selection + separation + move for one robot."""
        if n_mine:
            tx = sum_x / n_mine
            ty = sum_y / n_mine
            self._patrol.pop(robot.robot_id, None)
        else:
            tx, ty = self._patrol_target(robot)
        if sep_candidates is not None:
            sx, sy = self._separation_from(robot, alive,
                                           sep_candidates[index])
        else:
            sx, sy = self._separation(robot, alive)
        robot.move_toward(tx + sx, ty + sy)

    @staticmethod
    def _exact_peer_closer(robot: Robot, alive: Sequence[Robot],
                           ex: float, ey: float) -> bool:
        """The exact attribution predicate over *current* positions."""
        d_self = robot.distance_to(ex, ey)
        rid = robot.robot_id
        for peer in alive:
            if peer.robot_id != rid and peer.distance_to(ex, ey) < d_self:
                return True
        return False

    # -- naive reference path (``fast=False``) ------------------------------

    def _share(self, robots: Sequence[Robot],
               witnessed: Sequence[Tuple[int, Event]]) -> None:
        """Naive gossip: every pair re-measured per witnessed event."""
        by_robot = {r.robot_id: r for r in robots}
        for robot_id, event in witnessed:
            witness = by_robot[robot_id]
            self._events.setdefault(robot_id, []).append(event)
            for peer in robots:
                if (peer.alive and peer.robot_id != robot_id
                        and witness.distance_to(peer.x, peer.y)
                        <= self.comm_radius):
                    self._events.setdefault(peer.robot_id, []).append(event)

    def _prune(self, now: float) -> None:
        cutoff = now - self.memory
        for robot_id, events in self._events.items():
            self._events[robot_id] = [e for e in events if e.time >= cutoff]

    def _attributed(self, robot: Robot,
                    alive: Sequence[Robot]) -> List[Event]:
        """Remembered events for which this robot is the nearest live one."""
        mine = []
        for event in self._events.get(robot.robot_id, []):
            d_self = robot.distance_to(event.x, event.y)
            closer = any(
                peer.robot_id != robot.robot_id
                and peer.distance_to(event.x, event.y) < d_self
                for peer in alive)
            if not closer:
                mine.append(event)
        return mine

    def _step_naive(self, now: float, robots: Sequence[Robot],
                    witnessed: Sequence[Tuple[int, Event]]) -> None:
        self._share(robots, witnessed)
        self._prune(now)
        alive = [r for r in robots if r.alive]
        for index, robot in enumerate(alive):
            mine = self._attributed(robot, alive)
            n_mine = len(mine)
            sum_x = sum(e.x for e in mine)
            sum_y = sum(e.y for e in mine)
            self._move_one(robot, index, alive, n_mine, sum_x, sum_y)

    # -- struct-of-arrays fast path (``fast=True``) --------------------------

    def _mem_for(self, robot_id: int) -> soa.IndexMemory:
        memory = self._mem.get(robot_id)
        if memory is None:
            memory = self._mem[robot_id] = soa.IndexMemory()
        return memory

    def _peers_in_range(self, witness: Robot, robot_id: int,
                        robots: Sequence[Robot], arrays) -> List[int]:
        """Live peers within gossip range of ``witness`` (robots order)."""
        comm = self.comm_radius
        if self.vectorized:
            dx = arrays.x - witness.x
            dy = arrays.y - witness.y
            d2 = dx * dx + dy * dy
            candidates = soa._np.nonzero(
                d2 <= soa.prefilter_limit_sq(comm))[0]
            peers = []
            for i in candidates.tolist():
                peer = robots[i]
                if (peer.alive and peer.robot_id != robot_id
                        and witness.distance_to(peer.x, peer.y) <= comm):
                    peers.append(peer.robot_id)
            return peers
        return [peer.robot_id for peer in robots
                if (peer.alive and peer.robot_id != robot_id
                    and witness.distance_to(peer.x, peer.y) <= comm)]

    def _share_soa(self, robots: Sequence[Robot],
                   witnessed: Sequence[Tuple[int, Event]], arrays) -> None:
        """Gossip onto the SoA table.

        Events are interned into the table once per step; the witness's
        in-range neighbourhood is computed once per witness (positions
        do not change while sharing).  Index appends happen in the same
        (witnessed-order, robots-order) sequence as the naive path, so
        every memory window is identical.
        """
        if not witnessed:
            return
        by_robot = {r.robot_id: r for r in robots}
        table = self._table
        interned: Dict[int, int] = {}
        peers_of: Dict[int, List[int]] = {}
        for robot_id, event in witnessed:
            key = id(event)
            index = interned.get(key)
            if index is None:
                index = table.add_event(event)
                interned[key] = index
            peers = peers_of.get(robot_id)
            if peers is None:
                peers = self._peers_in_range(by_robot[robot_id], robot_id,
                                             robots, arrays)
                peers_of[robot_id] = peers
            self._mem_for(robot_id).append(index)
            for peer_id in peers:
                self._mem_for(peer_id).append(index)

    def _prune_soa(self, now: float) -> None:
        """Advance every memory past expired events; trim dead storage."""
        cutoff = now - self.memory
        table = self._table
        lo = table.size
        for memory in self._mem.values():
            memory.prune_before(cutoff, table)
            if memory:
                first = memory.first()
                if first < lo:
                    lo = first
        if lo - table.base > 4096:
            table.trim(lo)

    def _attribute_and_move_scalar(self, alive: Sequence[Robot],
                                   band: float) -> None:
        """Fallback attribution: scalar loops over the flat buffers.

        Identical bracket logic to the vector path (and to the retired
        object-graph implementation): per event we memoise the two
        smallest distances over the start-of-loop snapshot positions;
        the smallest snapshot distance among this robot's peers -- the
        runner-up when the robot is itself the minimiser -- brackets
        the live peer minimum to within ``band``.  Outside the band the
        decision is certain; inside it (a genuine near-tie) we fall
        back to the exact scan over current positions.
        """
        table = self._table
        hypot = math.hypot
        snapshot = [(r.x, r.y) for r in alive]
        nearest: Dict[int, Tuple[float, int, float]] = {}
        for index, robot in enumerate(alive):
            memory = self._mem.get(robot.robot_id)
            n_mine = 0
            sum_x = sum_y = 0.0
            if memory is not None and memory:
                rx, ry = robot.x, robot.y
                for ei in memory.indices():
                    ex = table.x_at(ei)
                    ey = table.y_at(ei)
                    d_self = hypot(rx - ex, ry - ey)
                    memo = nearest.get(ei)
                    if memo is None:
                        best1 = best2 = math.inf
                        idx1 = -1
                        for i, (sx_, sy_) in enumerate(snapshot):
                            d = hypot(sx_ - ex, sy_ - ey)
                            if d < best1:
                                best2 = best1
                                best1 = d
                                idx1 = i
                            elif d < best2:
                                best2 = d
                        memo = (best1, idx1, best2)
                        nearest[ei] = memo
                    best1, idx1, best2 = memo
                    peer_min0 = best2 if idx1 == index else best1
                    if d_self > peer_min0 + band:
                        continue
                    if not d_self < peer_min0 - band:
                        if self._exact_peer_closer(robot, alive, ex, ey):
                            continue
                    n_mine += 1
                    sum_x += ex
                    sum_y += ey
            self._move_one(robot, index, alive, n_mine, sum_x, sum_y)

    def _attribute_and_move_exact(self, alive: Sequence[Robot]) -> None:
        """Attribution by the exact scalar predicate, entry by entry.

        Used when robot ids collide (the peer-exclusion shortcuts in
        the batched paths identify *self* positionally, which is only
        sound when ids are unique, as ``make_swarm`` guarantees).
        """
        table = self._table
        for index, robot in enumerate(alive):
            memory = self._mem.get(robot.robot_id)
            n_mine = 0
            sum_x = sum_y = 0.0
            if memory is not None and memory:
                for ei in memory.indices():
                    ex = table.x_at(ei)
                    ey = table.y_at(ei)
                    if not self._exact_peer_closer(robot, alive, ex, ey):
                        n_mine += 1
                        sum_x += ex
                        sum_y += ey
            self._move_one(robot, index, alive, n_mine, sum_x, sum_y)

    def _attribute_and_move_vector(self, alive: Sequence[Robot]) -> None:
        """Batched attribution over the SoA window, exact at every step.

        At robot ``i``'s turn the live peer positions are: robots after
        ``i`` still at their start-of-step positions (they move later),
        robots before ``i`` at their just-moved positions.  So the
        current peer minimum decomposes into two batched pieces:

        - a suffix minimum over the start-of-step squared-distance
          matrix (rows strictly after ``i`` -- computed once up front),
        - a running minimum ``moved_min`` folded in as each robot moves.

        Squared distances are compared under :data:`soa.EXACT_REL`;
        only genuine near-ties (ulp-scale, astronomically rare) fall
        back to the exact scalar predicate.  The accepted entries and
        their order therefore match the naive scan bit-for-bit.
        """
        np_ = soa._np
        table = self._table
        n = len(alive)
        views = []
        lo = table.size
        for robot in alive:
            memory = self._mem.get(robot.robot_id)
            if memory is not None and memory:
                view = memory.view()
                first = int(view[0])
                if first < lo:
                    lo = first
            else:
                view = soa.EMPTY_INDICES
            views.append(view)
        px = np_.fromiter((r.x for r in alive), np_.float64, n)
        py = np_.fromiter((r.y for r in alive), np_.float64, n)
        sep_candidates = self._separation_candidates(alive, px, py)
        m = table.size - lo
        total = sum(len(v) for v in views)
        if total:
            exs, eys = table.columns(lo, table.size)
            dx = px[:, None] - exs[None, :]
            dy = py[:, None] - eys[None, :]
            dx *= dx
            dy *= dy
            dx += dy
            d2 = dx                      # (n, m) start-of-step squared dists
            # suffix[i] = min over rows >= i; peers after robot i are
            # suffix[i + 1] (none for the last robot).
            suffix = np_.minimum.accumulate(d2[::-1], axis=0)[::-1]
            moved_min = np_.full(m, np_.inf)
            rel_lo = 1.0 - soa.EXACT_REL
            rel_hi = 1.0 + soa.EXACT_REL
        for index, robot in enumerate(alive):
            view = views[index]
            n_mine = 0
            sum_x = sum_y = 0.0
            if total and len(view):
                idx = view - lo
                d2_self = d2[index, idx]
                if index + 1 < n:
                    peer_min = np_.minimum(suffix[index + 1, idx],
                                           moved_min[idx])
                else:
                    peer_min = moved_min[idx]
                take = peer_min > d2_self * rel_hi
                tie = ~take & (peer_min >= d2_self * rel_lo)
                if tie.any():
                    for j in np_.nonzero(tie)[0]:
                        k = int(idx[j])
                        if not self._exact_peer_closer(
                                robot, alive, float(exs[k]), float(eys[k])):
                            take[j] = True
                if take.any():
                    selected = idx[take]
                    xs = exs[selected].tolist()
                    ys = eys[selected].tolist()
                    n_mine = len(xs)
                    sum_x = sum(xs)
                    sum_y = sum(ys)
            self._move_one(robot, index, alive, n_mine, sum_x, sum_y,
                           sep_candidates)
            if total:
                rdx = robot.x - exs
                rdy = robot.y - eys
                rdx *= rdx
                rdy *= rdy
                rdx += rdy
                np_.minimum(moved_min, rdx, out=moved_min)

    def _step_soa(self, now: float, robots: Sequence[Robot],
                  witnessed: Sequence[Tuple[int, Event]]) -> None:
        arrays = self._arrays
        arrays.refresh(robots)
        self._share_soa(robots, witnessed, arrays)
        self._prune_soa(now)
        alive = [r for r in robots if r.alive]
        if not alive:
            return
        if len({r.robot_id for r in alive}) != len(alive):
            self._attribute_and_move_exact(alive)
        elif self.vectorized:
            self._attribute_and_move_vector(alive)
        else:
            # Upper bound on any robot's displacement within this step,
            # inflated to absorb float rounding in move_toward.
            band = max(r.speed for r in alive) * 1.01 + 1e-12
            self._attribute_and_move_scalar(alive, band)

    def step(self, now: float, robots: Sequence[Robot],
             witnessed: Sequence[Tuple[int, Event]]) -> None:
        if self.fast:
            self._step_soa(now, robots, witnessed)
        else:
            self._step_naive(now, robots, witnessed)
