"""The swarm mission simulation."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple


from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from .arena import Arena, Event
from .robots import SwarmController, make_swarm


@dataclass
class SwarmStepRecord:
    """Per-step mission telemetry."""

    time: float
    events: int
    witnessed: int
    alive: int


@dataclass
class SwarmRunResult:
    """Outcome of one mission."""

    records: List[SwarmStepRecord]

    def detection_rate(self, t0: float = -math.inf,
                       t1: float = math.inf) -> float:
        """Fraction of events witnessed within ``[t0, t1)``."""
        total = sum(r.events for r in self.records if t0 <= r.time < t1)
        seen = sum(r.witnessed for r in self.records if t0 <= r.time < t1)
        return seen / total if total else math.nan


@dataclass
class SwarmMissionConfig:
    """Mission parameters."""

    n_robots: int = 9
    steps: int = 800
    events_per_step: float = 3.0
    hotspot_fraction: float = 0.7
    n_hotspots: int = 2
    #: Hotspots jump at these times (fractions of the run).
    shift_fracs: Tuple[float, ...] = (0.4,)
    #: (time fraction, robot index) pairs: robots that die mid-mission.
    failure_fracs: Tuple[Tuple[float, int], ...] = ((0.7, 0), (0.7, 1))
    seed: int = 0


def run_mission(controller: SwarmController,
                config: SwarmMissionConfig) -> SwarmRunResult:
    """Drive one controller through the configured mission."""
    arena = Arena.with_random_hotspots(
        n_hotspots=config.n_hotspots, seed=config.seed,
        hotspot_fraction=config.hotspot_fraction,
        events_per_step=config.events_per_step,
        shift_times=[f * config.steps for f in config.shift_fracs])
    robots = make_swarm(config.n_robots, seed=config.seed + 100)
    failures = sorted((f * config.steps, idx)
                      for f, idx in config.failure_fracs)
    failure_cursor = 0
    records: List[SwarmStepRecord] = []
    for t in range(config.steps):
        while (failure_cursor < len(failures)
               and t >= failures[failure_cursor][0]):
            idx = failures[failure_cursor][1]
            if 0 <= idx < len(robots):
                robots[idx].alive = False
            failure_cursor += 1
        events = arena.step(float(t))
        witnessed: List[Tuple[int, Event]] = []
        seen_events = set()
        for event in events:
            for robot in robots:
                if robot.witnesses(event):
                    witnessed.append((robot.robot_id, event))
                    seen_events.add(id(event))
        controller.step(float(t), robots, witnessed)
        alive = sum(1 for r in robots if r.alive)
        if obs_events.enabled():
            obs_metrics.counter("steps", sim="swarm").increment()
            obs_metrics.counter("swarm.events").increment(len(events))
            obs_metrics.counter("swarm.witnessed").increment(len(seen_events))
            obs_metrics.gauge("swarm.alive_robots").set(alive)
            obs_events.emit("swarm.step", time=float(t), events=len(events),
                            witnessed=len(seen_events), alive=alive)
        records.append(SwarmStepRecord(
            time=float(t), events=len(events), witnessed=len(seen_events),
            alive=alive))
    return SwarmRunResult(records=records)
