"""The swarm mission simulation."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:
    from ..faults.injector import FaultInjector

from ..geom import SpatialGrid
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from .arena import Arena, Event
from .robots import Robot, SwarmController, make_swarm

#: Default for the witness-detection spatial index.  The naive
#: robots-x-events scan is retained (``use_grid=False``) as the
#: reference implementation; both paths yield identical witness lists.
USE_WITNESS_GRID = True


@dataclass(slots=True)
class SwarmStepRecord:
    """Per-step mission telemetry."""

    time: float
    events: int
    witnessed: int
    alive: int


@dataclass
class SwarmRunResult:
    """Outcome of one mission."""

    records: List[SwarmStepRecord]

    def detection_rate(self, t0: float = -math.inf,
                       t1: float = math.inf) -> float:
        """Fraction of events witnessed within ``[t0, t1)``."""
        total = sum(r.events for r in self.records if t0 <= r.time < t1)
        seen = sum(r.witnessed for r in self.records if t0 <= r.time < t1)
        return seen / total if total else math.nan


@dataclass
class SwarmMissionConfig:
    """Mission parameters."""

    n_robots: int = 9
    steps: int = 800
    events_per_step: float = 3.0
    hotspot_fraction: float = 0.7
    n_hotspots: int = 2
    #: Hotspots jump at these times (fractions of the run).
    shift_fracs: Tuple[float, ...] = (0.4,)
    #: (time fraction, robot index) pairs: robots that die mid-mission.
    failure_fracs: Tuple[Tuple[float, int], ...] = ((0.7, 0), (0.7, 1))
    seed: int = 0


def _witnessed_naive(robots: List[Robot],
                     events: List[Event]) -> Tuple[List[Tuple[int, Event]], int]:
    """Reference witness scan: every robot tested against every event."""
    witnessed: List[Tuple[int, Event]] = []
    seen_events = set()
    for event in events:
        for robot in robots:
            if robot.witnesses(event):
                witnessed.append((robot.robot_id, event))
                seen_events.add(id(event))
    return witnessed, len(seen_events)


def _witnessed_grid(robots: List[Robot],
                    events: List[Event]) -> Tuple[List[Tuple[int, Event]], int]:
    """Witness scan through a per-step spatial grid over the robots.

    Candidates come back ordered by robot list index and are re-checked
    with the exact ``witnesses`` predicate, so the pair list (and hence
    every downstream controller decision) matches the naive scan
    exactly.
    """
    max_radius = 0.0
    grid: Optional[SpatialGrid] = None
    for index, robot in enumerate(robots):
        if robot.alive:
            if grid is None:
                max_radius = max(r.sensing_radius for r in robots if r.alive)
                grid = SpatialGrid(max(max_radius, 1e-9))
            grid.insert_point(index, robot.x, robot.y)
    witnessed: List[Tuple[int, Event]] = []
    seen = 0
    if grid is None:
        return witnessed, seen
    grid.finalise()
    for event in events:
        ex, ey = event.x, event.y
        hit = False
        for index in grid.candidates_near(ex, ey, max_radius):
            robot = robots[index]
            if robot.witnesses(event):
                witnessed.append((robot.robot_id, event))
                hit = True
        if hit:
            seen += 1
    return witnessed, seen


class SwarmMission:
    """One configured mission, steppable from outside.

    ``run_mission`` drives it to completion; ``repro.bench`` steps it
    one tick at a time to measure the per-step kernel cost.
    """

    def __init__(self, controller: SwarmController,
                 config: SwarmMissionConfig,
                 use_grid: Optional[bool] = None,
                 faults: Optional["FaultInjector"] = None) -> None:
        self.controller = controller
        self.config = config
        self.use_grid = use_grid if use_grid is not None else USE_WITNESS_GRID
        self.faults = faults
        self.arena = Arena.with_random_hotspots(
            n_hotspots=config.n_hotspots, seed=config.seed,
            hotspot_fraction=config.hotspot_fraction,
            events_per_step=config.events_per_step,
            shift_times=[f * config.steps for f in config.shift_fracs])
        self.robots = make_swarm(config.n_robots, seed=config.seed + 100)
        self._failures = sorted((f * config.steps, idx)
                                for f, idx in config.failure_fracs)
        self._failure_cursor = 0
        self._indices = tuple(range(len(self.robots)))
        self._config_dead: set = set()
        self._fault_down: set = set()
        self.records: List[SwarmStepRecord] = []

    def step(self, t: float) -> SwarmStepRecord:
        """Advance the mission one tick; returns the step record."""
        robots = self.robots
        failures = self._failures
        while (self._failure_cursor < len(failures)
               and t >= failures[self._failure_cursor][0]):
            idx = failures[self._failure_cursor][1]
            if 0 <= idx < len(robots):
                robots[idx].alive = False
                self._config_dead.add(idx)
            self._failure_cursor += 1
        if self.faults is not None:
            # Crash-and-recover: robots named by the active crash windows
            # go down, and come back when the window closes -- unless the
            # mission config had already killed them for good.
            self.faults.begin_step(t)
            down = self.faults.crashed_targets(self._indices)
            for idx in sorted(down - self._fault_down):
                robots[idx].alive = False
                self._fault_down.add(idx)
            for idx in sorted(self._fault_down - down):
                if idx not in self._config_dead:
                    robots[idx].alive = True
                self._fault_down.discard(idx)
        events = self.arena.step(t)
        if self.use_grid:
            witnessed, seen = _witnessed_grid(robots, events)
        else:
            witnessed, seen = _witnessed_naive(robots, events)
        self.controller.step(t, robots, witnessed)
        alive = sum(1 for r in robots if r.alive)
        if obs_events.enabled():
            obs_metrics.counter("steps", sim="swarm").increment()
            obs_metrics.counter("swarm.events").increment(len(events))
            obs_metrics.counter("swarm.witnessed").increment(seen)
            obs_metrics.gauge("swarm.alive_robots").set(alive)
            obs_events.emit("swarm.step", time=t, events=len(events),
                            witnessed=seen, alive=alive)
        record = SwarmStepRecord(time=t, events=len(events), witnessed=seen,
                                 alive=alive)
        self.records.append(record)
        return record


def run_mission(controller: SwarmController,
                config: SwarmMissionConfig,
                use_grid: Optional[bool] = None,
                faults: Optional["FaultInjector"] = None) -> SwarmRunResult:
    """Deprecated shim: use :class:`repro.api.SwarmSimulator`."""
    import warnings
    warnings.warn(
        "run_mission is deprecated; use repro.api.SwarmSimulator",
        DeprecationWarning, stacklevel=2)
    from ..api.adapters import SwarmSimulator
    return SwarmSimulator(mission_config=config, controller=controller,
                          use_grid=use_grid, faults=faults).run()
