"""Environment and workload generators shared by all substrates.

Models of the paper's complexity challenges (Section II): uncertainty
(noise, Markov modulation), ongoing change (random walks, regime
sequences, drift), and exogenous shocks.
"""

from .driftgen import DriftingBandit, DriftingRegression
from .processes import (BoundedRandomWalk, MarkovModulatedProcess,
                        RegimeSequence, SeasonalProcess, Shock, ShockSchedule)
from .scenario import (SCENARIOS, Concat, Constant, CorrelatedFailure,
                       Diurnal, FlashCrowd, FlashMix, HeavyTail, MarkovChurn,
                       Modulate, Scenario, ScenarioTrack, SessionMix,
                       Superpose, UniformMix, ZipfMix, make_scenario)
from .workloads import (RequestRateWorkload, Task, TaskClass,
                        TaskStreamWorkload)

__all__ = [
    "DriftingBandit", "DriftingRegression",
    "BoundedRandomWalk", "MarkovModulatedProcess", "RegimeSequence",
    "SeasonalProcess", "Shock", "ShockSchedule",
    "RequestRateWorkload", "Task", "TaskClass", "TaskStreamWorkload",
    "SCENARIOS", "Scenario", "ScenarioTrack", "make_scenario",
    "Constant", "Diurnal", "HeavyTail", "FlashCrowd", "MarkovChurn",
    "CorrelatedFailure", "Superpose", "Modulate", "Concat",
    "SessionMix", "UniformMix", "ZipfMix", "FlashMix",
]
