"""Concept-drift task generators for the meta-self-awareness experiments.

E8 needs decision tasks whose *reward structure* changes over time, so
that a learner tuned for one concept degrades after the change and only a
meta-self-aware system (which watches its own performance) recovers
quickly.  Two generators:

- :class:`DriftingBandit` -- K arms whose mean rewards are shuffled or
  re-drawn at drift points (abrupt) or interpolated (gradual).
- :class:`DriftingRegression` -- a linear target whose weight vector
  changes at drift points; used to stress forecasting/regression models.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class DriftingBandit:
    """K-armed Gaussian bandit with scheduled concept drift.

    Parameters
    ----------
    n_arms:
        Number of arms.
    drift_every:
        Steps between drifts.
    mode:
        ``"abrupt"`` re-draws arm means at each drift point; ``"gradual"``
        linearly interpolates to the next concept over ``drift_every``.
    reward_std:
        Observation noise.
    """

    def __init__(self, n_arms: int = 5, drift_every: int = 300,
                 mode: str = "abrupt", reward_std: float = 0.1,
                 rng: Optional[np.random.Generator] = None) -> None:
        if n_arms < 2:
            raise ValueError("need at least 2 arms")
        if drift_every <= 0:
            raise ValueError("drift_every must be positive")
        if mode not in ("abrupt", "gradual"):
            raise ValueError("mode must be 'abrupt' or 'gradual'")
        self.n_arms = n_arms
        self.drift_every = drift_every
        self.mode = mode
        self.reward_std = reward_std
        self._rng = rng if rng is not None else np.random.default_rng()
        self._means = self._rng.uniform(0.0, 1.0, size=n_arms)
        self._next_means = self._rng.uniform(0.0, 1.0, size=n_arms)
        self.t = 0
        self.drifts = 0

    def means(self) -> np.ndarray:
        """Current true arm means (copy)."""
        if self.mode == "gradual":
            frac = (self.t % self.drift_every) / self.drift_every
            return (1.0 - frac) * self._means + frac * self._next_means
        return self._means.copy()

    def best_arm(self) -> int:
        """Index of the currently best arm."""
        return int(np.argmax(self.means()))

    def optimal_mean(self) -> float:
        """Mean reward of the currently best arm."""
        return float(np.max(self.means()))

    def pull(self, arm: int) -> float:
        """Sample a reward for ``arm`` and advance time (drifting as due)."""
        if not 0 <= arm < self.n_arms:
            raise IndexError(f"arm {arm} out of range")
        reward = float(self.means()[arm] + self._rng.normal(0.0, self.reward_std))
        self.t += 1
        if self.t % self.drift_every == 0:
            self.drifts += 1
            if self.mode == "abrupt":
                self._means = self._rng.uniform(0.0, 1.0, size=self.n_arms)
            else:
                self._means = self._next_means
                self._next_means = self._rng.uniform(0.0, 1.0, size=self.n_arms)
        return reward


class DriftingRegression:
    """Streaming linear-regression task with weight-vector drift.

    Emits ``(x, y)`` pairs where ``y = w(t) . x + noise`` and ``w``
    changes abruptly every ``drift_every`` samples.
    """

    def __init__(self, n_features: int = 3, drift_every: int = 400,
                 noise_std: float = 0.05,
                 rng: Optional[np.random.Generator] = None) -> None:
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if drift_every <= 0:
            raise ValueError("drift_every must be positive")
        self.n_features = n_features
        self.drift_every = drift_every
        self.noise_std = noise_std
        self._rng = rng if rng is not None else np.random.default_rng()
        self._weights = self._rng.normal(0.0, 1.0, size=n_features)
        self.t = 0
        self.drifts = 0

    @property
    def weights(self) -> np.ndarray:
        """Current true weight vector (copy)."""
        return self._weights.copy()

    def sample(self) -> Tuple[np.ndarray, float]:
        """One ``(x, y)`` pair; drift fires on schedule."""
        x = self._rng.uniform(-1.0, 1.0, size=self.n_features)
        y = float(self._weights @ x + self._rng.normal(0.0, self.noise_std))
        self.t += 1
        if self.t % self.drift_every == 0:
            self.drifts += 1
            self._weights = self._rng.normal(0.0, 1.0, size=self.n_features)
        return x, y
