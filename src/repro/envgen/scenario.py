"""Composable adversarial workload scenarios: the environment as data.

The paper argues self-awareness pays off in "complex, uncertain and
dynamic environments"; this module makes those environments first-class
experimental inputs.  A :class:`Scenario` is a *frozen, seed-
deterministic spec* -- a value, like a :class:`~repro.faults.plan.FaultPlan`
-- that renders to per-tick rate vectors (and optional per-session mix
weights) consumed by any substrate that takes an offered load.  Specs
compose through a small algebra:

* ``a + b`` (:class:`Superpose`) -- rates add, e.g. a diurnal base with
  heavy-tail bursts on top;
* ``a * b`` (:class:`Modulate`) -- rates multiply, e.g. a flash-crowd
  envelope over any base profile;
* ``a.then(b, at=t)`` (:class:`Concat`) -- time concatenation with known
  change points, for adaptation-speed measurements.

Named adversarial presets live in the :data:`SCENARIOS` registry,
mirroring :data:`repro.api.SIMULATORS`: ``diurnal``, ``heavy_tail``
(Pareto inter-arrival bursts), ``flash_crowd``, ``correlated_failure``
(scenario windows that arm :mod:`repro.faults` plans) and
``markov_churn`` (the volunteer-cloud MMPP idiom).  Presets are built by
:func:`make_scenario`, which raises the same sorted-registry
``ValueError`` as :func:`repro.api.make_simulator`.

Determinism: ``scenario.render(ticks, seed)`` derives every stochastic
node's generator from ``default_rng([0x5CE4A, seed, *tree_path])``, so
the same spec and seed render byte-identical tracks regardless of how
the spec was composed or evaluated.

Session mixes (:class:`SessionMix` and friends) describe how one offered
load splits over a session population; the cluster substrate's
Zipf/flash/uniform traffic tiers are expressed through them with
byte-identical weight vectors (see ``tests/serve/test_traffic_identity``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..faults.plan import CRASH, WORKLOAD_SPIKE, FaultPlan, FaultSpec
from .processes import MarkovModulatedProcess

#: Root of the per-node RNG seed sequence used by :meth:`Scenario.render`.
_SCENARIO_SEED_ROOT = 0x5CE4A


# ---------------------------------------------------------------------------
# Session mixes: how one offered load splits over a session population
# ---------------------------------------------------------------------------


@dataclass(frozen=True, kw_only=True)
class SessionMix:
    """Uniform split (the base class doubles as the ``uniform`` mix)."""

    def weights(self, t: float, n: int) -> np.ndarray:
        """Normalised popularity weights over ``n`` sessions at tick ``t``."""
        weights = np.ones(n, dtype=float)
        return weights / weights.sum()


@dataclass(frozen=True, kw_only=True)
class UniformMix(SessionMix):
    """Every session equally popular."""


@dataclass(frozen=True, kw_only=True)
class ZipfMix(SessionMix):
    """Zipf-skewed popularity: rank-j weight ~ 1/j**s."""

    s: float = 1.6

    def weights(self, t: float, n: int) -> np.ndarray:
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), self.s)
        return weights / weights.sum()


@dataclass(frozen=True, kw_only=True)
class FlashMix(SessionMix):
    """Uniform popularity with a flash-crowd window on the first sessions.

    On ``[at, at + length)`` the first ``sessions`` sessions multiply
    their weight by ``factor`` -- the cluster substrate's flash tier.
    """

    at: float = 160.0
    length: float = 120.0
    factor: float = 8.0
    sessions: int = 2

    def weights(self, t: float, n: int) -> np.ndarray:
        weights = np.ones(n, dtype=float)
        if self.at <= t < self.at + self.length:
            weights[:self.sessions] *= self.factor
        return weights / weights.sum()


# ---------------------------------------------------------------------------
# The rendered form
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioTrack:
    """A rendered scenario: per-tick rate multipliers, ready to consume.

    ``rates[t]`` is the non-negative offered-load multiplier at tick
    ``t`` (1.0 means "the config's base load, unmodified").  ``mixes``
    is the per-tick session weight matrix when the scenario carries a
    mix and ``sessions`` was given to :meth:`Scenario.render`.  ``plan``
    is the armed :class:`~repro.faults.plan.FaultPlan` when the scenario
    schedules correlated failures, else ``None``.
    """

    rates: np.ndarray
    mixes: Optional[np.ndarray] = None
    plan: Optional[FaultPlan] = None

    @property
    def ticks(self) -> int:
        return int(len(self.rates))

    def rate_at(self, t: float) -> float:
        """Multiplier at tick ``t`` (the last tick's value past the end)."""
        index = min(int(t), len(self.rates) - 1)
        return float(self.rates[index])


# ---------------------------------------------------------------------------
# The scenario algebra
# ---------------------------------------------------------------------------


@dataclass(frozen=True, kw_only=True)
class Scenario:
    """A frozen, seed-deterministic workload scenario spec.

    Subclasses implement :meth:`_render` (per-tick rate multipliers
    from a node-local generator) and may contribute fault windows
    (:meth:`fault_specs`) and a session mix (:meth:`session_mix`).
    Specs are values: hashable, picklable, comparable -- they ride
    through the experiment engine's shard cache keys unchanged.
    """

    # -- rendering ---------------------------------------------------------

    def _children(self) -> Tuple["Scenario", ...]:
        return ()

    def _render(self, ticks: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def _render_tree(self, ticks: int, seed: int,
                     path: Tuple[int, ...]) -> np.ndarray:
        rng = np.random.default_rng([_SCENARIO_SEED_ROOT, seed, *path])
        return self._render(ticks, rng)

    def render(self, ticks: int, seed: int = 0, *,
               sessions: Optional[int] = None) -> ScenarioTrack:
        """Render to a :class:`ScenarioTrack` of ``ticks`` ticks.

        Each node in the spec tree draws from its own generator seeded
        by ``(root, seed, tree path)``, so rendering is deterministic in
        ``(spec, ticks, seed)`` and stable under recomposition.
        """
        if ticks <= 0:
            raise ValueError("ticks must be positive")
        rates = np.maximum(0.0, self._render_tree(ticks, seed, ()))
        mixes = None
        mix = self.session_mix()
        if sessions is not None and mix is not None:
            mixes = np.stack([mix.weights(float(t), sessions)
                              for t in range(ticks)])
        specs = self.fault_specs(ticks)
        plan = FaultPlan(specs=specs, seed=seed) if specs else None
        return ScenarioTrack(rates=rates, mixes=mixes, plan=plan)

    # -- optional channels -------------------------------------------------

    def fault_specs(self, ticks: int) -> Tuple[FaultSpec, ...]:
        """Fault windows this scenario arms (correlated-failure presets)."""
        specs: Tuple[FaultSpec, ...] = ()
        for child in self._children():
            specs = specs + child.fault_specs(ticks)
        return specs

    def session_mix(self) -> Optional[SessionMix]:
        """The session mix, when this scenario shapes a population split."""
        for child in self._children():
            mix = child.session_mix()
            if mix is not None:
                return mix
        return None

    # -- algebra -----------------------------------------------------------

    def superpose(self, other: "Scenario") -> "Superpose":
        """Additive composition: rates add tick-wise (``a + b``)."""
        return Superpose(parts=(self, other))

    def modulate(self, other: "Scenario") -> "Modulate":
        """Multiplicative composition: rates multiply tick-wise (``a * b``)."""
        return Modulate(base=self, envelope=other)

    def then(self, other: "Scenario", *, at: int) -> "Concat":
        """Time concatenation: this scenario until ``at``, then ``other``."""
        return Concat(parts=(self, other), breakpoints=(at,))

    def __add__(self, other: "Scenario") -> "Superpose":
        return self.superpose(other)

    def __mul__(self, other: "Scenario") -> "Modulate":
        return self.modulate(other)


# -- primitives -------------------------------------------------------------


@dataclass(frozen=True, kw_only=True)
class Constant(Scenario):
    """A flat multiplier (the identity scenario at ``level=1.0``)."""

    level: float = 1.0

    def _render(self, ticks: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(ticks, self.level, dtype=float)


@dataclass(frozen=True, kw_only=True)
class Diurnal(Scenario):
    """Deterministic day/night seasonality: ``base + amp * sin``."""

    base: float = 1.0
    amplitude: float = 0.5
    period: float = 200.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")

    def _render(self, ticks: int, rng: np.random.Generator) -> np.ndarray:
        t = np.arange(ticks, dtype=float)
        return self.base + self.amplitude * np.sin(
            2.0 * math.pi * t / self.period + self.phase)


@dataclass(frozen=True, kw_only=True)
class HeavyTail(Scenario):
    """Pareto inter-arrival bursts: long calms, then clustered spikes.

    Burst epochs arrive with heavy-tailed gaps ``gap * (1 + Pareto(alpha))``
    and heavy-tailed magnitudes ``scale * (1 + Pareto(alpha))``; each
    burst decays geometrically over the following ticks.  ``alpha`` near
    1 makes both gaps and magnitudes wild; large ``alpha`` approaches a
    regular pulse train.
    """

    base: float = 1.0
    alpha: float = 1.5
    gap: float = 40.0
    scale: float = 3.0
    decay: float = 0.65

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.gap <= 0:
            raise ValueError("gap must be positive")
        if not 0.0 <= self.decay < 1.0:
            raise ValueError("decay must be in [0, 1)")

    def _render(self, ticks: int, rng: np.random.Generator) -> np.ndarray:
        rates = np.full(ticks, self.base, dtype=float)
        t = self.gap * (1.0 + float(rng.pareto(self.alpha)))
        while t < ticks:
            magnitude = self.scale * (1.0 + float(rng.pareto(self.alpha)))
            tick = int(t)
            while tick < ticks and magnitude > 1e-3:
                rates[tick] += magnitude
                magnitude *= self.decay
                tick += 1
            t += self.gap * (1.0 + float(rng.pareto(self.alpha)))
        return rates


@dataclass(frozen=True, kw_only=True)
class FlashCrowd(Scenario):
    """A flash-crowd window: ``factor``x load on ``[at, at + length)``.

    Doubles as a session mix (:class:`FlashMix`): when rendered with a
    session population, the first ``sessions`` sessions absorb the
    crowd -- the cluster substrate's flash tier.
    """

    at: float = 160.0
    length: float = 120.0
    factor: float = 8.0
    sessions: int = 2

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("length must be positive")
        if self.factor < 0:
            raise ValueError("factor must be non-negative")

    def _render(self, ticks: int, rng: np.random.Generator) -> np.ndarray:
        rates = np.ones(ticks, dtype=float)
        t = np.arange(ticks, dtype=float)
        window = (t >= self.at) & (t < self.at + self.length)
        rates[window] = self.factor
        return rates

    def session_mix(self) -> Optional[SessionMix]:
        return FlashMix(at=self.at, length=self.length,
                        factor=self.factor, sessions=self.sessions)


@dataclass(frozen=True, kw_only=True)
class MarkovChurn(Scenario):
    """Markov-modulated load: the volunteer-cloud MMPP idiom.

    A hidden two-state chain (stay probability ``stay``) pins the rate
    to ``low`` or ``high``; optional Gaussian noise rides on top.  The
    chain is :class:`~repro.envgen.processes.MarkovModulatedProcess`,
    driven from the node's render generator.
    """

    low: float = 0.6
    high: float = 1.6
    stay: float = 0.95
    noise_std: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.stay < 1.0:
            raise ValueError("stay must be in (0, 1)")

    def _render(self, ticks: int, rng: np.random.Generator) -> np.ndarray:
        chain = MarkovModulatedProcess.two_state(
            low=self.low, high=self.high, stay=self.stay,
            noise_std=self.noise_std, rng=rng)
        return np.array([chain.step() for _ in range(ticks)], dtype=float)


@dataclass(frozen=True, kw_only=True)
class CorrelatedFailure(Scenario):
    """A failure storm: load stays flat, but the window arms fault plans.

    On ``[at, at + length)`` every kind in ``kinds`` becomes an active
    :class:`~repro.faults.plan.FaultSpec` at ``intensity`` -- crash plus
    workload-spike by default, the "correlated failure" everyone's
    capacity model gets wrong.  :meth:`Scenario.render` packages the
    specs as a :class:`~repro.faults.plan.FaultPlan` seeded by the
    render seed; substrates arm an injector from it.
    """

    at: float = 200.0
    length: float = 60.0
    intensity: float = 0.5
    kinds: Tuple[str, ...] = (CRASH, WORKLOAD_SPIKE)
    target: Optional[str] = None

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("length must be positive")
        if not self.kinds:
            raise ValueError("need at least one fault kind")

    def _render(self, ticks: int, rng: np.random.Generator) -> np.ndarray:
        return np.ones(ticks, dtype=float)

    def fault_specs(self, ticks: int) -> Tuple[FaultSpec, ...]:
        end = min(float(ticks), self.at + self.length)
        if end <= self.at:
            return ()
        return tuple(FaultSpec(kind=kind, start=self.at, end=end,
                               intensity=self.intensity, target=self.target)
                     for kind in self.kinds)


# -- combinators ------------------------------------------------------------


@dataclass(frozen=True, kw_only=True)
class Superpose(Scenario):
    """Additive composition: the sum of the parts' rates."""

    parts: Tuple[Scenario, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("superpose needs at least two parts")

    def _children(self) -> Tuple[Scenario, ...]:
        return self.parts

    def _render_tree(self, ticks: int, seed: int,
                     path: Tuple[int, ...]) -> np.ndarray:
        total = self.parts[0]._render_tree(ticks, seed, path + (0,))
        for i, part in enumerate(self.parts[1:], start=1):
            total = total + part._render_tree(ticks, seed, path + (i,))
        return total


@dataclass(frozen=True, kw_only=True)
class Modulate(Scenario):
    """Multiplicative composition: ``base`` shaped by ``envelope``."""

    base: Scenario
    envelope: Scenario

    def _children(self) -> Tuple[Scenario, ...]:
        return (self.base, self.envelope)

    def _render_tree(self, ticks: int, seed: int,
                     path: Tuple[int, ...]) -> np.ndarray:
        return (self.base._render_tree(ticks, seed, path + (0,))
                * self.envelope._render_tree(ticks, seed, path + (1,)))


@dataclass(frozen=True, kw_only=True)
class Concat(Scenario):
    """Piecewise concatenation with known change points.

    ``breakpoints[i]`` is the tick where ``parts[i + 1]`` takes over;
    each part renders on its own local clock starting at 0.  Fault
    windows from a part are shifted by its segment start and clipped to
    its segment.  Session mixes do not concatenate (their windows are
    absolute-time specs); compose mixes directly instead.
    """

    parts: Tuple[Scenario, ...]
    breakpoints: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.breakpoints) != len(self.parts) - 1:
            raise ValueError("need exactly one breakpoint between parts")
        if any(b <= 0 for b in self.breakpoints):
            raise ValueError("breakpoints must be positive")
        if list(self.breakpoints) != sorted(set(self.breakpoints)):
            raise ValueError("breakpoints must be strictly increasing")

    def _children(self) -> Tuple[Scenario, ...]:
        return self.parts

    def _segments(self, ticks: int):
        starts = (0,) + self.breakpoints
        ends = self.breakpoints + (ticks,)
        return zip(self.parts, starts, ends)

    def _render_tree(self, ticks: int, seed: int,
                     path: Tuple[int, ...]) -> np.ndarray:
        rates = np.zeros(ticks, dtype=float)
        for i, (part, start, end) in enumerate(self._segments(ticks)):
            if start >= ticks:
                break
            length = max(0, min(end, ticks) - start)
            if length > 0:
                rendered = part._render_tree(length, seed, path + (i,))
                rates[start:start + length] = rendered
        return rates

    def fault_specs(self, ticks: int) -> Tuple[FaultSpec, ...]:
        specs = []
        for part, start, end in self._segments(ticks):
            if start >= ticks:
                break
            length = max(0, min(end, ticks) - start)
            for spec in part.fault_specs(length):
                specs.append(FaultSpec(
                    kind=spec.kind, start=spec.start + start,
                    end=min(spec.end + start, float(min(end, ticks))),
                    intensity=spec.intensity, target=spec.target))
        return tuple(specs)

    def session_mix(self) -> Optional[SessionMix]:
        return None


# ---------------------------------------------------------------------------
# The preset registry
# ---------------------------------------------------------------------------

#: Named adversarial presets: name -> factory of a frozen spec, exactly
#: as :data:`repro.api.SIMULATORS` maps substrate names to classes.
#: Factories accept keyword overrides for their primitive's fields.
SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "steady": Constant,
    "diurnal": Diurnal,
    "heavy_tail": HeavyTail,
    "flash_crowd": FlashCrowd,
    "correlated_failure": CorrelatedFailure,
    "markov_churn": MarkovChurn,
}


def make_scenario(name: str, **overrides) -> Scenario:
    """Build the named preset (see :data:`SCENARIOS`).

    Raises ``ValueError`` -- not a bare ``KeyError`` -- on an unknown
    name, listing the registered scenarios so the caller's typo is a
    one-glance fix (the :func:`repro.api.make_simulator` convention).
    """
    try:
        factory = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(
            f"unknown scenario {name!r}; known: {known}") from None
    return factory(**overrides)
