"""Stochastic processes modelling complex, uncertain, dynamic environments.

The paper's complexity challenges (Section II) -- uncertainty and ongoing
change -- are exercised in every experiment through these generators.
All are deterministic under a seeded ``numpy`` generator and share the
protocol ``value(t)`` (pure lookup/synthesis) or ``step() -> value``
(stateful evolution).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


class BoundedRandomWalk:
    """Mean-reverting random walk clipped to ``[lo, hi]``.

    Ornstein-Uhlenbeck-style: pulls toward ``mean`` with strength
    ``reversion`` plus Gaussian innovations.  Models slowly wandering
    quantities (ambient load, temperature, link quality).
    """

    def __init__(self, mean: float = 0.5, reversion: float = 0.05,
                 sigma: float = 0.05, lo: float = 0.0, hi: float = 1.0,
                 start: Optional[float] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not lo < hi:
            raise ValueError("need lo < hi")
        if not 0.0 <= reversion <= 1.0:
            raise ValueError("reversion must be in [0, 1]")
        self.mean = mean
        self.reversion = reversion
        self.sigma = sigma
        self.lo = lo
        self.hi = hi
        self._rng = rng if rng is not None else np.random.default_rng()
        self.current = float(start) if start is not None else mean

    def step(self) -> float:
        """Advance one step and return the new value."""
        drift = self.reversion * (self.mean - self.current)
        self.current = float(np.clip(
            self.current + drift + self._rng.normal(0.0, self.sigma),
            self.lo, self.hi))
        return self.current

    def retarget(self, mean: float) -> None:
        """Move the attractor at run time (environment regime change)."""
        self.mean = mean


class SeasonalProcess:
    """Deterministic seasonality plus noise: ``base + amp*sin + noise``.

    The canonical diurnal workload shape used by the cloud experiments.
    """

    def __init__(self, base: float = 0.5, amplitude: float = 0.3,
                 period: float = 100.0, phase: float = 0.0,
                 noise_std: float = 0.02,
                 rng: Optional[np.random.Generator] = None) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.base = base
        self.amplitude = amplitude
        self.period = period
        self.phase = phase
        self.noise_std = noise_std
        self._rng = rng if rng is not None else np.random.default_rng()

    def value(self, t: float) -> float:
        """Value at time ``t`` (noise is freshly drawn per call)."""
        clean = self.base + self.amplitude * math.sin(
            2.0 * math.pi * t / self.period + self.phase)
        if self.noise_std > 0:
            clean += float(self._rng.normal(0.0, self.noise_std))
        return clean


@dataclass(frozen=True)
class Shock:
    """A step disturbance active on ``[start, start + duration)``."""

    start: float
    duration: float
    magnitude: float

    def active(self, t: float) -> bool:
        return self.start <= t < self.start + self.duration

    def contribution(self, t: float) -> float:
        return self.magnitude if self.active(t) else 0.0


class ShockSchedule:
    """A timetable of step shocks added onto any base signal.

    Models the paper's "external factors, such as the economy, climate or
    political events": abrupt, exogenous, and invisible until they hit.
    """

    def __init__(self, shocks: Sequence[Shock] = ()) -> None:
        self.shocks: List[Shock] = sorted(shocks, key=lambda s: s.start)

    @classmethod
    def random(cls, horizon: float, n_shocks: int, magnitude: float = 0.4,
               duration: float = 40.0,
               rng: Optional[np.random.Generator] = None) -> "ShockSchedule":
        """Uniformly scattered shocks of alternating sign."""
        rng = rng if rng is not None else np.random.default_rng()
        starts = np.sort(rng.uniform(0.0, horizon, size=n_shocks))
        shocks = [Shock(start=float(s), duration=duration,
                        magnitude=magnitude * (1 if i % 2 == 0 else -1))
                  for i, s in enumerate(starts)]
        return cls(shocks)

    def offset(self, t: float) -> float:
        """Total shock contribution at time ``t``."""
        return sum(s.contribution(t) for s in self.shocks)

    def any_active(self, t: float) -> bool:
        """Whether any shock is active at ``t``."""
        return any(s.active(t) for s in self.shocks)


class MarkovModulatedProcess:
    """A process whose regime follows a hidden Markov chain.

    Each regime pins a level; transitions occur per step with the given
    matrix.  This is the classic MMPP-style workload/availability model
    used for volunteer clouds and bursty request streams.

    Parameters
    ----------
    levels:
        Emission level per regime.
    transition:
        Row-stochastic matrix, ``transition[i][j]`` = P(next=j | now=i).
    noise_std:
        Gaussian noise added to the emitted level.
    """

    def __init__(self, levels: Sequence[float],
                 transition: Sequence[Sequence[float]],
                 noise_std: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 start_state: int = 0) -> None:
        self.levels = [float(x) for x in levels]
        matrix = np.asarray(transition, dtype=float)
        if matrix.shape != (len(self.levels), len(self.levels)):
            raise ValueError("transition matrix shape must match levels")
        if not np.allclose(matrix.sum(axis=1), 1.0):
            raise ValueError("transition matrix rows must sum to 1")
        if np.any(matrix < 0):
            raise ValueError("transition probabilities must be non-negative")
        self.transition = matrix
        self.noise_std = noise_std
        self._rng = rng if rng is not None else np.random.default_rng()
        if not 0 <= start_state < len(self.levels):
            raise ValueError("start_state out of range")
        self.state = start_state

    def step(self) -> float:
        """Advance the chain one step and emit the (noisy) level."""
        self.state = int(self._rng.choice(len(self.levels),
                                          p=self.transition[self.state]))
        value = self.levels[self.state]
        if self.noise_std > 0:
            value += float(self._rng.normal(0.0, self.noise_std))
        return value

    @classmethod
    def two_state(cls, low: float = 0.2, high: float = 0.8,
                  stay: float = 0.95, **kwargs) -> "MarkovModulatedProcess":
        """Convenience: symmetric bursty two-regime process."""
        if not 0.0 < stay < 1.0:
            raise ValueError("stay must be in (0, 1)")
        return cls(levels=[low, high],
                   transition=[[stay, 1.0 - stay], [1.0 - stay, stay]],
                   **kwargs)


class RegimeSequence:
    """Piecewise-constant regimes on a fixed timetable.

    Used when experiments need *known* change points (e.g. to measure
    adaptation speed after a change).  ``regimes`` maps interval start
    times to values; lookups take the value of the latest started regime.
    """

    def __init__(self, breakpoints: Sequence[Tuple[float, float]]) -> None:
        if not breakpoints:
            raise ValueError("need at least one (start, value) breakpoint")
        self.breakpoints = sorted(breakpoints, key=lambda bv: bv[0])

    def value(self, t: float) -> float:
        """Regime value in force at time ``t``."""
        current = self.breakpoints[0][1]
        for start, value in self.breakpoints:
            if t >= start:
                current = value
            else:
                break
        return current

    def change_times(self) -> List[float]:
        """All regime start times after the first."""
        return [start for start, _v in self.breakpoints[1:]]
