"""Workload generators: request streams and task arrivals.

The substrates consume work expressed in two shapes: request *rates*
(cloud, sensor networks) and discrete *tasks* (multi-core).  Both
generators compose a base profile with seasonality, regime shifts and
shocks, per the environment-complexity arguments of paper Section II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .processes import SeasonalProcess, ShockSchedule


@dataclass(frozen=True)
class Task:
    """One unit of discrete work for the multi-core substrate.

    ``kind`` distinguishes workload classes with different resource
    appetites; ``work`` is abstract cycles; ``parallelism`` is the task's
    maximum useful core count.
    """

    task_id: int
    arrival: float
    kind: str
    work: float
    parallelism: int = 1

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ValueError("work must be positive")
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")


class RequestRateWorkload:
    """Request rate over time: seasonal base + shocks, non-negative.

    ``rate(t)`` gives the expected requests per time unit; ``arrivals``
    samples a Poisson count for a step of width ``dt``.
    """

    def __init__(
        self,
        base_rate: float = 50.0,
        seasonal_amplitude: float = 0.5,
        period: float = 200.0,
        shocks: Optional[ShockSchedule] = None,
        noise_std: float = 0.02,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        self.base_rate = base_rate
        self._rng = rng if rng is not None else np.random.default_rng()
        self._season = SeasonalProcess(
            base=1.0, amplitude=seasonal_amplitude, period=period,
            noise_std=noise_std, rng=self._rng)
        self.shocks = shocks if shocks is not None else ShockSchedule()

    def rate(self, t: float) -> float:
        """Expected request rate at ``t`` (>= 0)."""
        multiplier = self._season.value(t) + self.shocks.offset(t)
        return max(0.0, self.base_rate * multiplier)

    def arrivals(self, t: float, dt: float = 1.0) -> int:
        """Poisson-sampled arrival count for the step ``[t, t+dt)``."""
        lam = self.rate(t) * dt
        return int(self._rng.poisson(lam)) if lam > 0 else 0


@dataclass(frozen=True)
class TaskClass:
    """A workload class for the task-stream generator."""

    kind: str
    mean_work: float
    parallelism: int = 1

    def __post_init__(self) -> None:
        if self.mean_work <= 0:
            raise ValueError("mean_work must be positive")


class TaskStreamWorkload:
    """Stream of discrete tasks with phase-dependent class mix.

    Phases model application behaviour changing over time (e.g. a codec
    switching from decode-heavy to render-heavy): each phase reweights
    which task classes arrive.

    Parameters
    ----------
    classes:
        The available task classes.
    phase_length:
        Steps per phase; at each boundary a new random class-mix is drawn.
    rate:
        Expected tasks per step.
    """

    def __init__(
        self,
        classes: Sequence[TaskClass],
        phase_length: int = 200,
        rate: float = 2.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not classes:
            raise ValueError("need at least one task class")
        if phase_length <= 0:
            raise ValueError("phase_length must be positive")
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.classes = list(classes)
        self.phase_length = phase_length
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng()
        self._next_id = 0
        self._phase_index = -1
        self._mix = np.full(len(self.classes), 1.0 / len(self.classes))

    def _maybe_advance_phase(self, t: float) -> None:
        phase = int(t // self.phase_length)
        if phase != self._phase_index:
            self._phase_index = phase
            raw = self._rng.dirichlet(np.ones(len(self.classes)))
            self._mix = raw

    @property
    def current_mix(self) -> np.ndarray:
        """Current class-mix probabilities (copy)."""
        return self._mix.copy()

    def arrivals(self, t: float, dt: float = 1.0) -> List[Task]:
        """Tasks arriving in ``[t, t+dt)``."""
        self._maybe_advance_phase(t)
        count = int(self._rng.poisson(self.rate * dt))
        tasks: List[Task] = []
        for _ in range(count):
            cls = self.classes[int(self._rng.choice(len(self.classes), p=self._mix))]
            work = float(self._rng.exponential(cls.mean_work))
            work = max(work, 0.05 * cls.mean_work)
            tasks.append(Task(task_id=self._next_id, arrival=t, kind=cls.kind,
                              work=work, parallelism=cls.parallelism))
            self._next_id += 1
        return tasks
