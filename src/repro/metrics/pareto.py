"""Pareto-quality metrics: hypervolume and front comparisons.

The multi-objective evaluation vocabulary of the benchmark suite.  All
metrics assume **maximisation** of every component, with score vectors
normalised to ``[0, 1]`` per objective (which :class:`repro.core.goals.Goal`
guarantees), and a reference point at the origin unless stated.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.goals import dominates, pareto_front


def hypervolume_2d(points: Sequence[Sequence[float]],
                   reference: Sequence[float] = (0.0, 0.0)) -> float:
    """Exact hypervolume for 2-objective maximisation.

    Area dominated by the front of ``points`` and bounded below by
    ``reference``.  Points not exceeding the reference contribute nothing.
    """
    ref_x, ref_y = reference
    candidates = [(float(x), float(y)) for x, y in points
                  if x > ref_x and y > ref_y]
    if not candidates:
        return 0.0
    front_idx = pareto_front(candidates)
    front = sorted((candidates[i] for i in front_idx), key=lambda p: p[0])
    volume = 0.0
    prev_x = ref_x
    # Sweep in x; y decreases along a 2-D maximisation front.
    for x, y in front:
        volume += (x - prev_x) * (y - ref_y)
        prev_x = x
    return volume


def hypervolume_mc(points: Sequence[Sequence[float]],
                   reference: Optional[Sequence[float]] = None,
                   bound: Optional[Sequence[float]] = None,
                   samples: int = 20000,
                   rng: Optional[np.random.Generator] = None) -> float:
    """Monte-Carlo hypervolume for any number of objectives.

    Estimates the dominated fraction of the box ``[reference, bound]``
    scaled by the box volume.  Defaults: reference at the origin, bound at
    the unit corner.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] == 0:
        return 0.0
    dim = pts.shape[1]
    ref = np.zeros(dim) if reference is None else np.asarray(reference, dtype=float)
    top = np.ones(dim) if bound is None else np.asarray(bound, dtype=float)
    if np.any(top <= ref):
        raise ValueError("bound must exceed reference in every dimension")
    rng = rng if rng is not None else np.random.default_rng(0)
    draws = rng.uniform(ref, top, size=(samples, dim))
    # A draw is dominated when some point is >= it in every component.
    dominated = np.zeros(samples, dtype=bool)
    for p in pts:
        dominated |= np.all(draws <= p, axis=1)
    box = float(np.prod(top - ref))
    return box * float(dominated.mean())


def hypervolume(points: Sequence[Sequence[float]],
                reference: Optional[Sequence[float]] = None,
                **kwargs) -> float:
    """Dispatch: exact in 2-D, Monte-Carlo otherwise."""
    pts = [list(map(float, p)) for p in points]
    if not pts:
        return 0.0
    if len(pts[0]) == 2:
        ref = (0.0, 0.0) if reference is None else tuple(reference)
        return hypervolume_2d(pts, ref)
    return hypervolume_mc(pts, reference=reference, **kwargs)


def coverage(front_a: Sequence[Sequence[float]],
             front_b: Sequence[Sequence[float]]) -> float:
    """Zitzler's C-metric: fraction of ``front_b`` weakly dominated by ``front_a``.

    ``coverage(A, B) == 1`` means every point of B is dominated by (or
    equal to) some point of A.  Not symmetric.
    """
    if not front_b:
        return 0.0
    covered = 0
    for b in front_b:
        for a in front_a:
            if dominates(a, b) or tuple(a) == tuple(b):
                covered += 1
                break
    return covered / len(front_b)


def spread(points: Sequence[Sequence[float]]) -> float:
    """Mean nearest-neighbour distance on the front (diversity proxy).

    Larger is a more spread-out exploration of the trade-off surface.
    Returns 0 for fewer than two points.
    """
    front_idx = pareto_front(points)
    front = np.asarray([points[i] for i in front_idx], dtype=float)
    if len(front) < 2:
        return 0.0
    dists = []
    for i in range(len(front)):
        others = np.delete(front, i, axis=0)
        dists.append(float(np.min(np.linalg.norm(others - front[i], axis=1))))
    return float(np.mean(dists))
