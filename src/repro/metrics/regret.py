"""Regret metrics against oracles.

Regret -- the utility forgone relative to an omniscient policy -- is the
cleanest currency for "how much does self-awareness buy, and how close to
perfect knowledge does it get".  Works on plain sequences so the bandit
experiments can use it without building traces.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def instantaneous_regret(optimal: Sequence[float],
                         achieved: Sequence[float]) -> List[float]:
    """Per-step regret ``optimal_t - achieved_t`` (clipped at 0)."""
    if len(optimal) != len(achieved):
        raise ValueError("series lengths differ")
    return [max(0.0, o - a) for o, a in zip(optimal, achieved)]


def cumulative_regret(optimal: Sequence[float],
                      achieved: Sequence[float]) -> List[float]:
    """Running sum of instantaneous regret."""
    total = 0.0
    out = []
    for r in instantaneous_regret(optimal, achieved):
        total += r
        out.append(total)
    return out


def total_regret(optimal: Sequence[float], achieved: Sequence[float]) -> float:
    """Final cumulative regret (0 for empty series)."""
    series = cumulative_regret(optimal, achieved)
    return series[-1] if series else 0.0


def normalised_regret(optimal: Sequence[float],
                      achieved: Sequence[float]) -> float:
    """Total regret divided by total optimal value (0 when optimal sums to 0).

    Interpretable as "fraction of achievable value forgone"; 0 is perfect.
    """
    denominator = sum(optimal)
    if denominator == 0:
        return 0.0
    return total_regret(optimal, achieved) / denominator


def regret_slope(optimal: Sequence[float], achieved: Sequence[float],
                 tail_fraction: float = 0.25) -> float:
    """Mean per-step regret over the final ``tail_fraction`` of the run.

    A learner that has *converged* shows a near-zero tail slope; one that
    never adapts keeps paying.  NaN for empty input.
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError("tail_fraction must be in (0, 1]")
    inst = instantaneous_regret(optimal, achieved)
    if not inst:
        return math.nan
    tail = inst[int(len(inst) * (1.0 - tail_fraction)):]
    if not tail:
        tail = inst
    return sum(tail) / len(tail)
