"""Trade-off management quality: operationalising the paper's hypothesis.

"Systems that engage in self-awareness can better manage trade-offs
between goals at run time, in complex, uncertain and dynamic
environments" (Section III).  These metrics turn that sentence into
numbers computed over a :class:`repro.core.loop.Trace` (or any utility
series):

- time-averaged realised utility (overall trade-off quality);
- per-phase utility around known change points (does quality survive
  change?);
- adaptation time after a change (how long until performance recovers);
- constraint-violation rate;
- stability (how much behaviour thrashes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.goals import Goal
from ..core.loop import Trace


@dataclass
class AdaptationReport:
    """Recovery behaviour after one environment change."""

    change_time: float
    pre_change_utility: float
    dip_utility: float
    recovery_time: Optional[float]

    @property
    def dip_depth(self) -> float:
        """How far utility fell at its worst after the change."""
        return max(0.0, self.pre_change_utility - self.dip_utility)

    @property
    def recovered(self) -> bool:
        """Whether utility returned to the pre-change band in the window."""
        return self.recovery_time is not None


def mean_utility(trace: Trace) -> float:
    """Time-averaged realised utility of a run."""
    return trace.mean_utility()


def phase_utilities(trace: Trace, change_times: Sequence[float]) -> List[float]:
    """Mean utility in each phase delimited by ``change_times``.

    A system that manages trade-offs *at run time* keeps phase utilities
    level; a design-time system typically shows one good phase and decay.
    """
    if not trace.steps:
        return []
    boundaries = ([trace.steps[0].time] + sorted(change_times)
                  + [trace.steps[-1].time + 1.0])
    return [trace.mean_utility_between(t0, t1)
            for t0, t1 in zip(boundaries, boundaries[1:])]


def adaptation_after(trace: Trace, change_time: float,
                     window: float = 50.0,
                     recovery_fraction: float = 0.9) -> AdaptationReport:
    """Quantify recovery after the change at ``change_time``.

    Pre-change utility is averaged over ``[change_time - window,
    change_time)``; recovery is the first post-change time at which a
    trailing short average again reaches ``recovery_fraction`` of it.
    """
    pre = trace.mean_utility_between(change_time - window, change_time)
    post_steps = [s for s in trace.steps
                  if change_time <= s.time < change_time + 4 * window]
    if not post_steps or math.isnan(pre):
        return AdaptationReport(change_time=change_time, pre_change_utility=pre,
                                dip_utility=math.nan, recovery_time=None)
    dip = min(s.utility for s in post_steps)
    target = recovery_fraction * pre
    recovery_time = None
    smooth = 5
    for i in range(len(post_steps)):
        tail = post_steps[max(0, i - smooth + 1): i + 1]
        avg = sum(s.utility for s in tail) / len(tail)
        if len(tail) == smooth and avg >= target:
            recovery_time = post_steps[i].time - change_time
            break
    return AdaptationReport(change_time=change_time, pre_change_utility=pre,
                            dip_utility=dip, recovery_time=recovery_time)


def violation_rate(trace: Trace, goal: Goal) -> float:
    """Fraction of steps whose raw metrics violate any goal constraint."""
    if not trace.steps or not goal.constraints:
        return 0.0
    violated = sum(1 for s in trace.steps
                   if not goal.evaluate(s.metrics).feasible)
    return violated / len(trace.steps)


def stability(trace: Trace) -> float:
    """Fraction of steps that kept the previous action (1 = never changed).

    Thrashing is itself a cost; self-aware systems should adapt *when
    needed*, not constantly.
    """
    if len(trace.steps) < 2:
        return 1.0
    return 1.0 - trace.action_changes() / (len(trace.steps) - 1)


def tradeoff_summary(trace: Trace, goal: Goal,
                     change_times: Sequence[float] = ()) -> Dict[str, float]:
    """One-row summary used by the experiment tables."""
    summary = {
        "mean_utility": mean_utility(trace),
        "violation_rate": violation_rate(trace, goal),
        "stability": stability(trace),
        "sensing_cost": trace.total_sensing_cost(),
    }
    if change_times:
        phases = phase_utilities(trace, change_times)
        summary["worst_phase_utility"] = min(
            (p for p in phases if not math.isnan(p)), default=math.nan)
        reports = [adaptation_after(trace, ct) for ct in change_times]
        recoveries = [r.recovery_time for r in reports if r.recovery_time is not None]
        summary["mean_recovery_time"] = (
            sum(recoveries) / len(recoveries) if recoveries else math.nan)
        summary["recovered_fraction"] = (
            sum(1 for r in reports if r.recovered) / len(reports))
    return summary
