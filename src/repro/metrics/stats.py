"""Summary statistics for experiment reporting.

Small, dependency-light helpers: mean/std, bootstrap confidence
intervals, and paired comparison (win/loss with effect size).  The
experiment harness reports every headline number with a CI because the
substrates are stochastic simulators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Mean with a bootstrap confidence interval."""

    mean: float
    lo: float
    hi: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.3f} [{self.lo:.3f}, {self.hi:.3f}]"


def summarise(values: Sequence[float], confidence: float = 0.95,
              n_boot: int = 2000,
              rng: Optional[np.random.Generator] = None) -> Summary:
    """Mean and percentile-bootstrap CI of ``values`` (NaNs dropped)."""
    clean = np.asarray([v for v in values if not math.isnan(v)], dtype=float)
    if clean.size == 0:
        return Summary(mean=math.nan, lo=math.nan, hi=math.nan, n=0)
    if clean.size == 1:
        v = float(clean[0])
        return Summary(mean=v, lo=v, hi=v, n=1)
    rng = rng if rng is not None else np.random.default_rng(0)
    boots = rng.choice(clean, size=(n_boot, clean.size), replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(boots, [alpha, 1.0 - alpha])
    return Summary(mean=float(clean.mean()), lo=float(lo), hi=float(hi),
                   n=int(clean.size))


@dataclass(frozen=True)
class PairedComparison:
    """Result of comparing treatment vs. baseline across paired runs."""

    mean_diff: float
    win_rate: float
    effect_size: float
    n: int

    @property
    def treatment_wins(self) -> bool:
        """Whether the treatment beat the baseline on average."""
        return self.mean_diff > 0


def compare_paired(treatment: Sequence[float],
                   baseline: Sequence[float]) -> PairedComparison:
    """Paired comparison (same seeds in both arms).

    ``effect_size`` is Cohen's d on the paired differences (0 when the
    differences have no variance).
    """
    if len(treatment) != len(baseline):
        raise ValueError("paired series must have equal length")
    pairs = [(t, b) for t, b in zip(treatment, baseline)
             if not (math.isnan(t) or math.isnan(b))]
    if not pairs:
        return PairedComparison(mean_diff=math.nan, win_rate=math.nan,
                                effect_size=math.nan, n=0)
    diffs = np.asarray([t - b for t, b in pairs])
    wins = float(np.mean(diffs > 0))
    sd = float(diffs.std(ddof=1)) if diffs.size > 1 else 0.0
    effect = float(diffs.mean() / sd) if sd > 0 else 0.0
    return PairedComparison(mean_diff=float(diffs.mean()), win_rate=wins,
                            effect_size=effect, n=diffs.size)


def improvement_factor(treatment_mean: float, baseline_mean: float) -> float:
    """Ratio treatment/baseline, guarded against zero/NaN baselines."""
    if math.isnan(treatment_mean) or math.isnan(baseline_mean):
        return math.nan
    if baseline_mean == 0:
        return math.inf if treatment_mean > 0 else 1.0
    return treatment_mean / baseline_mean
