"""Multi-objective evaluation metrics for the benchmark suite."""

from .pareto import coverage, hypervolume, hypervolume_2d, hypervolume_mc, spread
from .regret import (cumulative_regret, instantaneous_regret,
                     normalised_regret, regret_slope, total_regret)
from .stats import (PairedComparison, Summary, compare_paired,
                    improvement_factor, summarise)
from .tradeoff import (AdaptationReport, adaptation_after, mean_utility,
                       phase_utilities, stability, tradeoff_summary,
                       violation_rate)

__all__ = [
    "coverage", "hypervolume", "hypervolume_2d", "hypervolume_mc", "spread",
    "cumulative_regret", "instantaneous_regret", "normalised_regret",
    "regret_slope", "total_regret",
    "PairedComparison", "Summary", "compare_paired", "improvement_factor",
    "summarise",
    "AdaptationReport", "adaptation_after", "mean_utility",
    "phase_utilities", "stability", "tradeoff_summary", "violation_rate",
]
