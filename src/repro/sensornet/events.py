"""Transient-event detection: the fog node's second mission.

Preden et al.'s fog/mist nodes do not only track levels -- they must
*catch things that happen*: transient events that are only observable
while they last.  A channel emits spikes (Poisson arrivals, finite
duration); the node detects a spike only if it samples that channel at
least once during the spike's window.  Attention now buys detection
probability: a channel sampled every ``duration`` steps catches
everything, one sampled rarely misses events entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.attention import AttentionPolicy
from ..core.knowledge import KnowledgeBase
from ..core.sensors import Sensor, SensorSuite
from ..core.spans import public


@dataclass(frozen=True)
class SpikeChannelSpec:
    """One event-bearing channel."""

    name: str
    spike_rate: float            # Poisson arrivals per step
    spike_duration: int = 4      # steps a spike stays observable
    importance: float = 1.0
    sample_cost: float = 1.0

    def __post_init__(self) -> None:
        if self.spike_rate < 0:
            raise ValueError("spike_rate must be non-negative")
        if self.spike_duration < 1:
            raise ValueError("spike_duration must be at least 1")
        if self.importance <= 0:
            raise ValueError("importance must be positive")
        if self.sample_cost <= 0:
            raise ValueError("sample_cost must be positive")


def mixed_spike_specs(n_channels: int = 8,
                      seed: int = 0) -> List[SpikeChannelSpec]:
    """Heterogeneous channels: half quiet, a quarter busy, a quarter hot.

    The hot band carries double importance -- where attention should go.
    """
    rng = np.random.default_rng(seed)
    specs: List[SpikeChannelSpec] = []
    for i in range(n_channels):
        band = i % 4
        if band in (0, 1):
            rate, importance = 0.005, 1.0
        elif band == 2:
            rate, importance = 0.03, 1.0
        else:
            rate, importance = 0.08, 2.0
        cost = float(rng.choice([0.5, 1.0, 1.5]))
        specs.append(SpikeChannelSpec(name=f"ev{i}", spike_rate=rate,
                                      importance=importance,
                                      sample_cost=cost))
    return specs


@dataclass
class _Spike:
    start: float
    end: float
    detected: bool = False


class SpikeField:
    """The hidden event processes behind every channel."""

    def __init__(self, specs: Sequence[SpikeChannelSpec],
                 rng: Optional[np.random.Generator] = None) -> None:
        if not specs:
            raise ValueError("need at least one channel")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError("channel names must be unique")
        self.specs: Dict[str, SpikeChannelSpec] = {s.name: s for s in specs}
        self._rng = rng if rng is not None else np.random.default_rng()
        self._spikes: Dict[str, List[_Spike]] = {s.name: [] for s in specs}
        self._now = 0.0

    def names(self) -> List[str]:
        """Channel names, in spec order."""
        return list(self.specs)

    def step(self, now: float) -> None:
        """Advance time; new spikes may begin."""
        self._now = now
        for name, spec in self.specs.items():
            count = int(self._rng.poisson(spec.spike_rate))
            for _ in range(count):
                self._spikes[name].append(
                    _Spike(start=now, end=now + spec.spike_duration))

    def signal(self, name: str) -> float:
        """What a sensor reads right now: 1 during a spike, else 0."""
        return 1.0 if any(s.start <= self._now < s.end
                          for s in self._spikes[name]) else 0.0

    def mark_sampled(self, name: str) -> None:
        """Record that the node sampled ``name`` now (detection check)."""
        for spike in self._spikes[name]:
            if spike.start <= self._now < spike.end:
                spike.detected = True

    def detection_stats(self) -> Dict[str, float]:
        """Importance-weighted detection rate plus raw counts.

        Only spikes whose window has closed are scored (open ones could
        still be caught).
        """
        weighted_total = weighted_hit = 0.0
        total = hits = 0
        for name, spikes in self._spikes.items():
            importance = self.specs[name].importance
            for spike in spikes:
                if spike.end > self._now:
                    continue
                total += 1
                weighted_total += importance
                if spike.detected:
                    hits += 1
                    weighted_hit += importance
        return {
            "events": float(total),
            "detected": float(hits),
            "detection_rate": hits / total if total else math.nan,
            "weighted_detection_rate":
                weighted_hit / weighted_total if weighted_total else math.nan,
        }


class DeadlineAttention(AttentionPolicy):
    """Attention for transient events: catch spikes before they close.

    The tracking salience (volatility x sqrt(staleness)) is mismatched to
    event detection: a spike older than its observability window is
    *gone*, so the value of re-sampling saturates at the window length
    instead of growing forever.  This policy scores each channel as::

        importance * learned_event_rate * min(staleness, window) / cost

    where the event rate is learned online (EWMA of positive readings --
    private self-knowledge, not configuration) and the observability
    ``window`` per scope is mission knowledge the deployer supplies.

    Parameters
    ----------
    windows:
        Scope -> observability window (steps a spike stays visible).
    importance:
        Scope -> weight (defaults to 1).
    rate_alpha:
        EWMA factor of the learned event rate.
    novelty_rate:
        Assumed event rate for never-sampled scopes.
    """

    def __init__(self, windows, importance=None, rate_alpha: float = 0.02,
                 novelty_rate: float = 0.05) -> None:
        if not 0.0 < rate_alpha <= 1.0:
            raise ValueError("rate_alpha must be in (0, 1]")
        self.windows = dict(windows)
        self.importance = dict(importance or {})
        self.rate_alpha = rate_alpha
        self.novelty_rate = novelty_rate
        self._rates: Dict = {}

    def observe(self, scope, positive: bool) -> None:
        """Feed one sample's outcome to the rate estimator."""
        old = self._rates.get(scope, self.novelty_rate)
        self._rates[scope] = old + self.rate_alpha * (float(positive) - old)

    def select(self, suite: SensorSuite, kb: KnowledgeBase, now: float,
               budget: float):
        from ..core.attention import _fit_budget
        scopes = suite.scopes()

        def value_density(scope):
            window = self.windows.get(scope, 1.0)
            stale = kb.staleness(scope, now)
            stale = window if math.isinf(stale) else min(stale, window)
            rate = self._rates.get(scope, self.novelty_rate)
            weight = self.importance.get(scope, 1.0)
            cost = suite.sensor(scope).cost
            value = weight * rate * stale / max(window, 1e-9)
            return value / cost if cost > 0 else math.inf

        ordered = sorted(scopes, key=value_density, reverse=True)
        return _fit_budget(ordered, suite, budget)


def run_detection(field: SpikeField, attention: AttentionPolicy,
                  budget: float, steps: int = 1500,
                  rng: Optional[np.random.Generator] = None) -> Dict[str, float]:
    """Drive one node's attention over the spike field; return stats."""
    if budget <= 0:
        raise ValueError("budget must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    knowledge = KnowledgeBase()
    suite = SensorSuite()
    for name, spec in field.specs.items():
        suite.add(Sensor(scope=public(name),
                         read_fn=lambda n=name: field.signal(n),
                         noise_std=0.02, cost=spec.sample_cost,
                         rng=np.random.default_rng(rng.integers(2 ** 31))))
    from ..core.attention import SalienceAttention
    if isinstance(attention, SalienceAttention):
        for name, spec in field.specs.items():
            attention.set_relevance(public(name), spec.importance)
    for t in range(steps):
        field.step(float(t))
        scopes = attention.select(suite, knowledge, float(t), budget)
        readings = suite.sample_into(knowledge, float(t), scopes)
        for reading in readings:
            if reading.is_valid():
                field.mark_sampled(reading.scope.name)
                if isinstance(attention, DeadlineAttention):
                    attention.observe(reading.scope, reading.value >= 0.5)
    return field.detection_stats()
