"""Struct-of-arrays working set for the sensornet substrate.

The sensing-node hot loop is dominated not by arithmetic but by *keyed
indirection*: every step the salience policy and the sampling plumbing
re-resolve each channel through half a dozen ``Scope``-keyed dict
lookups (relevance, knowledge-base history, staleness, sensor, cost),
and the hidden field advances every channel's random walk one scalar
RNG draw at a time.  This module flattens both:

- :func:`step_walks_batched` -- advance a set of
  :class:`~repro.envgen.processes.BoundedRandomWalk` signals sharing one
  generator in a single batched draw.  ``Generator.normal(0.0, sigma)``
  with a sigma *vector* consumes the underlying bit stream exactly like
  the equivalent sequence of scalar ``normal`` calls, and the
  elementwise ``clip(cur + reversion*(mean-cur) + z)`` update performs
  the same float operations in the same order, so every walk value and
  the generator state are bit-identical to the scalar loop.
- :class:`NodeColumns` -- per-channel columns for one
  :class:`~repro.sensornet.node.SensingNode`: scope-ordered sensor /
  cost / history references resolved once (histories lazily, as the
  knowledge base creates them), the scope-order -> spec-order
  permutation, spec-ordered walk references and importance weights, and
  the running believed value per channel.  The node's fast step uses
  these to run salience scoring, budget fitting and error scoring
  without any ``Scope`` hashing in the per-channel loops, while still
  writing every observation through the shared
  :class:`~repro.core.knowledge.KnowledgeBase` so the node's visible
  state is identical to the naive path's.

Backends: the walk batching needs numpy (``HAVE_NUMPY``); without it,
and for every policy the columns don't model, callers keep the retained
naive paths -- no new hard dependencies.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

from ..geom.exact import _np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import SensingNode


def step_walks_batched(walks, rng) -> None:
    """Advance ``walks`` (sharing ``rng``) one step, bit-identically.

    Equivalent to ``for w in walks: w.step()`` when every walk draws
    from ``rng``: the batched ``normal(0.0, sigma_vector)`` consumes the
    same stream as the scalar draws, and the vectorised mean-reversion
    update applies the same operations elementwise.  Parameter columns
    are re-read every call, so run-time ``retarget`` stays visible.
    """
    k = len(walks)
    cur = _np.fromiter((w.current for w in walks), _np.float64, count=k)
    mean = _np.fromiter((w.mean for w in walks), _np.float64, count=k)
    rev = _np.fromiter((w.reversion for w in walks), _np.float64, count=k)
    sigma = _np.fromiter((w.sigma for w in walks), _np.float64, count=k)
    lo = _np.fromiter((w.lo for w in walks), _np.float64, count=k)
    hi = _np.fromiter((w.hi for w in walks), _np.float64, count=k)
    z = rng.normal(0.0, sigma)
    new = _np.clip(cur + rev * (mean - cur) + z, lo, hi).tolist()
    for w, v in zip(walks, new):
        w.current = v


class NodeColumns:
    """Flat per-channel working set for one sensing node.

    Two orderings coexist (and differ: scope order is lexicographic by
    qualified name, so ``ch10`` sorts before ``ch2``): *scope order* --
    ``suite.scopes()``, the order the attention policy scores and the
    budget fitter scans -- and *spec order* -- the field's insertion
    order, the order the error objective accumulates.  ``spec_of`` maps
    the former to the latter.
    """

    __slots__ = ("scopes", "sensors", "costs", "noise", "spec_of",
                 "walks", "importances", "total_weight", "histories",
                 "belief_vals", "k")

    def __init__(self, node: "SensingNode") -> None:
        field = node.field
        suite = node.suite
        self.scopes = suite.scopes()
        self.k = len(self.scopes)
        self.sensors = [suite.sensor(s) for s in self.scopes]
        self.costs: List[float] = [s.cost for s in self.sensors]
        self.noise: List[float] = [s.noise_std for s in self.sensors]
        spec_index = {name: i for i, name in enumerate(field.specs)}
        self.spec_of: List[int] = [spec_index[s.name] for s in self.scopes]
        self.walks = [field._signals[name] for name in field.specs]
        self.importances: List[float] = [
            spec.importance for spec in field.specs.values()]
        # The naive objective recomputes sum(importances) every step;
        # the specs are frozen, so the left-fold is the same float once.
        total = 0.0
        for w in self.importances:
            total += w
        self.total_weight = total
        # Resolved lazily: the knowledge base owns History creation (on
        # first observation), and the fast path must share its objects.
        self.histories: List[Optional[object]] = [None] * self.k
        # Believed value per *spec-order* channel; None where the node
        # has no (finite) belief, mirroring KnowledgeBase.value()'s NaN
        # default.  Seeded from the knowledge base so columns built
        # after earlier naive steps start consistent.
        self.belief_vals: List[Optional[float]] = [None] * self.k
        for i, scope in enumerate(self.scopes):
            value = node.knowledge.value(scope)
            if not math.isnan(value):
                self.belief_vals[self.spec_of[i]] = value

    def weighted_error(self) -> float:
        """The field's importance-weighted error from the columns.

        Same accumulation order and operations as
        :meth:`~repro.sensornet.field.ChannelField.weighted_error` over
        :meth:`~repro.sensornet.node.SensingNode.beliefs`.
        """
        error = 0.0
        beliefs = self.belief_vals
        walks = self.walks
        for i, imp in enumerate(self.importances):
            believed = beliefs[i]
            if believed is None:
                error += imp * 0.5
            else:
                error += imp * abs(believed - walks[i].current)
        return error / self.total_weight
