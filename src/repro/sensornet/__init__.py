"""Energy-budgeted fog/mist sensing substrate (paper ref [55]).

A node that cannot afford to sample every phenomenon must direct its
limited sensing budget itself.  Built directly on the framework's
sensors, knowledge base and attention policies; experiment E7 sweeps the
budget and compares attention strategies.
"""

from .events import (DeadlineAttention, SpikeChannelSpec, SpikeField,
                     mixed_spike_specs, run_detection)
from .field import ChannelField, ChannelSpec, mixed_channel_specs
from .node import (SensingNode, SensingRunResult, SensingStepRecord,
                   run_sensing)

__all__ = [
    "DeadlineAttention", "SpikeChannelSpec", "SpikeField",
    "mixed_spike_specs", "run_detection",
    "ChannelField", "ChannelSpec", "mixed_channel_specs",
    "SensingNode", "SensingRunResult", "SensingStepRecord", "run_sensing",
]
