"""The sensed field: hidden channels a constrained node must track.

Models the fog/mist setting of Preden et al. (paper ref [55]): one node
faces many phenomena ("channels") it *could* attend to -- some volatile
and mission-critical, some nearly static, some cheap to read and some
expensive -- and an energy budget that covers only a fraction of them per
step.  The ground truth evolves regardless of whether anyone looks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..envgen.processes import BoundedRandomWalk
from ..geom.exact import HAVE_NUMPY

#: Default for the batched channel stepping (see
#: :func:`repro.sensornet.soa.step_walks_batched`).  The per-walk scalar
#: loop is retained as the reference; the batched draw consumes the
#: shared generator bit-identically, so both paths produce the same
#: signals and leave the RNG in the same state.  Forced off by
#: ``REPRO_FORCE_NAIVE=1`` in the test harness.
USE_FAST_FIELD = True


@dataclass(frozen=True)
class ChannelSpec:
    """Static description of one channel."""

    name: str
    volatility: float          # random-walk sigma of the hidden signal
    importance: float = 1.0    # weight in the tracking-error objective
    sample_cost: float = 1.0   # energy per sample
    noise_std: float = 0.01    # sensor read noise

    def __post_init__(self) -> None:
        if self.volatility < 0:
            raise ValueError("volatility must be non-negative")
        if self.importance <= 0:
            raise ValueError("importance must be positive")
        if self.sample_cost <= 0:
            raise ValueError("sample_cost must be positive")


def mixed_channel_specs(n_channels: int = 8,
                        seed: int = 0) -> List[ChannelSpec]:
    """A heterogeneous channel population.

    Half the channels are quiet (low volatility), a quarter moderately
    active, a quarter highly volatile and twice as important -- the
    configuration under which undirected attention wastes most of its
    budget on phenomena that never change.
    """
    rng = np.random.default_rng(seed)
    specs: List[ChannelSpec] = []
    for i in range(n_channels):
        band = i % 4
        if band in (0, 1):
            vol, imp = 0.002, 1.0
        elif band == 2:
            vol, imp = 0.02, 1.0
        else:
            vol, imp = 0.08, 2.0
        cost = float(rng.choice([0.5, 1.0, 1.5]))
        specs.append(ChannelSpec(name=f"ch{i}", volatility=vol,
                                 importance=imp, sample_cost=cost))
    return specs


class ChannelField:
    """The evolving hidden truth behind every channel."""

    def __init__(self, specs: Sequence[ChannelSpec],
                 rng: Optional[np.random.Generator] = None,
                 fast: Optional[bool] = None) -> None:
        if not specs:
            raise ValueError("need at least one channel")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError("channel names must be unique")
        self.specs: Dict[str, ChannelSpec] = {s.name: s for s in specs}
        self._rng = rng if rng is not None else np.random.default_rng()
        self._signals: Dict[str, BoundedRandomWalk] = {
            s.name: BoundedRandomWalk(
                mean=0.5, reversion=0.02, sigma=s.volatility,
                lo=0.0, hi=1.0, start=float(self._rng.uniform(0.2, 0.8)),
                rng=self._rng)
            for s in specs}
        # Every walk draws from the shared generator (by construction
        # just above), which is what lets one batched draw replace the
        # per-walk scalar draws bit-identically.
        self._walks = list(self._signals.values())
        self._fast = ((fast if fast is not None else USE_FAST_FIELD)
                      and HAVE_NUMPY)

    def names(self) -> List[str]:
        """Channel names, in spec order."""
        return list(self.specs)

    def step(self) -> None:
        """Advance every hidden signal one step."""
        if self._fast:
            from .soa import step_walks_batched
            step_walks_batched(self._walks, self._rng)
            return
        for signal in self._signals.values():
            signal.step()

    def truth(self, name: str) -> float:
        """Current hidden value of ``name``."""
        return self._signals[name].current

    def weighted_error(self, beliefs: Dict[str, float]) -> float:
        """Importance-weighted mean absolute tracking error.

        Channels with no belief at all are charged the worst-case error
        (0.5 on the unit range) -- ignorance is not free.
        """
        total_weight = sum(s.importance for s in self.specs.values())
        error = 0.0
        for name, spec in self.specs.items():
            believed = beliefs.get(name)
            if believed is None or math.isnan(believed):
                channel_error = 0.5
            else:
                channel_error = abs(believed - self.truth(name))
            error += spec.importance * channel_error
        return error / total_weight
