"""The energy-budgeted sensing node, built from the core framework.

This substrate deliberately *reuses* the framework pieces: a
:class:`~repro.core.sensors.SensorSuite` over the hidden field, a
:class:`~repro.core.knowledge.KnowledgeBase` holding beliefs, and any
:class:`~repro.core.attention.AttentionPolicy` deciding where the
per-step energy budget goes.  Experiment E7 sweeps the budget and the
policy; the salience policy is the paper's "self-awareness directs
attention" claim in executable form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from ..faults.injector import FaultInjector

import numpy as np

from ..core.attention import AttentionPolicy, SalienceAttention
from ..core.knowledge import KnowledgeBase
from ..geom.exact import HAVE_NUMPY
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..core.sensors import Sensor, SensorSuite
from ..core.spans import public
from .field import ChannelField
from .soa import NodeColumns

#: Default for the struct-of-arrays node step (see
#: :mod:`repro.sensornet.soa`).  The scalar step is retained verbatim as
#: :meth:`SensingNode._step_naive` -- the reference for the equivalence
#: tests and the ``repro.bench`` baseline, and the only path taken under
#: fault injection, for attention policies the columns don't model, or
#: without numpy.  Both paths produce byte-identical records and leave
#: every RNG in the same stream position.  Forced off by
#: ``REPRO_FORCE_NAIVE=1`` in the test harness.
USE_FAST_SENSORNET = True


@dataclass(slots=True)
class SensingStepRecord:
    """Telemetry for one sensing step."""

    time: float
    error: float
    energy_spent: float
    channels_sampled: int


@dataclass
class SensingRunResult:
    """Outcome of one sensing run."""

    records: List[SensingStepRecord]

    def mean_error(self, skip: int = 0) -> float:
        """Mean weighted tracking error (after ``skip`` warm-up steps)."""
        steps = self.records[skip:]
        if not steps:
            return math.nan
        return sum(r.error for r in steps) / len(steps)

    def mean_energy(self) -> float:
        """Mean energy spent per step."""
        if not self.records:
            return math.nan
        return sum(r.energy_spent for r in self.records) / len(self.records)


class SensingNode:
    """One constrained node attending to a :class:`ChannelField`."""

    def __init__(self, field: ChannelField, attention: AttentionPolicy,
                 budget: float,
                 rng: Optional[np.random.Generator] = None,
                 faults: Optional["FaultInjector"] = None,
                 fast: Optional[bool] = None) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.field = field
        self.attention = attention
        self.budget = budget
        self.faults = faults
        # The fast step models exactly SalienceAttention's scoring (a
        # subclass could override salience(), so `type is` not
        # isinstance); anything else keeps the naive path.
        self._fast = ((fast if fast is not None else USE_FAST_SENSORNET)
                      and HAVE_NUMPY
                      and type(attention) is SalienceAttention)
        self._cols: Optional[NodeColumns] = None
        self.knowledge = KnowledgeBase()
        rng = rng if rng is not None else np.random.default_rng()
        self.suite = SensorSuite()
        for name, spec in field.specs.items():
            self.suite.add(Sensor(
                scope=public(name),
                read_fn=lambda n=name: field.truth(n),
                noise_std=spec.noise_std,
                cost=spec.sample_cost,
                rng=np.random.default_rng(rng.integers(2 ** 31))))
        # Salience policies can weight channels by their goal importance.
        if isinstance(attention, SalienceAttention):
            for name, spec in field.specs.items():
                attention.set_relevance(public(name), spec.importance)
        self.total_energy = 0.0

    def beliefs(self) -> Dict[str, float]:
        """Current believed value per channel (absent channels omitted)."""
        out: Dict[str, float] = {}
        for name in self.field.names():
            value = self.knowledge.value(public(name))
            if not math.isnan(value):
                out[name] = value
        return out

    def step(self, t: float) -> SensingStepRecord:
        """Advance the field, attend within budget, score the beliefs.

        An attached fault injector can skew the clock the attention
        policy sees (staleness misjudged) and drop selected samples
        before they are taken (the channel read fails this step).
        """
        if self._fast and self.faults is None:
            return self._step_fast(t)
        return self._step_naive(t)

    def _step_naive(self, t: float) -> SensingStepRecord:
        """The retained scalar step (reference path).

        This is the original implementation, the semantics the fast
        path must reproduce byte-for-byte; it also remains the only
        path that understands fault injection and non-salience
        attention policies.
        """
        self.field.step()
        faults = self.faults
        attend_t = t
        if faults is not None:
            faults.begin_step(t)
            attend_t = faults.perceived_time(t, target="attention")
        scopes = self.attention.select(self.suite, self.knowledge, attend_t,
                                       self.budget)
        if faults is not None:
            scopes = [s for s in scopes if not faults.dropped(target=s.name)]
        readings = self.suite.sample_into(self.knowledge, t, scopes)
        spent = sum(self.suite.sensor(r.scope).cost for r in readings)
        self.total_energy += spent
        error = self.field.weighted_error(self.beliefs())
        return self._finish_step(t, error, spent, len(readings))

    def _finish_step(self, t: float, error: float, spent: float,
                     n_readings: int) -> SensingStepRecord:
        """Shared step tail: observability and the step record."""
        if obs_events.enabled():
            obs_metrics.counter("steps", sim="sensornet").increment()
            obs_metrics.counter("sensornet.energy_spent").increment(spent)
            obs_metrics.counter("sensornet.samples").increment(n_readings)
            obs_metrics.histogram("sensornet.error").observe(error)
            obs_events.emit("sensornet.step", time=t, error=error,
                            energy_spent=spent,
                            channels_sampled=n_readings)
        return SensingStepRecord(time=t, error=error, energy_spent=spent,
                                 channels_sampled=n_readings)

    def _step_fast(self, t: float) -> SensingStepRecord:
        """Struct-of-arrays step, byte-identical to :meth:`_step_naive`.

        Taken only for a plain :class:`SalienceAttention` with no fault
        injector.  Salience scoring, budget fitting and error scoring
        run over pre-resolved per-channel columns (no ``Scope`` hashing
        in the per-channel loops); the chosen sensors are still sampled
        one by one through :meth:`~repro.core.sensors.Sensor.sample`
        (each owns its RNG stream) and recorded through the shared
        knowledge base, so all visible state -- beliefs, histories,
        sensor counters, RNG positions -- matches the naive path
        exactly.
        """
        cols = self._cols
        if cols is None:
            cols = self._cols = NodeColumns(self)
        self.field.step()
        att = self.attention
        kb = self.knowledge
        k = cols.k
        scope_list = cols.scopes
        histories = cols.histories
        kb_histories = kb._histories
        rel_get = att.relevance.get
        novelty = att.novelty_bonus
        min_history = att.min_history
        window = att.volatility_window
        scale = att.staleness_scale
        costs = cols.costs

        # Salience per scope, inlined from SalienceAttention.salience
        # (same branches, same float expressions), then value density.
        density: List[float] = [0.0] * k
        for i in range(k):
            scope = scope_list[i]
            rel = rel_get(scope, 1.0)
            hist = histories[i]
            if hist is None:
                hist = kb_histories.get(scope)
                histories[i] = hist
            if hist is None or not hist:
                sal = rel * novelty
            elif len(hist) < min_history:
                sal = rel * novelty
            else:
                vol = hist.std(window)
                if math.isnan(vol):
                    vol = 0.0
                stale = max(0.0, t - hist.latest.time)
                sal = rel * (vol + 1e-3) * math.sqrt(stale / scale)
            cost = costs[i]
            density[i] = sal / cost if cost > 0 else math.inf
        # Stable descending sort over scope order == the naive
        # sorted(scopes, key=value_density, reverse=True).
        order = sorted(range(k), key=density.__getitem__, reverse=True)

        # Greedy budget fit (_fit_budget), on the precomputed costs.
        budget = self.budget
        chosen: List[int] = []
        fit_spent = 0.0
        for i in order:
            cost = costs[i]
            if cost == 0.0 or fit_spent + cost <= budget + 1e-12:
                chosen.append(i)
                fit_spent += cost
        # Sample the chosen sensors in selection order, recording valid
        # readings exactly like SensorSuite.sample_into.
        sensors = cols.sensors
        spec_of = cols.spec_of
        belief_vals = cols.belief_vals
        spent = 0.0
        for i in chosen:
            sensor = sensors[i]
            reading = sensor.sample(t)
            if reading.is_valid():
                kb.observe(sensor.scope, t, reading.value)
                if histories[i] is None:
                    histories[i] = kb_histories[sensor.scope]
                belief_vals[spec_of[i]] = reading.value
            spent += sensor.cost
        self.total_energy += spent
        error = cols.weighted_error()
        return self._finish_step(t, error, spent, len(chosen))


def run_sensing(field: ChannelField, attention: AttentionPolicy,
                budget: float, steps: int = 500,
                rng: Optional[np.random.Generator] = None,
                faults: Optional["FaultInjector"] = None) -> SensingRunResult:
    """Deprecated shim: use :class:`repro.api.SensornetSimulator`."""
    import warnings
    warnings.warn(
        "run_sensing is deprecated; use repro.api.SensornetSimulator",
        DeprecationWarning, stacklevel=2)
    from ..api.adapters import SensornetSimulator
    from ..api.configs import SensornetConfig
    return SensornetSimulator(SensornetConfig(steps=steps, budget=budget),
                              field=field, attention=attention, rng=rng,
                              faults=faults).run()
