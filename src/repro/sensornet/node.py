"""The energy-budgeted sensing node, built from the core framework.

This substrate deliberately *reuses* the framework pieces: a
:class:`~repro.core.sensors.SensorSuite` over the hidden field, a
:class:`~repro.core.knowledge.KnowledgeBase` holding beliefs, and any
:class:`~repro.core.attention.AttentionPolicy` deciding where the
per-step energy budget goes.  Experiment E7 sweeps the budget and the
policy; the salience policy is the paper's "self-awareness directs
attention" claim in executable form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from ..faults.injector import FaultInjector

import numpy as np

from ..core.attention import AttentionPolicy, SalienceAttention
from ..core.knowledge import KnowledgeBase
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics
from ..core.sensors import Sensor, SensorSuite
from ..core.spans import public
from .field import ChannelField


@dataclass(slots=True)
class SensingStepRecord:
    """Telemetry for one sensing step."""

    time: float
    error: float
    energy_spent: float
    channels_sampled: int


@dataclass
class SensingRunResult:
    """Outcome of one sensing run."""

    records: List[SensingStepRecord]

    def mean_error(self, skip: int = 0) -> float:
        """Mean weighted tracking error (after ``skip`` warm-up steps)."""
        steps = self.records[skip:]
        if not steps:
            return math.nan
        return sum(r.error for r in steps) / len(steps)

    def mean_energy(self) -> float:
        """Mean energy spent per step."""
        if not self.records:
            return math.nan
        return sum(r.energy_spent for r in self.records) / len(self.records)


class SensingNode:
    """One constrained node attending to a :class:`ChannelField`."""

    def __init__(self, field: ChannelField, attention: AttentionPolicy,
                 budget: float,
                 rng: Optional[np.random.Generator] = None,
                 faults: Optional["FaultInjector"] = None) -> None:
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.field = field
        self.attention = attention
        self.budget = budget
        self.faults = faults
        self.knowledge = KnowledgeBase()
        rng = rng if rng is not None else np.random.default_rng()
        self.suite = SensorSuite()
        for name, spec in field.specs.items():
            self.suite.add(Sensor(
                scope=public(name),
                read_fn=lambda n=name: field.truth(n),
                noise_std=spec.noise_std,
                cost=spec.sample_cost,
                rng=np.random.default_rng(rng.integers(2 ** 31))))
        # Salience policies can weight channels by their goal importance.
        if isinstance(attention, SalienceAttention):
            for name, spec in field.specs.items():
                attention.set_relevance(public(name), spec.importance)
        self.total_energy = 0.0

    def beliefs(self) -> Dict[str, float]:
        """Current believed value per channel (absent channels omitted)."""
        out: Dict[str, float] = {}
        for name in self.field.names():
            value = self.knowledge.value(public(name))
            if not math.isnan(value):
                out[name] = value
        return out

    def step(self, t: float) -> SensingStepRecord:
        """Advance the field, attend within budget, score the beliefs.

        An attached fault injector can skew the clock the attention
        policy sees (staleness misjudged) and drop selected samples
        before they are taken (the channel read fails this step).
        """
        self.field.step()
        faults = self.faults
        attend_t = t
        if faults is not None:
            faults.begin_step(t)
            attend_t = faults.perceived_time(t, target="attention")
        scopes = self.attention.select(self.suite, self.knowledge, attend_t,
                                       self.budget)
        if faults is not None:
            scopes = [s for s in scopes if not faults.dropped(target=s.name)]
        readings = self.suite.sample_into(self.knowledge, t, scopes)
        spent = sum(self.suite.sensor(r.scope).cost for r in readings)
        self.total_energy += spent
        error = self.field.weighted_error(self.beliefs())
        if obs_events.enabled():
            obs_metrics.counter("steps", sim="sensornet").increment()
            obs_metrics.counter("sensornet.energy_spent").increment(spent)
            obs_metrics.counter("sensornet.samples").increment(len(readings))
            obs_metrics.histogram("sensornet.error").observe(error)
            obs_events.emit("sensornet.step", time=t, error=error,
                            energy_spent=spent,
                            channels_sampled=len(readings))
        return SensingStepRecord(time=t, error=error, energy_spent=spent,
                                 channels_sampled=len(readings))


def run_sensing(field: ChannelField, attention: AttentionPolicy,
                budget: float, steps: int = 500,
                rng: Optional[np.random.Generator] = None,
                faults: Optional["FaultInjector"] = None) -> SensingRunResult:
    """Deprecated shim: use :class:`repro.api.SensornetSimulator`."""
    import warnings
    warnings.warn(
        "run_sensing is deprecated; use repro.api.SensornetSimulator",
        DeprecationWarning, stacklevel=2)
    from ..api.adapters import SensornetSimulator
    from ..api.configs import SensornetConfig
    return SensornetSimulator(SensornetConfig(steps=steps, budget=budget),
                              field=field, attention=attention, rng=rng,
                              faults=faults).run()
