"""Quickstart: build a self-aware node and watch it manage a trade-off.

The smallest end-to-end tour of the framework:

1. a tiny environment whose best configuration depends on a changing
   hidden regime,
2. a full-stack self-aware node assembled with one call,
3. the observe-decide-act-learn loop,
4. self-explanation: asking the node why it just did what it did,
5. a run-time goal change the node follows immediately.

Run:  python examples/quickstart.py
With telemetry (writes a JSONL event trace and prints a metrics
summary):  python examples/quickstart.py --trace quickstart.jsonl
"""

import numpy as np

from repro.core import (CapabilityProfile, Goal, Objective, Sensor,
                        SensorSuite, SimulationClock, build_node, private,
                        run_control_loop)
from repro.obs import cli_telemetry, enabled, get_bus


class TinyWorld:
    """Two configurations; which one wins depends on a drifting regime."""

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self.pressure = 0.2  # hidden regime the sensors glimpse

    def candidate_actions(self, now):
        return ["economy", "turbo"]

    def sensed_pressure(self):
        return self.pressure

    def apply(self, action, now):
        # Random-walk the regime.
        self.pressure = float(np.clip(
            self.pressure + self._rng.normal(0.0, 0.02), 0.0, 1.0))
        if action == "turbo":
            perf = 0.9
            cost = 0.7
        else:
            perf = 0.9 - 0.8 * self.pressure  # economy collapses under load
            cost = 0.2
        return {"perf": perf + float(self._rng.normal(0, 0.02)),
                "cost": cost}


def main():
    world = TinyWorld(seed=7)

    # The stakeholder goal: mostly performance, some cost. Mutable at
    # run time -- and the node will notice.
    goal = Goal(objectives=[Objective("perf"),
                            Objective("cost", maximise=False)],
                weights={"perf": 0.7, "cost": 0.3}, name="quickstart")

    sensors = SensorSuite([
        Sensor(private("pressure"), world.sensed_pressure, noise_std=0.05),
    ])

    node = build_node("demo", CapabilityProfile.full_stack(), sensors, goal,
                      rng=np.random.default_rng(0))
    if enabled():
        # With telemetry on, let the node's explanation log consume the
        # event stream, so explanations cite meta-level strategy switches.
        node.log.consume(get_bus())
    print(node.describe())
    print(goal.describe())
    print()

    clock = SimulationClock()  # one clock across both episodes
    trace = run_control_loop(node, world, goal, steps=300, clock=clock)
    print(f"after 300 steps: mean utility {trace.mean_utility():.3f}, "
          f"{trace.action_changes()} action changes")
    print()
    print("why did you just do that?")
    print(" ", node.explain())
    print()

    # Stakeholders change their minds: cost now dominates.
    goal.set_weights({"perf": 0.2, "cost": 0.8})
    trace2 = run_control_loop(node, world, goal, steps=300, clock=clock)
    late_actions = [s.action for s in trace2.steps[-50:]]
    print("after the goal flipped toward cost, the node now mostly runs:",
          max(set(late_actions), key=late_actions.count))
    print(f"utility under the new goal: {trace2.mean_utility():.3f}")


if __name__ == "__main__":
    with cli_telemetry():
        main()
