"""Cognitive packet network: routing around a denial-of-service attack.

The small-systems case study (paper refs [38], [39]): network nodes run
a self-awareness loop -- smart packets measure route quality, nodes
adapt next-hop choices with a simple learning scheme -- and the network
stays resilient when the most central node is flooded.

Run:  python examples/cpn_routing.py
"""

import networkx as nx
import numpy as np

from repro.api import CPNConfig, CPNSimulator
from repro.cpn import (CPNetwork, CPNRouter, OracleRouter, StaticRouter,
                       default_flows)
from repro.obs import cli_telemetry

STEPS = 600
ATTACK = (300.0, 450.0)


def make_scenario(seed=0):
    net = CPNetwork.random_geometric(n=30, seed=seed)
    centrality = nx.betweenness_centrality(net.graph)
    victim = max(centrality, key=centrality.get)
    net.launch_attack(victim, start=ATTACK[0],
                      duration=ATTACK[1] - ATTACK[0], loss_add=0.3)
    return net, victim


def main():
    net, victim = make_scenario()
    print(f"30-node network; DoS attack floods node {victim} (the most "
          f"central) during t=[{ATTACK[0]:.0f}, {ATTACK[1]:.0f})\n")

    for name, factory in [
        ("static", lambda n: StaticRouter(n)),
        ("cpn-self-aware", lambda n: CPNRouter(
            n, epsilon=0.2, rng=np.random.default_rng(42))),
        ("oracle", lambda n: OracleRouter(n)),
    ]:
        net, _ = make_scenario()
        flows = default_flows(net, n_flows=6, seed=0)
        result = CPNSimulator(CPNConfig(steps=STEPS), network=net,
                              router=factory(net), flows=flows).run()
        print(f"  {name:15s} "
              f"delivery: pre={result.delivery_rate(0, ATTACK[0]):.3f} "
              f"attack={result.delivery_rate(*ATTACK):.3f} | "
              f"delay: pre={result.mean_delay(0, ATTACK[0]):5.2f} "
              f"attack={result.mean_delay(*ATTACK):5.2f}")

    print("\nthe static (design-time) routes collapse when the hub is "
          "flooded; the self-aware router pays a modest steady-state "
          "overhead and keeps near-oracle delivery through the attack.")


if __name__ == "__main__":
    # ``--trace [PATH]`` enables repro.obs telemetry and writes a
    # JSONL event trace (default trace.jsonl).
    with cli_telemetry():
        main()
