"""Cloud autoscaling: time-awareness and goal-awareness in one controller.

The elastic-cluster case study (paper refs [56], [58]).  A seasonal
workload with a flash crowd hits a cluster whose servers take 5 steps to
boot; the self-aware scaler forecasts demand over the boot horizon,
learns the true per-server capacity from telemetry, and reads a *live*
goal -- so when the goal is reweighted toward cost mid-run, behaviour
follows immediately.

Run:  python examples/cloud_autoscaling.py
"""

import numpy as np

from repro.cloud import (ReactiveScaler, SelfAwareScaler, ServiceCluster,
                         StaticScaler, make_cloud_goal)
from repro.envgen import RequestRateWorkload, Shock, ShockSchedule
from repro.obs import cli_telemetry

CLUSTER = dict(capacity_per_server=10.0, boot_delay=5, max_servers=40)
STEPS = 600


def drive(scaler, demand, goal, reweight_at=None):
    cluster = ServiceCluster(**CLUSTER)
    history, metrics = [], None
    for t in range(STEPS):
        if reweight_at is not None and t == reweight_at:
            goal.set_weights({"qos": 0.3, "cost": 0.7})
        cluster.request_scale(scaler.decide(float(t), metrics))
        metrics = cluster.step(float(t), max(0.0, demand(float(t))))
        history.append(metrics)
    return history


def report(name, history, goal):
    qos = np.mean([m.qos for m in history])
    cost = np.mean([m.cost for m in history])
    utility = np.mean([goal.utility(m.as_dict()) for m in history])
    print(f"  {name:12s} utility={utility:.3f} qos={qos:.3f} "
          f"servers={cost:5.1f} dropped={sum(m.dropped for m in history):8.0f}")


def main():
    workload = RequestRateWorkload(
        base_rate=60.0, seasonal_amplitude=0.5, period=200.0,
        shocks=ShockSchedule([Shock(start=330.0, duration=60.0,
                                    magnitude=1.2)]),
        rng=np.random.default_rng(1))

    print("seasonal demand + flash crowd at t=330 (servers boot in 5 steps):")
    for name, scaler in [
        ("static-4", StaticScaler(4)),
        ("static-15", StaticScaler(15)),
        ("reactive", ReactiveScaler()),
    ]:
        goal = make_cloud_goal()
        report(name, drive(scaler, workload.rate, goal), goal)
    goal = make_cloud_goal()
    scaler = SelfAwareScaler(goal, boot_delay=5, max_servers=40)
    report("self-aware", drive(scaler, workload.rate, goal), goal)
    print(f"  (self-aware scaler learned per-server capacity "
          f"{scaler.capacity_estimate:.1f}; true value is "
          f"{CLUSTER['capacity_per_server']})")

    print("\nnow stakeholders flip the goal toward cost at t=300:")
    goal = make_cloud_goal()
    scaler = SelfAwareScaler(goal, boot_delay=5, max_servers=40)
    history = drive(scaler, workload.rate, goal, reweight_at=300)
    servers_before = np.mean([m.cost for m in history[:300]])
    servers_after = np.mean([m.cost for m in history[300:]])
    print(f"  mean servers before: {servers_before:.1f}, after: "
          f"{servers_after:.1f} -- the goal-reading scaler downsizes at "
          "once; a static or rule-based scaler cannot.")


if __name__ == "__main__":
    # ``--trace [PATH]`` enables repro.obs telemetry and writes a
    # JSONL event trace (default trace.jsonl).
    with cli_telemetry():
        main()
