"""Hierarchical self-awareness: a supervisor over self-aware nodes.

The hierarchy strand of the paper (refs [62], [63]): self-organising
systems built from self-aware building blocks, with adaptation applied
*hierarchically* -- children stay autonomous; a supervisor watches their
realised performance and self-assessments, and intervenes at the
configuration level when a child's own awareness has gone stale.

Scenario: a child with a frozen self-model and near-zero exploration
faces a world whose rewards flip mid-run.  Alone it stays stuck on the
old action forever; supervised, the collapse is detected, the child's
model is reset and its exploration jolted, and it re-learns in seconds.

Run:  python examples/hierarchical_supervision.py
"""

import numpy as np

from repro.core import (CapabilityProfile, Goal, Objective, Sensor,
                        SensorSuite, Supervisor, assess, build_node, private)
from repro.core.levels import SelfAwarenessLevel
from repro.obs import cli_telemetry


class FlippingWorld:
    def __init__(self, change_at, seed=0):
        self.change_at = change_at
        self._rng = np.random.default_rng(seed)

    def candidate_actions(self, now):
        return ["legacy-path", "new-path"]

    def apply(self, action, now):
        good = "legacy-path" if now < self.change_at else "new-path"
        perf = 0.9 if action == good else 0.1
        return {"perf": perf + float(self._rng.normal(0, 0.02))}


def drive(node, goal, world, supervisor, steps, start=0):
    utilities = []
    for t in range(start, start + steps):
        node.step(float(t), world.candidate_actions(float(t)))
        metrics = world.apply(node.log.last().decision.action, float(t))
        utility = goal.utility(metrics)
        node.feedback(metrics, utility=utility)
        if supervisor is not None:
            supervisor.observe_child(node.name, float(t), utility)
        utilities.append(utility)
    return utilities


def scenario(supervised, seed=0):
    sensors = SensorSuite([Sensor(private("x"), lambda: 0.5)])
    goal = Goal([Objective("perf")])
    node = build_node("worker",
                      CapabilityProfile.up_to(SelfAwarenessLevel.GOAL),
                      sensors, goal, epsilon=0.3, forgetting=1.0,
                      rng=np.random.default_rng(seed))
    world = FlippingWorld(change_at=300.0, seed=seed)
    utilities = drive(node, goal, world, None, steps=150)     # warm-up
    node.reasoner.epsilon = 0.01                              # ops "tuned" it
    supervisor = Supervisor([node]) if supervised else None
    utilities += drive(node, goal, world, supervisor, steps=450, start=150)
    return utilities, node, supervisor


def main():
    print("world flips at t=300; the child's model is frozen and its "
          "exploration was tuned to 1%\n")
    for supervised in (False, True):
        utilities, node, supervisor = scenario(supervised, seed=1)
        tail = float(np.mean(utilities[450:]))
        label = "supervised" if supervised else "unsupervised"
        print(f"{label:12s} mean utility after the flip settles: {tail:.3f}")
        if supervisor is not None:
            print("  supervisor log:")
            for intervention in supervisor.interventions:
                print(f"    t={intervention.time:g} [{intervention.kind}] "
                      f"{intervention.detail}")
            print("  " + supervisor.describe())
            print("  child self-assessment: "
                  + assess(node, now=600.0).describe())


if __name__ == "__main__":
    # ``--trace [PATH]`` enables repro.obs telemetry and writes a
    # JSONL event trace (default trace.jsonl).
    with cli_telemetry():
        main()
