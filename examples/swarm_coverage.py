"""Swarm coverage: recognising when the swarm's structure must change.

The collective-robotics case study (paper ref [34]): a swarm keeps an
arena covered so that events are witnessed.  Mid-mission the event
hotspots shift and two robots die -- situations a design-time formation
cannot react to.  The self-aware swarm learns where events actually
occur, gossips that knowledge to neighbours, splits responsibility
Voronoi-style, and lets survivors flow into a dead peer's patch.

Run:  python examples/swarm_coverage.py
"""

import numpy as np

from repro.api import SwarmSimulator
from repro.swarm import (RandomPatrol, SelfAwareSwarm, StaticFormation,
                         SwarmMissionConfig)
from repro.obs import cli_telemetry

STEPS = 800


def main():
    print("mission: 9 robots, 2 hotspots; hotspots shift at t=40%, "
          "robots 0 and 1 die at t=70%\n")
    print(f"{'controller':18s} {'overall':>8s} {'initial':>8s} "
          f"{'after shift':>12s} {'after deaths':>13s}")
    for name, factory in [
        ("static-formation", lambda s: StaticFormation(9)),
        ("random-patrol", lambda s: RandomPatrol(np.random.default_rng(s))),
        ("self-aware", lambda s: SelfAwareSwarm(
            rng=np.random.default_rng(s))),
    ]:
        rows = []
        for seed in range(3):
            config = SwarmMissionConfig(steps=STEPS, seed=seed)
            result = SwarmSimulator(mission_config=config,
                                    controller=factory(seed)).run()
            rows.append((result.detection_rate(),
                         result.detection_rate(0, 0.4 * STEPS),
                         result.detection_rate(0.45 * STEPS, 0.7 * STEPS),
                         result.detection_rate(0.75 * STEPS, STEPS)))
        means = np.mean(rows, axis=0)
        print(f"{name:18s} {means[0]:8.3f} {means[1]:8.3f} "
              f"{means[2]:12.3f} {means[3]:13.3f}")

    print("\nthe static formation holds its (now wrong) posts and leaves "
          "dead robots' patches unwatched; the self-aware swarm re-forms "
          "its structure both times.")


if __name__ == "__main__":
    # ``--trace [PATH]`` enables repro.obs telemetry and writes a
    # JSONL event trace (default trace.jsonl).
    with cli_telemetry():
        main()
