"""Serving demo: a self-aware server rides out a load ramp.

Starts a :class:`repro.serve.SimulationServer` on a free port, then
drives it from concurrent socket clients in two phases over identical
sessions:

1. *gentle* -- each client paces its step requests, the governor
   watches a healthy system and learns its service rate;
2. *stampede* -- the clients drop their pacing and hammer the server;
   the governor senses the queue and latency pressure and re-expresses
   itself: pool size up to its ceiling, admission tightened, load shed
   when the SLO would otherwise be lost.

At the end the server's own account of the episode is printed -- its
stats block and the governor's natural-language ``explain()``.

Run:  python examples/serve_demo.py
Longer, with a telemetry trace of serve.* events:
      python examples/serve_demo.py --seconds 10 --trace serve.jsonl
Record a replayable repro.twin/v1 arrival trace of the episode:
      python examples/serve_demo.py --record demo_trace.jsonl
      python -m repro.twin demo_trace.jsonl
"""

import argparse
import asyncio
import contextlib
import zlib

from repro.obs import TelemetrySession
from repro.serve import Client, SimulationServer


async def drive_client(name: str, host: str, port: int,
                       gentle_until: float, deadline: float,
                       loop: asyncio.AbstractEventLoop) -> dict:
    """One client: create a session, pace politely, then stampede."""
    client = await Client.connect(host, port)
    tally = {"name": name, "ok": 0, "shed": 0, "errors": 0}
    try:
        # crc32, not hash(): str hashing is randomised per process, and
        # the demo's sessions should replay identically across runs.
        created = await client.create("sensornet", steps=100_000,
                                      n_channels=4,
                                      seed=zlib.crc32(name.encode()) % 1000)
        session = created["session"]
        while loop.time() < deadline:
            response = await client.step(session, n=2)
            if response.get("ok"):
                tally["ok"] += 1
            elif str(response.get("code", "")).startswith("shed"):
                tally["shed"] += 1
                await asyncio.sleep(0.005)  # shed tells us to back off
            else:
                tally["errors"] += 1
            if loop.time() < gentle_until:
                await asyncio.sleep(0.02)  # polite pacing, phase 1
        await client.close_session(session)
    finally:
        await client.close()
    return tally


async def demo(seconds: float, clients: int, workers: int) -> dict:
    server = SimulationServer(
        port=0, workers=workers, governor="self_aware",
        min_workers=1, max_workers=4, slo_p95=0.05,
        admission_rate=400.0, admission_burst=200.0, max_queue=64.0,
        govern_interval=max(0.25, seconds / 12.0))
    await server.start()
    loop = asyncio.get_running_loop()
    print(f"server up on {server.host}:{server.port} "
          f"(workers={workers}, governor=self_aware, "
          f"slo p95={0.05:.2f}s)")
    gentle = seconds * 0.4
    print(f"phase 1 (gentle, {gentle:.1f}s): {clients} paced clients")
    print(f"phase 2 (stampede, {seconds - gentle:.1f}s): "
          "pacing off, governor on the spot")
    t0 = loop.time()
    tallies = await asyncio.gather(*(
        drive_client(f"c{i}", server.host, server.port,
                     t0 + gentle, t0 + seconds, loop)
        for i in range(clients)))

    admin = await Client.connect(server.host, server.port)
    try:
        stats = (await admin.stats())["stats"]
        explained = await admin.request({"op": "explain"})
    finally:
        await admin.close()
    await server.stop()

    total_ok = sum(t["ok"] for t in tallies)
    total_shed = sum(t["shed"] for t in tallies)
    total_err = sum(t["errors"] for t in tallies)
    print(f"\nclients: {total_ok} served, {total_shed} shed, "
          f"{total_err} errors")
    print(f"server:  p95 {stats['p95_seconds'] * 1000:.1f} ms over "
          f"{stats['requests_completed']} requests, "
          f"{stats['batches_run']} batches, "
          f"admission {stats['admission']}")
    print(f"degraded={stats['degraded']} serve_stale={stats['serve_stale']} "
          f"snapshot_cache={stats['snapshot_cache']}")
    print("\nthe governor, in its own words:")
    print(explained["explanation"])
    return {"ok": total_ok, "shed": total_shed, "errors": total_err}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=6.0,
                        help="total demo duration (default: 6)")
    parser.add_argument("--clients", type=int, default=6,
                        help="concurrent socket clients (default: 6)")
    parser.add_argument("--workers", type=int, default=0,
                        help="process-pool size; 0 steps in-process "
                             "(default: 0)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSONL telemetry trace")
    parser.add_argument("--record", default=None, metavar="PATH",
                        help="write a repro.twin/v1 arrival trace "
                             "(replay: python -m repro.twin PATH)")
    parser.add_argument("--record-tick", type=float, default=0.2,
                        metavar="SECONDS",
                        help="tick width for --record bucketing "
                             "(default: 0.2)")
    args = parser.parse_args(argv)
    scope = (TelemetrySession(trace_path=args.trace, echo_summary=True)
             if args.trace or args.record else contextlib.nullcontext())
    recorder = None
    with scope as session:
        if args.record:
            from repro.twin import TraceRecorder
            recorder = TraceRecorder(source="examples/serve_demo.py",
                                     tick_seconds=args.record_tick,
                                     substrate="serve")
            recorder.attach(session.bus)
        try:
            asyncio.run(demo(args.seconds, args.clients, args.workers))
        finally:
            if recorder is not None:
                recorder.detach()
                written = recorder.write(args.record)
                print(f"\nrecorded {written} ticks "
                      f"({recorder.total_offered} requests, "
                      f"{recorder.total_ok} ok) -> {args.record}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
