"""Smart-camera network: cameras learn to be different.

Reproduces the heart of the "learning to be different" study (paper
refs [11], [13]) as a runnable demo: a decentralised camera network
tracks moving objects by trading them in handover auctions.  Every
camera picks its own sociality strategy with a bandit, rewarded by its
private tracking-vs-communication trade-off -- and the network ends up
*heterogeneous*, close to the best homogeneous design without anyone
having chosen it.

Run:  python examples/smart_camera_network.py
"""

from collections import Counter

from repro.api import CameraConfig, CameraSimulator
from repro.smartcamera import ALL_STRATEGIES
from repro.obs import cli_telemetry


def main():
    config_kwargs = dict(rows=3, cols=3, n_objects=8, object_speed=0.035,
                         detection_rate=0.08, random_placement=True,
                         comm_cost_weight=0.02, steps=800, seed=3)

    print("homogeneous design-time assignments:")
    best_name, best_eff = None, float("-inf")
    for strategy in ALL_STRATEGIES:
        result = CameraSimulator(CameraConfig(
            controller="fixed", strategy=strategy.name,
            **config_kwargs)).run()
        eff = result.efficiency()
        print(f"  {strategy.value:18s} efficiency={eff:6.3f} "
              f"tracking={result.mean_tracking_utility():.3f} "
              f"messages/step={result.mean_messages():6.1f}")
        if eff > best_eff:
            best_name, best_eff = strategy.value, eff

    result = CameraSimulator(CameraConfig(
        controller="self_aware", epsilon=0.05, **config_kwargs)).run()
    print("\nself-aware cameras (each learns its own strategy):")
    print(f"  efficiency={result.efficiency():6.3f} "
          f"({result.efficiency() / best_eff:.0%} of the best homogeneous "
          f"assignment, '{best_name}')")
    print(f"  strategy diversity: {result.diversity_bits():.2f} bits "
          f"(0 = homogeneous, 2 = all four strategies equally)")

    print("\nwhat each camera settled on:")
    preferences = Counter()
    for controller in result.controllers:
        preferences[controller.preferred_strategy().value] += 1
    for strategy, count in preferences.most_common():
        print(f"  {count} camera(s) prefer {strategy}")
    print("\nheterogeneity emerged: different cameras learned different "
          "strategies suit their local situation.")


if __name__ == "__main__":
    # ``--trace [PATH]`` enables repro.obs telemetry and writes a
    # JSONL event trace (default trace.jsonl).
    with cli_telemetry():
        main()
