"""Heterogeneous multi-core governor: on-the-fly computing in action.

The platform-level case study (paper refs [8], [16], [47]): a
big.LITTLE platform with a thermal envelope faces a task stream whose
class mix changes by phase.  The self-aware governor discovers the
kind/core-type affinities from observed execution rates, plans
frequencies against a live throughput/energy/latency goal, and stays
out of hardware thermal throttling -- which the "run at max" design-time
policy cannot.

Run:  python examples/multicore_governor.py
"""

import numpy as np

from repro.api import MulticoreConfig, MulticoreSimulator
from repro.multicore import (DEFAULT_AFFINITY, OndemandGovernor,
                             SelfAwareGovernor, StaticGovernor,
                             make_multicore_goal, make_platform,
                             make_workload)
from repro.obs import cli_telemetry


def main():
    goal = make_multicore_goal()
    print(goal.describe())
    print()

    contenders = [
        ("static-max", StaticGovernor(1.0, 1.0)),
        ("static-mid", StaticGovernor(0.75, 0.75)),
        ("ondemand", OndemandGovernor()),
        ("self-aware", SelfAwareGovernor(make_multicore_goal(),
                                         rng=np.random.default_rng(0))),
    ]
    self_aware = contenders[-1][1]
    for name, governor in contenders:
        result = MulticoreSimulator(MulticoreConfig(steps=800),
                                    governor=governor,
                                    workload=make_workload(seed=0),
                                    platform=make_platform()).run()
        print(f"  {name:11s} utility={result.mean_utility(goal):.3f} "
              f"throughput={result.mean_throughput():5.2f} "
              f"energy={result.mean_energy():5.2f} "
              f"queue={result.mean_queue():5.1f} "
              f"thermal-violations={result.thermal_violation_rate(82.0):.1%}")

    print("\nwhat the self-aware governor learned about the platform")
    print("(rates at frequency 1.0; it was never given this table):")
    for kind in DEFAULT_AFFINITY:
        for type_name, perf in (("big", 8.0), ("little", 3.0)):
            learned = self_aware.learned_rate(kind, type_name, perf)
            truth = perf * DEFAULT_AFFINITY[kind][type_name]
            print(f"  {kind:10s} on {type_name:6s}: learned {learned:5.2f} "
                  f"(truth {truth:5.2f})")


if __name__ == "__main__":
    # ``--trace [PATH]`` enables repro.obs telemetry and writes a
    # JSONL event trace (default trace.jsonl).
    with cli_telemetry():
        main()
