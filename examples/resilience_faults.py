"""Resilience: inject faults on purpose, degrade gracefully, recover.

Two demonstrations of the `repro.faults` layer:

1. the same seed-deterministic :class:`FaultPlan` -- a component-crash
   wave plus sensor corruption and a demand surge -- hits a static and
   a self-aware cloud autoscaler through the uniform ``repro.api``
   facade, and we compare how much of their clean-run performance each
   retains (the E13 question at example size), and
2. a core self-aware node rides out a pressure storm that drives it
   into states its self-model has never seen -- while the fault plan
   corrupts the telemetry it would learn from -- once bare and once
   under a :class:`DegradationMonitor` whose ``hold_last_good`` policy
   freezes the last healthy action instead of acting on garbage.

Run:  python examples/resilience_faults.py
With telemetry (fault.start / fault.end / degrade.* events land in the
trace):  python examples/resilience_faults.py --trace faults.jsonl
"""

import numpy as np

from repro.api import CloudConfig, make_simulator
from repro.core import (CapabilityProfile, Goal, Objective, Sensor,
                        SensorSuite, build_node, private, run_control_loop)
from repro.core.levels import SelfAwarenessLevel
from repro.faults import (CRASH, SENSOR_NOISE, WORKLOAD_SPIKE,
                          DegradationMonitor, FaultPlan, FaultSpec,
                          make_injector)
from repro.obs import cli_telemetry

STEPS = 400
WINDOW = (160.0, 240.0)  # the middle fifth of the run


def cloud_sweep():
    """One fault plan, two scalers: who keeps performing?"""
    plan = FaultPlan(specs=(
        FaultSpec(kind=CRASH, start=WINDOW[0], end=WINDOW[1],
                  intensity=0.4),
        FaultSpec(kind=SENSOR_NOISE, start=WINDOW[0], end=WINDOW[1],
                  intensity=1.5),
        FaultSpec(kind=WORKLOAD_SPIKE, start=WINDOW[0], end=WINDOW[1],
                  intensity=0.6, target="demand"),
    ), seed=7)

    print(f"cloud, fault window t=[{WINDOW[0]:g}, {WINDOW[1]:g}): "
          "40% server-crash wave + corrupted telemetry + demand surge")
    for name, scaler, kwargs in [
        ("static-8", "static", dict(static_servers=8)),
        ("self-aware", "self_aware", {}),
    ]:
        scores = {}
        for label, faults in [("clean", None), ("faulted", plan)]:
            config = CloudConfig(steps=STEPS, seed=0, scaler=scaler,
                                 **kwargs)
            sim = make_simulator("cloud", config, faults=faults)
            sim.run()
            scores[label] = sim.metrics()["mean_utility"]
        retained = scores["faulted"] / scores["clean"]
        print(f"  {name:11s} clean={scores['clean']:.3f} "
              f"faulted={scores['faulted']:.3f} retained={retained:.1%}")
    print("  (zero-intensity plans are provably inert: retained would "
          "be exactly 100%)")


class StormWorld:
    """Quickstart's trade-off world, plus a pressure storm.

    'economy' collapses under load, and during the fault window the
    hidden regime jumps to territory the node has never operated in --
    exactly the situation where its empirical self-model's confidence
    (experience behind the current context/action pair) collapses.
    """

    def __init__(self, seed=0):
        self._rng = np.random.default_rng(seed)
        self.pressure = 0.2
        self._t = 0

    def candidate_actions(self, now):
        return ["economy", "turbo"]

    def sensed_pressure(self):
        return self.pressure

    def apply(self, action, now):
        self._t += 1
        base = 0.85 if WINDOW[0] <= self._t < WINDOW[1] else 0.2
        self.pressure = float(np.clip(
            base + self._rng.normal(0.0, 0.02), 0.0, 1.0))
        perf = 0.9 if action == "turbo" else 0.9 - 0.8 * self.pressure
        cost = 0.7 if action == "turbo" else 0.2
        return {"perf": perf + float(self._rng.normal(0, 0.02)),
                "cost": cost}


def node_degradation():
    """The same storm twice: acting on garbage vs holding steady."""
    plan = FaultPlan(specs=(
        FaultSpec(kind=SENSOR_NOISE, start=WINDOW[0], end=WINDOW[1],
                  intensity=6.0),
    ), seed=11)

    print(f"\ncore node, pressure storm + corrupted telemetry over "
          f"t=[{WINDOW[0]:g}, {WINDOW[1]:g}):")
    for label, monitor in [
        ("bare", None),
        ("hold_last_good", DegradationMonitor("hold_last_good",
                                              threshold=0.3, window=6)),
    ]:
        world = StormWorld(seed=7)
        goal = Goal(objectives=[Objective("perf"),
                                Objective("cost", maximise=False)],
                    weights={"perf": 0.7, "cost": 0.3}, name="resilience")
        sensors = SensorSuite([
            Sensor(private("pressure"), world.sensed_pressure,
                   noise_std=0.05, rng=np.random.default_rng(5)),
        ])
        # up_to(GOAL): the UtilityReasoner's empirical model is the
        # inspectable self-model the monitor watches.
        node = build_node("demo",
                          CapabilityProfile.up_to(SelfAwarenessLevel.GOAL),
                          sensors, goal, rng=np.random.default_rng(2))
        trace = run_control_loop(
            node, world, goal, steps=STEPS,
            faults=make_injector(plan, run_seed=2),
            degradation=monitor)
        line = (f"  {label:15s} mean utility {trace.mean_utility():.3f}, "
                f"{trace.action_changes()} action changes")
        if monitor is not None:
            line += (f", degraded for {monitor.degraded_steps():.0f} steps "
                     f"across {len(monitor.episodes)} episode(s)")
        print(line)
    print("  (slightly better utility with less thrashing; the monitor "
          "journals "
          "degrade.enter / degrade.exit events -- run with --trace to "
          "capture them)")


if __name__ == "__main__":
    with cli_telemetry():
        cloud_sweep()
        node_degradation()
